"""Tests for the Lagrangian system and the C2-Bound optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.camat_model import CAMATModel
from repro.core.lagrange import LagrangianSystem
from repro.core.optimizer import C2BoundOptimizer
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG


@pytest.fixture(scope="module")
def machine() -> MachineParameters:
    return MachineParameters()


@pytest.fixture(scope="module")
def app() -> ApplicationProfile:
    return ApplicationProfile(f_seq=0.02, f_mem=0.3, concurrency=4.0)


@pytest.fixture(scope="module")
def system(app, machine) -> LagrangianSystem:
    return LagrangianSystem(app, machine, CAMATModel())


class TestLagrangian:
    def test_analytic_partials_match_numeric(self, system):
        a0, a1, a2 = 1.3, 0.7, 2.1
        h = 1e-6
        num_da0 = (system.per_instruction_time(a0 + h, a1, a2)
                   - system.per_instruction_time(a0 - h, a1, a2)) / (2 * h)
        num_da1 = (system.per_instruction_time(a0, a1 + h, a2)
                   - system.per_instruction_time(a0, a1 - h, a2)) / (2 * h)
        num_da2 = (system.per_instruction_time(a0, a1, a2 + h)
                   - system.per_instruction_time(a0, a1, a2 - h)) / (2 * h)
        assert system.dq_da0(a0) == pytest.approx(num_da0, rel=1e-4)
        assert system.dq_da1(a1, a2) == pytest.approx(num_da1, rel=1e-4)
        assert system.dq_da2(a1, a2) == pytest.approx(num_da2, rel=1e-4)

    def test_kkt_solution_satisfies_budget(self, system, machine):
        res = system.solve(16)
        assert res.converged
        a0, a1, a2, lam = res.x
        total = 16 * (a0 + a1 + a2) + machine.shared_area
        assert total == pytest.approx(machine.total_area, rel=1e-8)
        assert lam > 0  # area is a binding, beneficial resource

    def test_kkt_matches_nested_scan(self, app, machine):
        opt = C2BoundOptimizer(app, machine)
        scan = opt.area_split(16)
        newton = opt.refine_newton(scan)
        q_scan = opt.lagrangian.per_instruction_time(
            scan.a0, scan.a1, scan.a2)
        q_newton = opt.lagrangian.per_instruction_time(
            newton.a0, newton.a1, newton.a2)
        assert q_newton == pytest.approx(q_scan, rel=1e-3)

    def test_dj_dn_sign_by_regime(self, machine):
        camat_model = CAMATModel()
        def slope(b: float) -> float:
            app = ApplicationProfile(f_seq=0.05, f_mem=0.3, g=PowerLawG(b))
            system = LagrangianSystem(app, machine, camat_model)
            config = C2BoundOptimizer(app, machine, camat_model).area_split(64)
            return system.dJ_dN(config)
        assert slope(1.5) > 0            # superlinear: time keeps growing
        assert abs(slope(1.0)) < 1e-4 * abs(slope(1.5))  # linear: flat
        assert slope(0.5) < 0            # sublinear: more cores help

    def test_infeasible_n_rejected(self, system, machine):
        too_many = machine.max_cores * 10
        with pytest.raises(InvalidParameterError):
            system.solve(too_many)

    def test_scaling_factor(self, system, app):
        assert system.scaling_factor(1) == pytest.approx(1.0)
        g4 = float(app.g(4.0))
        expected = app.f_seq + g4 * (1 - app.f_seq) / 4.0
        assert system.scaling_factor(4) == pytest.approx(expected)


class TestOptimizer:
    def test_case_split_superlinear(self, machine):
        app = ApplicationProfile(f_seq=0.02, f_mem=0.3, g=PowerLawG(1.5))
        res = C2BoundOptimizer(app, machine).optimize(n_max=512)
        assert res.case == "maximize-throughput"
        assert res.regime == "superlinear"

    def test_case_split_sublinear(self, machine):
        app = ApplicationProfile(f_seq=0.05, f_mem=0.5, g=PowerLawG(0.5))
        res = C2BoundOptimizer(app, machine).optimize(n_max=512)
        assert res.case == "minimize-time"
        # Finite interior optimum for case II.
        assert 1 < res.best.n < 512

    def test_area_split_respects_budget(self, app, machine):
        opt = C2BoundOptimizer(app, machine)
        for n in (1, 8, 64, 256):
            cfg = opt.area_split(n)
            total = n * cfg.per_core_area + machine.shared_area
            assert total == pytest.approx(machine.total_area, rel=1e-6)
            assert cfg.a0 >= machine.min_core_area - 1e-9
            assert cfg.a1 >= machine.min_cache_area - 1e-9
            assert cfg.a2 >= machine.min_cache_area - 1e-9

    def test_higher_concurrency_wins_throughput(self, machine):
        base = ApplicationProfile(f_seq=0.02, f_mem=0.3, g=PowerLawG(1.5))
        t1 = C2BoundOptimizer(base.with_concurrency(1.0), machine)
        t8 = C2BoundOptimizer(base.with_concurrency(8.0), machine)
        for n in (10, 100, 1000):
            assert (t8.evaluate(n).throughput
                    > t1.evaluate(n).throughput)

    def test_memory_bound_app_gets_more_cache(self, machine):
        # Higher f_mem shifts area from core logic to caches.
        lo = ApplicationProfile(f_seq=0.02, f_mem=0.1)
        hi = ApplicationProfile(f_seq=0.02, f_mem=0.9)
        cfg_lo = C2BoundOptimizer(lo, machine).area_split(16)
        cfg_hi = C2BoundOptimizer(hi, machine).area_split(16)
        cache_lo = cfg_lo.a1 + cfg_lo.a2
        cache_hi = cfg_hi.a1 + cfg_hi.a2
        assert cache_hi > cache_lo
        assert cfg_hi.a0 < cfg_lo.a0

    def test_sweep_matches_evaluate(self, app, machine):
        opt = C2BoundOptimizer(app, machine)
        pts = opt.sweep([1, 4, 16])
        assert [p.n for p in pts] == [1, 4, 16]
        single = opt.evaluate(4)
        assert pts[1].execution_time == pytest.approx(single.execution_time)

    def test_record_curve(self, app, machine):
        res = C2BoundOptimizer(app, machine).optimize(
            n_max=128, record_curve=True)
        assert len(res.curve) > 5
        ns = [p.n for p in res.curve]
        assert ns == sorted(ns)

    def test_empty_range_rejected(self, app, machine):
        with pytest.raises(InvalidParameterError):
            C2BoundOptimizer(app, machine).optimize(n_min=10, n_max=5)

    def test_design_point_throughput(self, app, machine):
        p = C2BoundOptimizer(app, machine).evaluate(8)
        assert p.throughput == pytest.approx(
            p.problem_size / p.execution_time)
        assert p.camat == pytest.approx(p.amat / app.concurrency)
