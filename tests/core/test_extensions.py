"""Tests for the asymmetric-CMP and energy extensions (paper §VII)."""

from __future__ import annotations

import pytest

from repro.core.asymmetric import AsymmetricOptimizer
from repro.core.energy import (
    EnergyAwareOptimizer,
    PowerModel,
    energy_of_design,
)
from repro.core.optimizer import C2BoundOptimizer
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG


@pytest.fixture(scope="module")
def machine():
    return MachineParameters(total_area=200.0, shared_area=20.0)


class TestAsymmetric:
    def test_feasible_design(self, machine):
        app = ApplicationProfile(f_seq=0.2, f_mem=0.3, concurrency=2.0,
                                 g=PowerLawG(0.0))
        opt = AsymmetricOptimizer(app, machine)
        design = opt.evaluate(big_budget=20.0, n_small=16)
        assert design.big.per_core_area == pytest.approx(20.0, rel=1e-6)
        assert design.total_area(machine.shared_area) <= (
            machine.total_area + 1e-6)
        assert design.execution_time > 0

    def test_bigger_big_core_helps_sequential_app(self, machine):
        app = ApplicationProfile(f_seq=0.5, f_mem=0.3, g=PowerLawG(0.0))
        opt = AsymmetricOptimizer(app, machine)
        small_big = opt.evaluate(big_budget=5.0, n_small=8)
        large_big = opt.evaluate(big_budget=60.0, n_small=8)
        assert large_big.execution_time < small_big.execution_time

    def test_asymmetric_beats_symmetric_for_mixed_app(self, machine):
        # A workload with a real sequential part: the asymmetric design
        # can buy a fast core for it without starving the parallel part.
        app = ApplicationProfile(f_seq=0.3, f_mem=0.3, concurrency=2.0,
                                 g=PowerLawG(0.0))
        sym = C2BoundOptimizer(app, machine).optimize(n_max=128)
        asym = AsymmetricOptimizer(app, machine).optimize(n_max=128)
        assert asym.execution_time <= sym.best.execution_time * 1.001

    def test_case_one_uses_throughput(self, machine):
        app = ApplicationProfile(f_seq=0.05, f_mem=0.3, g=PowerLawG(1.5))
        design = AsymmetricOptimizer(app, machine).optimize(n_max=64)
        assert design.throughput > 0

    def test_validation(self, machine):
        app = ApplicationProfile()
        opt = AsymmetricOptimizer(app, machine)
        with pytest.raises(InvalidParameterError):
            opt.evaluate(big_budget=10.0, n_small=0)
        with pytest.raises(InvalidParameterError):
            opt.evaluate(big_budget=1e9, n_small=4)


class TestPowerModel:
    def test_chip_power_composition(self):
        from repro.core.chip import ChipConfig
        pm = PowerModel(dynamic_per_area=1.0, static_per_area=0.1,
                        idle_leakage=0.0, shared_power=2.0)
        cfg = ChipConfig(n=4, a0=1.0, a1=0.5, a2=0.5)
        # 2 active: 2*(0.2+2.0) ... per-core area 2.0:
        # static 0.2, dynamic 2.0.
        expected = 2 * (0.2 + 2.0) + 2 * 0.2 + 2.0
        assert pm.chip_power(cfg, 2) == pytest.approx(expected)

    def test_active_bounds(self):
        from repro.core.chip import ChipConfig
        pm = PowerModel()
        cfg = ChipConfig(n=2, a0=1.0, a1=0.5, a2=0.5)
        with pytest.raises(InvalidParameterError):
            pm.chip_power(cfg, 3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PowerModel(idle_leakage=1.5)


class TestEnergyOptimizer:
    def test_energy_decomposition(self, machine):
        app = ApplicationProfile(f_seq=0.2, f_mem=0.3, g=PowerLawG(0.0))
        opt = C2BoundOptimizer(app, machine)
        point = opt.evaluate(8)
        report = energy_of_design(point, app, machine, PowerModel())
        assert report.total_energy == pytest.approx(
            report.serial_energy + report.parallel_energy)
        assert report.average_power > 0

    def test_energy_optimum_below_performance_optimum(self, machine):
        # Leakage penalizes very wide chips: the EDP-optimal core count
        # is at most the throughput-optimal one for a scalable app.
        app = ApplicationProfile(f_seq=0.05, f_mem=0.3, concurrency=4.0,
                                 g=PowerLawG(1.5))
        perf = C2BoundOptimizer(app, machine).optimize(n_max=256)
        point, _ = EnergyAwareOptimizer(app, machine).optimize(
            time_weight=0.0, n_max=256)
        assert point.n <= perf.best.n

    def test_time_weight_shifts_toward_performance(self, machine):
        app = ApplicationProfile(f_seq=0.1, f_mem=0.3, concurrency=2.0,
                                 g=PowerLawG(0.0))
        opt = EnergyAwareOptimizer(app, machine)
        p_energy, r_energy = opt.optimize(time_weight=0.0, n_max=128)
        p_edp2, r_edp2 = opt.optimize(time_weight=2.0, n_max=128)
        # Weighting time more lands on a design at least as fast as the
        # pure-energy pick (and closer to the time-optimal core count).
        assert r_edp2.execution_time <= r_energy.execution_time
        time_best = C2BoundOptimizer(app, machine).optimize(n_max=128).best
        assert (abs(p_edp2.n - time_best.n)
                <= abs(p_energy.n - time_best.n))

    def test_objective_weights(self, machine):
        app = ApplicationProfile(f_seq=0.2, g=PowerLawG(0.0))
        _, report = EnergyAwareOptimizer(app, machine).evaluate(4)
        assert report.objective(0.0) == pytest.approx(report.total_energy)
        assert report.objective(1.0) == pytest.approx(
            report.total_energy * report.execution_time)
        with pytest.raises(InvalidParameterError):
            report.objective(-1.0)
