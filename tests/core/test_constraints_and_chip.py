"""Tests for Pollack's rule (Eq. 11) and the area budget (Eq. 12)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chip import ChipConfig
from repro.core.constraints import AreaBudget, pollack_core_area, pollack_cpi
from repro.core.params import MachineParameters
from repro.errors import InvalidParameterError


class TestPollack:
    def test_basic_value(self):
        assert pollack_cpi(1.0, k0=1.0, phi0=0.2) == pytest.approx(1.2)

    def test_quadruple_area_halves_variable_part(self):
        base = pollack_cpi(1.0, 1.0, 0.0)
        big = pollack_cpi(4.0, 1.0, 0.0)
        assert big == pytest.approx(base / 2.0)

    def test_inverse(self):
        a0 = pollack_core_area(1.2, k0=1.0, phi0=0.2)
        assert a0 == pytest.approx(1.0)

    def test_inverse_unreachable(self):
        with pytest.raises(InvalidParameterError):
            pollack_core_area(0.1, k0=1.0, phi0=0.2)

    def test_array(self):
        out = pollack_cpi(np.array([1.0, 4.0]), 1.0, 0.0)
        assert np.allclose(out, [1.0, 0.5])

    def test_invalid_area(self):
        with pytest.raises(InvalidParameterError):
            pollack_cpi(0.0)

    @given(a=st.floats(0.01, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_decreasing(self, a):
        assert pollack_cpi(a * 2.0) < pollack_cpi(a)


class TestChipConfig:
    def test_total_area_eq12(self):
        c = ChipConfig(n=4, a0=1.0, a1=0.5, a2=1.5)
        assert c.per_core_area == pytest.approx(3.0)
        assert c.total_area(shared_area=10.0) == pytest.approx(22.0)

    def test_invalid_core_count(self):
        with pytest.raises(InvalidParameterError):
            ChipConfig(n=0, a0=1.0, a1=1.0, a2=1.0)

    def test_invalid_area(self):
        with pytest.raises(InvalidParameterError):
            ChipConfig(n=1, a0=0.0, a1=1.0, a2=1.0)


class TestAreaBudget:
    def test_residual_zero_at_active_constraint(self):
        m = MachineParameters(total_area=100.0, shared_area=10.0)
        budget = AreaBudget(m)
        c = ChipConfig(n=9, a0=4.0, a1=3.0, a2=3.0)
        assert budget.residual(c) == pytest.approx(0.0)
        assert budget.is_feasible(c)

    def test_infeasible_detected(self):
        m = MachineParameters(total_area=100.0, shared_area=10.0)
        c = ChipConfig(n=10, a0=4.0, a1=3.0, a2=3.0)
        assert not AreaBudget(m).is_feasible(c)

    def test_per_core_budget(self):
        m = MachineParameters(total_area=100.0, shared_area=10.0)
        assert AreaBudget(m).per_core_budget(9) == pytest.approx(10.0)

    def test_min_sizes_enforced(self):
        m = MachineParameters(total_area=100.0, shared_area=10.0,
                              min_core_area=0.5, min_cache_area=0.25)
        tiny = ChipConfig(n=1, a0=0.4, a1=1.0, a2=1.0)
        assert not AreaBudget(m).is_feasible(tiny)

    def test_max_cores(self):
        # Budget 90, minimum footprint 1.0: N = 90 would leave zero
        # interior room for the area split, so the maximum is 89.
        m = MachineParameters(total_area=100.0, shared_area=10.0,
                              min_core_area=0.5, min_cache_area=0.25)
        assert m.max_cores == 89
        # And the reported maximum is actually optimizable.
        assert m.core_budget_area / m.max_cores > 1.0

    def test_machine_validation(self):
        with pytest.raises(InvalidParameterError):
            MachineParameters(total_area=-1.0)
        with pytest.raises(InvalidParameterError):
            MachineParameters(total_area=10.0, shared_area=10.0)
        with pytest.raises(InvalidParameterError):
            MachineParameters(pollack_k0=0.0)
