"""Tests for the thermal extension."""

from __future__ import annotations

import pytest

from repro.core.chip import ChipConfig
from repro.core.params import ApplicationProfile, MachineParameters
from repro.core.thermal import (
    ThermallyConstrainedOptimizer,
    ThermalModel,
)
from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG


@pytest.fixture(scope="module")
def machine():
    return MachineParameters(total_area=200.0, shared_area=20.0)


class TestThermalModel:
    def test_big_cores_run_hotter_per_area(self):
        tm = ThermalModel()
        small = ChipConfig(n=1, a0=1.0, a1=0.5, a2=0.5)
        big = ChipConfig(n=1, a0=16.0, a1=0.5, a2=0.5)
        t_small = tm.tile_temperature(small, total_area=100.0)
        t_big = tm.tile_temperature(big, total_area=100.0)
        assert t_big > t_small

    def test_cache_area_cools_the_tile(self):
        tm = ThermalModel()
        lean = ChipConfig(n=1, a0=4.0, a1=0.2, a2=0.2)
        cached = ChipConfig(n=1, a0=4.0, a1=4.0, a2=4.0)
        assert (tm.tile_temperature(cached, 100.0)
                < tm.tile_temperature(lean, 100.0))

    def test_power_superlinearity(self):
        tm = ThermalModel(gamma=1.5)
        assert tm.core_power(4.0) == pytest.approx(8.0)  # 4^1.5

    def test_chip_power_scales_with_cores(self):
        tm = ThermalModel()
        one = ChipConfig(n=1, a0=1.0, a1=0.5, a2=0.5)
        four = ChipConfig(n=4, a0=1.0, a1=0.5, a2=0.5)
        assert tm.chip_power(four) == pytest.approx(4 * tm.chip_power(one))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ThermalModel(gamma=1.0)
        with pytest.raises(InvalidParameterError):
            ThermalModel(r_local=0.0)
        with pytest.raises(InvalidParameterError):
            ThermalModel().core_power(0.0)
        with pytest.raises(InvalidParameterError):
            ThermalModel().tile_temperature(
                ChipConfig(n=1, a0=1.0, a1=1.0, a2=1.0), 0.0)


class TestConstrainedOptimizer:
    def test_unconstrained_matches_inner(self, machine):
        app = ApplicationProfile(f_seq=0.1, f_mem=0.3, g=PowerLawG(0.5))
        loose = ThermallyConstrainedOptimizer(app, machine, t_max=1e6)
        point, rep = loose.optimize(n_max=128)
        from repro.core import C2BoundOptimizer
        unconstrained = C2BoundOptimizer(app, machine).optimize(n_max=128)
        assert point.n == unconstrained.best.n
        assert rep.feasible

    def test_tight_limit_changes_the_design(self, machine):
        app = ApplicationProfile(f_seq=0.1, f_mem=0.3, g=PowerLawG(0.5))
        loose = ThermallyConstrainedOptimizer(app, machine, t_max=1e6)
        p_loose, r_loose = loose.optimize(n_max=128)
        tight = ThermallyConstrainedOptimizer(
            app, machine, t_max=r_loose.hottest_tile - 1.0)
        p_tight, r_tight = tight.optimize(n_max=128)
        assert r_tight.hottest_tile < r_loose.hottest_tile
        assert p_tight.n != p_loose.n

    def test_thermal_limit_pushes_toward_more_cores(self, machine):
        # More cores -> smaller (cooler) tiles under superlinear power.
        app = ApplicationProfile(f_seq=0.05, f_mem=0.3, g=PowerLawG(0.5))
        loose = ThermallyConstrainedOptimizer(app, machine, t_max=1e6)
        p_loose, r_loose = loose.optimize(n_max=256)
        tight = ThermallyConstrainedOptimizer(
            app, machine, t_max=r_loose.hottest_tile - 1.0)
        p_tight, _ = tight.optimize(n_max=256)
        assert p_tight.n >= p_loose.n

    def test_impossible_limit_raises(self, machine):
        app = ApplicationProfile(f_seq=0.1, f_mem=0.3, g=PowerLawG(0.5))
        impossible = ThermallyConstrainedOptimizer(app, machine, t_max=1.0)
        with pytest.raises(InvalidParameterError):
            impossible.optimize(n_max=64)

    def test_validation(self, machine):
        app = ApplicationProfile()
        with pytest.raises(InvalidParameterError):
            ThermallyConstrainedOptimizer(app, machine, t_max=0.0)
