"""Edge-case tests for the optimizer and area machinery."""

from __future__ import annotations

import pytest

from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG


class TestEdges:
    def test_single_core_chip(self):
        app = ApplicationProfile(f_seq=0.5, f_mem=0.3, g=PowerLawG(0.0))
        machine = MachineParameters(total_area=10.0, shared_area=1.0)
        res = C2BoundOptimizer(app, machine).optimize(n_min=1, n_max=1)
        assert res.best.n == 1

    def test_min_area_floors_bind_at_max_cores(self):
        machine = MachineParameters(total_area=20.0, shared_area=2.0,
                                    min_core_area=0.1, min_cache_area=0.05)
        app = ApplicationProfile(f_seq=0.01, f_mem=0.3, g=PowerLawG(1.5))
        opt = C2BoundOptimizer(app, machine)
        n_max = machine.max_cores
        cfg = opt.area_split(n_max)
        # The split still respects the floors and the budget.
        assert cfg.a0 >= machine.min_core_area - 1e-9
        assert cfg.a1 >= machine.min_cache_area - 1e-9
        total = n_max * cfg.per_core_area + machine.shared_area
        assert total <= machine.total_area + 1e-6

    def test_infeasible_core_count_raises(self):
        machine = MachineParameters(total_area=20.0, shared_area=2.0)
        app = ApplicationProfile()
        with pytest.raises(InvalidParameterError):
            C2BoundOptimizer(app, machine).area_split(10 ** 6)

    def test_fully_sequential_app_wants_one_core(self):
        app = ApplicationProfile(f_seq=1.0, f_mem=0.3, g=PowerLawG(0.0))
        machine = MachineParameters()
        res = C2BoundOptimizer(app, machine).optimize(n_max=64)
        # With no parallel part, extra cores only shrink the one that
        # matters: the time-optimal design is a single fat core.
        assert res.best.n == 1

    def test_zero_fmem_app_is_pollack_only(self):
        # No memory traffic: the split should starve the caches.
        app = ApplicationProfile(f_seq=0.05, f_mem=0.0, g=PowerLawG(0.0))
        machine = MachineParameters()
        cfg = C2BoundOptimizer(app, machine).area_split(16)
        assert cfg.a0 > 5 * (cfg.a1 + cfg.a2)

    def test_memory_only_app_starves_core(self):
        app = ApplicationProfile(f_seq=0.05, f_mem=1.0, concurrency=1.0,
                                 g=PowerLawG(0.0))
        machine = MachineParameters()
        cfg = C2BoundOptimizer(app, machine).area_split(16)
        assert (cfg.a1 + cfg.a2) > cfg.a0

    def test_concurrency_reduces_cache_pressure(self):
        # Higher C discounts the memory term, shifting area to cores.
        machine = MachineParameters()
        base = ApplicationProfile(f_seq=0.05, f_mem=0.6, g=PowerLawG(0.0))
        low_c = C2BoundOptimizer(base.with_concurrency(1.0),
                                 machine).area_split(16)
        high_c = C2BoundOptimizer(base.with_concurrency(8.0),
                                  machine).area_split(16)
        assert high_c.a0 > low_c.a0
