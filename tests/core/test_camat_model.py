"""Tests for the cache-area-to-C-AMAT model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.camat_model import CAMATModel, HierarchyLatencies
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def model() -> CAMATModel:
    return CAMATModel()


class TestLatencyStack:
    def test_amat_floor_is_hit_time(self, model):
        # Infinite cache: AMAT approaches the L1 hit time plus the
        # compulsory floor contribution.
        amat = float(model.amat(1e9, 1e9))
        assert amat < model.latencies.l1_hit + 1.0

    def test_amat_decreases_with_l1_area(self, model):
        a = float(model.amat(0.1, 1.0))
        b = float(model.amat(1.0, 1.0))
        assert b < a

    def test_amat_decreases_with_l2_area(self, model):
        a = float(model.amat(0.5, 0.5))
        b = float(model.amat(0.5, 5.0))
        assert b < a

    def test_camat_is_amat_over_c(self, model):
        amat = float(model.amat(0.5, 2.0))
        for c in (1.0, 4.0, 8.0):
            assert model.camat(0.5, 2.0, c) == pytest.approx(amat / c)

    def test_camat_rejects_c_below_one(self, model):
        with pytest.raises(InvalidParameterError):
            model.camat(1.0, 1.0, 0.5)

    def test_vectorized(self, model):
        a1 = np.array([0.5, 1.0, 2.0])
        out = model.amat(a1, 1.0)
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)

    def test_latency_validation(self):
        with pytest.raises(InvalidParameterError):
            HierarchyLatencies(l1_hit=10.0, l2_hit=5.0, dram=100.0)


class TestDecomposition:
    def test_params_value_matches_camat(self, model):
        for c in (1.0, 4.0):
            params = model.as_camat_params(0.5, 2.0, c)
            assert params.value == pytest.approx(model.camat(0.5, 2.0, c))

    def test_sequential_case_is_amat(self, model):
        params = model.as_camat_params(0.5, 2.0, 1.0)
        assert params.value == pytest.approx(float(model.amat(0.5, 2.0)))

    @given(a1=st.floats(0.02, 50.0), a2=st.floats(0.02, 50.0),
           c=st.floats(1.0, 16.0))
    @settings(max_examples=200, deadline=None)
    def test_decomposition_consistency(self, a1, a2, c):
        model = CAMATModel()
        params = model.as_camat_params(a1, a2, c)
        assert params.value == pytest.approx(model.camat(a1, a2, c),
                                             rel=1e-9)
