"""Tests for the multi-phase (generalized Eq. 8) optimizer."""

from __future__ import annotations

import pytest

from repro.core.multiphase import (
    MultiPhaseOptimizer,
    PhaseWeight,
)
from repro.core.optimizer import C2BoundOptimizer
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG


@pytest.fixture(scope="module")
def machine():
    return MachineParameters()


def compute_phase() -> ApplicationProfile:
    return ApplicationProfile(name="compute", f_seq=0.02, f_mem=0.1,
                              concurrency=2.0, g=PowerLawG(0.5))


def memory_phase() -> ApplicationProfile:
    return ApplicationProfile(name="memory", f_seq=0.02, f_mem=0.8,
                              concurrency=2.0, g=PowerLawG(0.5))


class TestMultiPhase:
    def test_single_fixed_size_phase_matches_single_profile(self, machine):
        # For a fixed-size phase (g = 1) the per-work mixture objective
        # IS execution time, so the single-profile optimizer and the
        # one-phase mixture must agree exactly.
        app = ApplicationProfile(name="fixed", f_seq=0.05, f_mem=0.4,
                                 concurrency=2.0, g=PowerLawG(0.0))
        multi = MultiPhaseOptimizer([PhaseWeight(app, 1.0)], machine)
        res = multi.optimize(n_max=256)
        single = C2BoundOptimizer(app, machine).optimize(n_max=256)
        assert res.config.n == single.best.n

    def test_weights_normalized(self, machine):
        phases = [PhaseWeight(compute_phase(), 2.0),
                  PhaseWeight(memory_phase(), 6.0)]
        opt = MultiPhaseOptimizer(phases, machine)
        assert sum(p.weight for p in opt.phases) == pytest.approx(1.0)

    def test_mixture_interpolates_cache_allocation(self, machine):
        # The shared chip's cache share sits between the two phases'
        # dedicated optima and tracks the memory phase's weight.
        def cache_share(weight_mem: float) -> float:
            opt = MultiPhaseOptimizer(
                [PhaseWeight(compute_phase(), 1.0 - weight_mem),
                 PhaseWeight(memory_phase(), weight_mem)], machine)
            cfg = opt.area_split(32)
            return (cfg.a1 + cfg.a2) / cfg.per_core_area

        lo = cache_share(0.1)
        hi = cache_share(0.9)
        assert hi > lo

    def test_per_phase_costs_sum_to_total(self, machine):
        opt = MultiPhaseOptimizer(
            [PhaseWeight(compute_phase(), 0.5),
             PhaseWeight(memory_phase(), 0.5)], machine)
        res = opt.optimize(n_max=128)
        assert res.cost == pytest.approx(sum(res.per_phase_cost))

    def test_memory_heavy_mixture_costs_more(self, machine):
        light = MultiPhaseOptimizer(
            [PhaseWeight(compute_phase(), 0.9),
             PhaseWeight(memory_phase(), 0.1)], machine).optimize(n_max=128)
        heavy = MultiPhaseOptimizer(
            [PhaseWeight(compute_phase(), 0.1),
             PhaseWeight(memory_phase(), 0.9)], machine).optimize(n_max=128)
        assert heavy.cost > light.cost

    def test_validation(self, machine):
        with pytest.raises(InvalidParameterError):
            MultiPhaseOptimizer([], machine)
        with pytest.raises(InvalidParameterError):
            PhaseWeight(compute_phase(), 0.0)
