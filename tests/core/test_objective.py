"""Tests for Eqs. 5-10 (execution time and the J_D objective)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import (
    cpu_time,
    data_stall_time_amat,
    data_stall_time_camat,
    execution_time,
    generalized_objective,
    objective_jd,
)
from repro.errors import InvalidParameterError
from repro.laws.gfunction import PowerLawG


class TestEq5to7:
    def test_eq5_basic(self):
        # IC=1000, CPI=1, stall=0.5/instr, cycle=2ns.
        assert cpu_time(1000, 1.0, 0.5, 2.0) == pytest.approx(3000.0)

    def test_eq6_stall(self):
        assert data_stall_time_amat(0.3, 10.0) == pytest.approx(3.0)

    def test_eq7_reduces_to_eq5_eq6_when_sequential(self):
        # With C = 1 (C-AMAT == AMAT) and no overlap, Eq. 7 == Eq. 5+6.
        ic, cpi, f_mem, amat = 1e6, 0.8, 0.4, 12.0
        t7 = execution_time(ic, cpi, f_mem, amat, overlap_ratio=0.0)
        t56 = cpu_time(ic, cpi, data_stall_time_amat(f_mem, amat))
        assert t7 == pytest.approx(t56)

    def test_overlap_reduces_time(self):
        t0 = execution_time(1e6, 1.0, 0.5, 10.0, overlap_ratio=0.0)
        t1 = execution_time(1e6, 1.0, 0.5, 10.0, overlap_ratio=0.5)
        assert t1 < t0

    def test_invalid_overlap(self):
        with pytest.raises(InvalidParameterError):
            data_stall_time_camat(0.5, 10.0, overlap_ratio=1.0)

    def test_invalid_fmem(self):
        with pytest.raises(InvalidParameterError):
            data_stall_time_camat(1.5, 10.0)


class TestEq10:
    def test_n_equals_one_matches_eq7(self):
        ic0, cpi, f_mem, camat, f_seq = 1e6, 1.0, 0.3, 5.0, 0.1
        jd = objective_jd(ic0, cpi, f_mem, camat, f_seq, PowerLawG(1.5), 1)
        t7 = execution_time(ic0, cpi, f_mem, camat)
        assert jd == pytest.approx(t7)

    def test_amdahl_scaling_floor(self):
        # g = 1: J_D(N) -> IC0 * q * f_seq as N grows (Amdahl floor).
        jd_inf = objective_jd(1e6, 1.0, 0.3, 5.0, 0.25, PowerLawG(0.0), 10**9)
        q = 1.0 + 0.3 * 5.0
        assert jd_inf == pytest.approx(1e6 * q * 0.25, rel=1e-6)

    def test_gustafson_scaling_constant(self):
        # g = N: the time scaling factor is exactly 1 at every N.
        for n in (1, 10, 1000):
            jd = objective_jd(1e6, 1.0, 0.3, 5.0, 0.1, PowerLawG(1.0), n)
            assert jd == pytest.approx(1e6 * (1.0 + 1.5))

    def test_array_broadcast(self):
        ns = np.array([1, 10, 100])
        jd = objective_jd(1e6, 1.0, 0.3, 5.0, 0.1, PowerLawG(1.5), ns)
        assert jd.shape == (3,)

    def test_higher_camat_raises_time(self):
        lo = objective_jd(1e6, 1.0, 0.3, 2.0, 0.1, PowerLawG(1.0), 8)
        hi = objective_jd(1e6, 1.0, 0.3, 8.0, 0.1, PowerLawG(1.0), 8)
        assert hi > lo

    @given(f_seq=st.floats(0.0, 1.0), n=st.integers(1, 10000),
           b=st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_jd_positive(self, f_seq, n, b):
        jd = objective_jd(1e6, 1.0, 0.3, 5.0, f_seq, PowerLawG(b), n)
        assert jd > 0

    @given(f_seq=st.floats(0.01, 0.99), b=st.floats(0.0, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_sublinear_time_decreases_with_n(self, f_seq, b):
        # Case II workloads: more cores never hurt at fixed areas.
        ns = np.array([1, 2, 4, 8, 16, 32])
        jd = objective_jd(1e6, 1.0, 0.3, 5.0, f_seq, PowerLawG(b), ns)
        assert np.all(np.diff(jd) <= 1e-9)


class TestGeneralizedObjective:
    def test_matches_eq8_special_case(self):
        # Only degrees 1 and N present: J_D = T_1 + g(N) T_N / N.
        g = PowerLawG(1.5)
        n = 8
        t1, tn = 100.0, 400.0
        times = [0.0] * n
        times[0] = t1
        times[-1] = tn
        expected = t1 + float(g(float(n))) * tn / n
        assert generalized_objective(times, g) == pytest.approx(expected)

    def test_single_degree(self):
        assert generalized_objective([42.0], PowerLawG(1.5)) == 42.0

    def test_negative_time_rejected(self):
        with pytest.raises(InvalidParameterError):
            generalized_objective([1.0, -1.0], PowerLawG(1.0))

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            generalized_objective([], PowerLawG(1.0))
