"""The Fig. 1 worked example must match the paper exactly."""

from __future__ import annotations

import pytest

from repro.camat import TraceAnalyzer, fig1_trace, hit_phases, pure_miss_phases
from repro.experiments.fig01_camat_demo import PAPER_VALUES, run_fig1


@pytest.fixture(scope="module")
def stats():
    return TraceAnalyzer().analyze(fig1_trace())


class TestFig1Exact:
    def test_hit_time(self, stats):
        assert stats.hit_time == PAPER_VALUES["H"]

    def test_miss_rate(self, stats):
        assert stats.miss_rate == pytest.approx(PAPER_VALUES["MR"])

    def test_avg_miss_penalty(self, stats):
        assert stats.avg_miss_penalty == PAPER_VALUES["AMP"]

    def test_amat(self, stats):
        assert stats.amat == pytest.approx(PAPER_VALUES["AMAT"])

    def test_hit_concurrency_is_5_over_2(self, stats):
        assert stats.hit_concurrency == pytest.approx(2.5)

    def test_pure_miss_rate_is_one_fifth(self, stats):
        assert stats.pure_miss_rate == pytest.approx(0.2)

    def test_pure_amp(self, stats):
        assert stats.pure_avg_miss_penalty == PAPER_VALUES["pAMP"]

    def test_miss_concurrency(self, stats):
        assert stats.miss_concurrency == PAPER_VALUES["C_M"]

    def test_camat_is_1_6(self, stats):
        assert stats.camat == pytest.approx(1.6)

    def test_concurrency_doubles_memory_performance(self, stats):
        # "In this example, concurrency has doubled memory performance":
        # 8 active cycles vs 19 sequential latency cycles; the paper's
        # C = AMAT/C-AMAT is 3.8/1.6.
        assert stats.concurrency == pytest.approx(3.8 / 1.6)

    def test_active_cycles_is_8(self, stats):
        assert stats.memory_active_wall_cycles == 8

    def test_pure_misses_only_access_3(self, stats):
        assert stats.pure_misses == 1
        assert stats.misses == 2


class TestFig1Phases:
    def test_hit_phase_structure(self):
        phases = hit_phases(fig1_trace())
        assert [(p.concurrency, p.duration) for p in phases] == [
            (2, 2), (4, 1), (3, 2), (1, 1)]

    def test_hit_phase_access_cycles_total_15(self):
        phases = hit_phases(fig1_trace())
        assert sum(p.access_cycles for p in phases) == 15

    def test_pure_miss_phase(self):
        phases = pure_miss_phases(fig1_trace())
        assert [(p.concurrency, p.duration) for p in phases] == [(1, 2)]


class TestFig1Experiment:
    def test_all_rows_match(self):
        table = run_fig1()
        assert len(table) == len(PAPER_VALUES)
        assert all(table.column("match"))
