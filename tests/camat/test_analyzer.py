"""Unit tests for the trace analyzer's counting semantics."""

from __future__ import annotations

import pytest

from repro.camat import AccessTrace, MemoryAccess, TraceAnalyzer
from repro.errors import TraceError


def analyze(accesses):
    return TraceAnalyzer().analyze(AccessTrace(accesses))


class TestSingleAccess:
    def test_single_hit(self):
        s = analyze([MemoryAccess(start=0, hit_cycles=3)])
        assert s.accesses == 1
        assert s.misses == 0
        assert s.amat == 3.0
        assert s.camat == 3.0
        assert s.hit_concurrency == 1.0
        assert s.concurrency == 1.0

    def test_single_miss_is_pure(self):
        s = analyze([MemoryAccess(start=0, hit_cycles=2, miss_penalty=5)])
        assert s.misses == 1
        assert s.pure_misses == 1
        assert s.pure_miss_rate == 1.0
        assert s.pure_avg_miss_penalty == 5.0
        assert s.amat == 7.0
        assert s.camat == 7.0

    def test_zero_penalty_is_hit(self):
        s = analyze([MemoryAccess(start=0, hit_cycles=1, miss_penalty=0)])
        assert s.misses == 0


class TestOverlap:
    def test_two_identical_hits_double_ch(self):
        s = analyze([MemoryAccess(0, 4), MemoryAccess(0, 4)])
        assert s.hit_concurrency == 2.0
        assert s.camat == pytest.approx(2.0)  # 4 active cycles / 2 accesses

    def test_fully_hidden_miss_is_not_pure(self):
        # Miss window 3..5 is covered by the second access's hit window.
        s = analyze([
            MemoryAccess(start=0, hit_cycles=3, miss_penalty=2),
            MemoryAccess(start=0, hit_cycles=6),
        ])
        assert s.misses == 1
        assert s.pure_misses == 0
        assert s.pure_miss_rate == 0.0
        # All cycles have hit activity: C-AMAT = 6 active / 2 accesses.
        assert s.camat == pytest.approx(3.0)

    def test_partially_hidden_miss(self):
        # Penalty cycles 3..7; hit activity covers 3..5 only.
        s = analyze([
            MemoryAccess(start=0, hit_cycles=3, miss_penalty=4),
            MemoryAccess(start=0, hit_cycles=5),
        ])
        assert s.pure_misses == 1
        # Pure cycles are 5 and 6 (0-indexed cycles 5, 6).
        assert s.pure_miss_wall_cycles == 2
        assert s.pure_avg_miss_penalty == 2.0

    def test_two_overlapping_pure_misses_cm(self):
        # Both misses outstanding over the same cycles, no hits there.
        s = analyze([
            MemoryAccess(start=0, hit_cycles=1, miss_penalty=4),
            MemoryAccess(start=0, hit_cycles=1, miss_penalty=4),
        ])
        assert s.pure_misses == 2
        assert s.miss_concurrency == pytest.approx(2.0)

    def test_disjoint_accesses_sequential(self):
        s = analyze([MemoryAccess(0, 2), MemoryAccess(10, 2),
                     MemoryAccess(20, 2)])
        assert s.hit_concurrency == 1.0
        assert s.camat == pytest.approx(2.0)
        assert s.concurrency == pytest.approx(1.0)


class TestValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            AccessTrace([])

    def test_zero_hit_cycles_rejected(self):
        with pytest.raises(TraceError):
            MemoryAccess(start=0, hit_cycles=0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(TraceError):
            MemoryAccess(start=0, hit_cycles=1, miss_penalty=-1)

    def test_from_arrays_shape_mismatch(self):
        import numpy as np
        with pytest.raises(TraceError):
            AccessTrace.from_arrays(np.array([0, 1]), np.array([1]),
                                    np.array([0, 0]))


class TestTraceViews:
    def test_span_and_bounds(self):
        t = AccessTrace([MemoryAccess(5, 3, 2), MemoryAccess(1, 2)])
        assert t.first_cycle == 1
        assert t.last_cycle == 10
        assert t.span == 9

    def test_iteration_and_indexing(self):
        accesses = [MemoryAccess(0, 1), MemoryAccess(2, 3)]
        t = AccessTrace(accesses)
        assert list(t) == accesses
        assert t[1] == accesses[1]
        assert len(t) == 2
