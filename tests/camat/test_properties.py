"""Property-based tests for C-AMAT invariants (hypothesis).

The central theorem the library relies on:

    C-AMAT (Eq. 2 with our counting) == memory-active cycles / accesses

together with the orderings C-AMAT <= AMAT, pMR <= MR, C_H >= 1,
C_M >= 1, and the equivalence of the direct counting with the phase
decomposition.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camat import (
    AccessTrace,
    MemoryAccess,
    TraceAnalyzer,
    hit_phases,
    pure_miss_phases,
)

access_strategy = st.builds(
    MemoryAccess,
    start=st.integers(min_value=0, max_value=300),
    hit_cycles=st.integers(min_value=1, max_value=8),
    miss_penalty=st.integers(min_value=0, max_value=30),
)

trace_strategy = st.lists(access_strategy, min_size=1, max_size=40).map(
    AccessTrace)


@given(trace_strategy)
@settings(max_examples=200, deadline=None)
def test_camat_equals_active_cycles_per_access(trace):
    stats = TraceAnalyzer().analyze(trace)
    expected = stats.memory_active_wall_cycles / stats.accesses
    assert np.isclose(stats.camat, expected)


@given(trace_strategy)
@settings(max_examples=200, deadline=None)
def test_camat_never_exceeds_amat(trace):
    stats = TraceAnalyzer().analyze(trace)
    assert stats.camat <= stats.amat + 1e-9


@given(trace_strategy)
@settings(max_examples=200, deadline=None)
def test_pure_miss_rate_never_exceeds_miss_rate(trace):
    stats = TraceAnalyzer().analyze(trace)
    assert stats.pure_miss_rate <= stats.miss_rate + 1e-12


@given(trace_strategy)
@settings(max_examples=200, deadline=None)
def test_concurrency_parameters_at_least_one(trace):
    stats = TraceAnalyzer().analyze(trace)
    assert stats.hit_concurrency >= 1.0
    assert stats.miss_concurrency >= 1.0
    assert stats.concurrency >= 1.0 - 1e-12


@given(trace_strategy)
@settings(max_examples=200, deadline=None)
def test_phase_decomposition_matches_direct_counting(trace):
    stats = TraceAnalyzer().analyze(trace)
    hp = hit_phases(trace)
    assert sum(p.duration for p in hp) == stats.hit_active_wall_cycles
    assert sum(p.access_cycles for p in hp) == stats.total_hit_access_cycles
    pp = pure_miss_phases(trace)
    assert sum(p.duration for p in pp) == stats.pure_miss_wall_cycles
    assert (sum(p.access_cycles for p in pp)
            == stats.total_pure_miss_access_cycles)


@given(trace_strategy)
@settings(max_examples=200, deadline=None)
def test_active_cycles_split_into_hit_and_pure(trace):
    # Every memory-active cycle is either hit-active or a pure miss cycle.
    stats = TraceAnalyzer().analyze(trace)
    assert (stats.hit_active_wall_cycles + stats.pure_miss_wall_cycles
            == stats.memory_active_wall_cycles)


@given(trace_strategy)
@settings(max_examples=100, deadline=None)
def test_sequential_shift_invariance(trace):
    # Shifting all accesses by a constant changes nothing.
    shifted = AccessTrace([
        MemoryAccess(a.start + 1000, a.hit_cycles, a.miss_penalty)
        for a in trace])
    s0 = TraceAnalyzer().analyze(trace)
    s1 = TraceAnalyzer().analyze(shifted)
    assert np.isclose(s0.camat, s1.camat)
    assert np.isclose(s0.amat, s1.amat)
    assert s0.pure_misses == s1.pure_misses


@given(st.lists(st.tuples(st.integers(1, 8), st.integers(0, 20)),
                min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_fully_sequential_trace_is_amat(specs):
    # Accesses laid end-to-end: no concurrency, C-AMAT == AMAT, C == 1.
    accesses = []
    cursor = 0
    for hit, penalty in specs:
        accesses.append(MemoryAccess(cursor, hit, penalty))
        cursor += hit + penalty
    stats = TraceAnalyzer().analyze(AccessTrace(accesses))
    assert np.isclose(stats.camat, stats.amat)
    assert np.isclose(stats.concurrency, 1.0)
    assert np.isclose(stats.pure_miss_rate, stats.miss_rate)
