"""Columnar vs object trace construction: one representation, two doors.

``AccessTrace.from_arrays`` stores NumPy columns directly (the
simulator/workload fast path); ``AccessTrace(accesses)`` builds the same
columns from :class:`MemoryAccess` objects.  Whatever the door, the
analyzer must see identical statistics, the object views must round-trip
exactly, and the vectorized validation must reject exactly what the
``MemoryAccess.__post_init__`` checks reject.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.camat.analyzer import TraceAnalyzer
from repro.camat.trace import AccessTrace, MemoryAccess, fig1_trace
from repro.errors import TraceError


def _random_columns(seed: int, n: int):
    gen = np.random.default_rng(seed)
    starts = np.sort(gen.integers(0, 50 * n, size=n)).astype(np.int64)
    hits = gen.integers(1, 6, size=n).astype(np.int64)
    # ~60% hits; the rest carry a miss window of 1..40 cycles.
    penalties = np.where(gen.random(n) < 0.6, 0,
                         gen.integers(1, 41, size=n)).astype(np.int64)
    addresses = gen.integers(0, 1 << 20, size=n).astype(np.int64)
    return starts, hits, penalties, addresses


@pytest.mark.parametrize("seed,n", [(0, 1), (1, 7), (2, 100), (3, 1000)])
def test_identical_statistics_both_constructions(seed, n):
    starts, hits, penalties, addresses = _random_columns(seed, n)
    columnar = AccessTrace.from_arrays(starts, hits, penalties,
                                       addresses=addresses)
    objects = AccessTrace(
        MemoryAccess(start=int(s), hit_cycles=int(h), miss_penalty=int(p),
                     address=int(a))
        for s, h, p, a in zip(starts, hits, penalties, addresses))
    analyzer = TraceAnalyzer()
    assert analyzer.analyze(columnar) == analyzer.analyze(objects)


@pytest.mark.parametrize("seed", [4, 5])
def test_object_views_round_trip(seed):
    starts, hits, penalties, addresses = _random_columns(seed, 50)
    trace = AccessTrace.from_arrays(starts, hits, penalties,
                                    addresses=addresses)
    assert len(trace) == 50
    # Lazy materialization: indexing and iteration agree with the columns.
    for i in (0, 17, 49):
        access = trace[i]
        assert isinstance(access, MemoryAccess)
        assert access.start == starts[i]
        assert access.hit_cycles == hits[i]
        assert access.miss_penalty == penalties[i]
        assert access.address == addresses[i]
    assert [a.start for a in trace] == starts.tolist()
    rebuilt = AccessTrace(iter(trace))
    assert np.array_equal(rebuilt.starts, trace.starts)
    assert np.array_equal(rebuilt.miss_ends, trace.miss_ends)
    assert np.array_equal(rebuilt.addresses, trace.addresses)


def test_from_arrays_matches_fig1():
    reference = fig1_trace()
    trace = AccessTrace.from_arrays(reference.starts.copy(),
                                    reference.hit_lengths.copy(),
                                    reference.miss_penalties.copy())
    analyzer = TraceAnalyzer()
    assert analyzer.analyze(trace) == analyzer.analyze(reference)


def test_from_arrays_validation_mirrors_object_checks():
    ok = np.array([0, 3, 6], dtype=np.int64)
    with pytest.raises(TraceError, match="hit window must last >= 1"):
        AccessTrace.from_arrays(ok, np.array([3, 0, 3]), np.zeros(3))
    with pytest.raises(TraceError, match="miss penalty must be >= 0"):
        AccessTrace.from_arrays(ok, np.ones(3), np.array([0, -1, 0]))
    with pytest.raises(TraceError, match="at least one access"):
        AccessTrace.from_arrays(np.empty(0), np.empty(0), np.empty(0))
    with pytest.raises(TraceError, match="identical shapes"):
        AccessTrace.from_arrays(ok, np.ones(2), np.zeros(3))


def test_from_arrays_copies_into_int64_columns():
    starts = [0, 10, 20]
    trace = AccessTrace.from_arrays(starts, [1, 2, 3], [0, 0, 5])
    assert trace.starts.dtype == np.int64
    assert trace.hit_ends.tolist() == [1, 12, 23]
    assert trace.miss_ends.tolist() == [1, 12, 28]
    # Default addresses column exists (zeros) for API parity.
    assert trace.addresses.tolist() == [0, 0, 0]
