"""End-to-end integration tests: the full APS flow on real simulation.

Characterize (simulate + detector) -> optimize (C2-Bound) -> simulate the
narrowed region — the complete Fig. 5/6 pipeline, plus cross-module
consistency checks between the simulator, the detector, the offline
analyzer and the analytic model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.camat import TraceAnalyzer
from repro.core import ApplicationProfile, C2BoundOptimizer, MachineParameters
from repro.detector import CAMATDetector
from repro.dse import (
    APSExplorer,
    BudgetedEvaluator,
    SimulatorEvaluator,
    brute_force_search,
)
from repro.dse.space import DesignSpace, Parameter
from repro.laws.gfunction import PowerLawG
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import parsec_like


@pytest.fixture(scope="module")
def sim_result():
    rng = np.random.default_rng(11)
    wl = parsec_like("ocean", n_ops=6000)
    chip = SimulatedChip(n_cores=2)
    return CMPSimulator(chip).run(wl.streams(2, rng))


class TestCharacterization:
    def test_detector_matches_offline_on_sim_trace(self, sim_result):
        trace = sim_result.core_trace(0)
        det = CAMATDetector(window=1 << 17)
        det.observe_trace(trace)
        r = det.report()
        s = TraceAnalyzer().analyze(trace)
        assert r.camat == pytest.approx(s.camat)
        assert r.concurrency == pytest.approx(s.concurrency)

    def test_measured_concurrency_above_one(self, sim_result):
        s = sim_result.core_stats(0)
        assert s.concurrency > 1.0  # OoO + MSHRs create real overlap

    def test_profile_from_measurement(self, sim_result):
        # Build an ApplicationProfile from measured statistics — the
        # characterization step of APS.
        core = sim_result.cores[0]
        s = sim_result.core_stats(0)
        app = ApplicationProfile(
            name="measured", f_seq=0.05, f_mem=core.f_mem,
            concurrency=s.concurrency, g=PowerLawG(1.0))
        assert 0.0 < app.f_mem < 1.0
        res = C2BoundOptimizer(app, MachineParameters()).optimize(n_max=64)
        assert res.best.n >= 1


class TestAPSOnRealSimulator:
    def test_aps_close_to_full_sweep(self):
        wl = parsec_like("fluidanimate", n_ops=1500)
        space = DesignSpace([
            Parameter("a0", (0.5, 1.0)),
            Parameter("a1", (0.25, 0.5)),
            Parameter("a2", (2.0, 4.0)),
            Parameter("n", (2, 4)),
            Parameter("issue_width", (2, 4)),
            Parameter("rob_size", (32, 128)),
        ])
        app, machine = (ApplicationProfile(
            f_seq=0.02, f_mem=0.35, concurrency=4.0, g=PowerLawG(1.0)),
            MachineParameters())
        full = brute_force_search(
            space, BudgetedEvaluator(SimulatorEvaluator(wl, seed=3)))
        aps = APSExplorer(app, machine, space).explore(
            BudgetedEvaluator(SimulatorEvaluator(wl, seed=3)))
        assert aps.simulations == 4  # issue x rob grid
        error = (aps.best_cost - full.best_cost) / full.best_cost
        assert error < 0.6  # reduced grid; paper reports 5.96% at 10^6

    def test_simulator_evaluator_cost_is_cpi(self):
        wl = parsec_like("blackscholes", n_ops=1000)
        cost = SimulatorEvaluator(wl, seed=1).evaluate(
            {"n": 2, "issue_width": 4, "rob_size": 128,
             "l1_kib": 32.0, "l2_kib": 512.0})
        assert 0.1 < cost < 1000.0


class TestModelVsSimulator:
    def test_cache_capacity_direction_agrees(self):
        # Both the analytic model and the simulator must agree that a
        # bigger last-level cache lowers memory latency for an app with
        # an L2-scale reuse tier (fluidanimate's warm set).  The L2 is
        # the capacity that gates DRAM, so its effect is first-order;
        # L1 sizing only trades ~15-cycle L2 hits, a second-order term.
        wl = parsec_like("fluidanimate", n_ops=5000)
        ev = SimulatorEvaluator(wl, seed=5)
        base = {"n": 2, "issue_width": 4, "rob_size": 128, "l1_kib": 32.0}
        small = ev.evaluate({**base, "l2_kib": 32.0})
        large = ev.evaluate({**base, "l2_kib": 1024.0})
        assert large < small
        from repro.core import CAMATModel
        cm = CAMATModel()
        assert cm.amat(0.5, 1024.0 / 64.0) < cm.amat(0.5, 32.0 / 64.0)

    def test_concurrency_direction_agrees(self):
        # More MSHR/ROB concurrency helps the simulator like higher C
        # helps the model.
        wl = parsec_like("canneal", n_ops=3000)
        ev = SimulatorEvaluator(wl, seed=6)
        base = {"n": 2, "issue_width": 4, "l1_kib": 32.0, "l2_kib": 512.0}
        narrow = ev.evaluate({**base, "rob_size": 8})
        wide = ev.evaluate({**base, "rob_size": 256})
        assert wide < narrow
