"""Tests for profile serialization."""

from __future__ import annotations

import pytest

from repro.core.params import ApplicationProfile
from repro.errors import InvalidParameterError
from repro.io.profiles import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.laws.gfunction import FFTLikeG, PowerLawG


class TestRoundTrip:
    def test_power_law_profile(self, tmp_path):
        p = ApplicationProfile(name="tmm", f_seq=0.03, f_mem=0.4,
                               g=PowerLawG(1.5, name="tmm"),
                               concurrency=4.0, overlap_ratio=0.1,
                               ic0=2e9, base_working_set_kib=512.0)
        loaded = load_profile(save_profile(p, tmp_path / "p.json"))
        assert loaded == p  # frozen dataclasses compare by value

    def test_fft_profile(self, tmp_path):
        p = ApplicationProfile(name="fft", g=FFTLikeG(m_ref=4096.0))
        loaded = load_profile(save_profile(p, tmp_path / "fft.json"))
        assert loaded.g.m_ref == 4096.0
        assert loaded.g(4096.0) == pytest.approx(2 * 4096.0)

    def test_dict_round_trip(self):
        p = ApplicationProfile()
        assert profile_from_dict(profile_to_dict(p)) == p

    def test_json_is_diffable(self, tmp_path):
        p = ApplicationProfile(name="x")
        path = save_profile(p, tmp_path / "x.json")
        text = path.read_text()
        assert '"name": "x"' in text
        assert text.endswith("\n")


class TestErrors:
    def test_unknown_g_type_rejected(self):
        with pytest.raises(InvalidParameterError):
            profile_from_dict({"version": 1, "name": "x", "f_seq": 0.1,
                               "f_mem": 0.3, "g": {"type": "magic"},
                               "concurrency": 1.0, "overlap_ratio": 0.0,
                               "ic0": 1e9, "base_working_set_kib": 1.0})

    def test_custom_g_not_serializable(self):
        from repro.laws.gfunction import g_from_h
        import numpy as np
        g = g_from_h(lambda m: np.asarray(m) ** 1.2, 100.0)
        p = ApplicationProfile(g=g)
        with pytest.raises(InvalidParameterError):
            profile_to_dict(p)

    def test_version_checked(self):
        with pytest.raises(InvalidParameterError):
            profile_from_dict({"version": 99})

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_profile(tmp_path / "missing.json")

    def test_invalid_values_rejected_on_load(self, tmp_path):
        import json
        p = ApplicationProfile()
        path = save_profile(p, tmp_path / "p.json")
        data = json.loads(path.read_text())
        data["f_seq"] = 2.0
        path.write_text(json.dumps(data))
        with pytest.raises(InvalidParameterError):
            load_profile(path)
