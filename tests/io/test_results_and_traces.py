"""Tests for result tables and trace persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.camat import AccessTrace, MemoryAccess, TraceAnalyzer, fig1_trace
from repro.errors import InvalidParameterError, TraceError
from repro.io import ResultTable, load_trace, save_trace


class TestResultTable:
    def test_add_positional_and_named(self):
        t = ResultTable(["a", "b"])
        t.add_row(1, 2)
        t.add_row(b=4, a=3)
        assert t.rows == [(1, 2), (3, 4)]
        assert t.column("b") == [2, 4]

    def test_render_contains_data(self):
        t = ResultTable(["name", "value"], title="demo")
        t.add_row("x", 1.25)
        out = t.render()
        assert "demo" in out
        assert "1.25" in out
        assert "name" in out

    def test_csv_round_trip(self, tmp_path):
        t = ResultTable(["n", "v"])
        t.add_row(1, 0.5)
        t.add_row(2, 0.25)
        path = t.save_csv(tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "n,v"
        assert len(lines) == 3

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ResultTable([])
        with pytest.raises(InvalidParameterError):
            ResultTable(["a", "a"])
        t = ResultTable(["a"])
        with pytest.raises(InvalidParameterError):
            t.add_row(1, 2)
        with pytest.raises(InvalidParameterError):
            t.add_row(b=1)
        with pytest.raises(InvalidParameterError):
            t.column("missing")

    def test_scientific_formatting(self):
        t = ResultTable(["v"])
        t.add_row(1.5e12)
        assert "e+12" in t.render()


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = fig1_trace()
        path = save_trace(trace, tmp_path / "fig1.npz")
        loaded = load_trace(path)
        s0 = TraceAnalyzer().analyze(trace)
        s1 = TraceAnalyzer().analyze(loaded)
        assert s0.camat == s1.camat
        assert len(loaded) == len(trace)

    def test_addresses_preserved(self, tmp_path):
        trace = AccessTrace([MemoryAccess(0, 2, 0, address=1234)])
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert loaded[0].address == 1234

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_large_trace(self, tmp_path):
        n = 5000
        starts = np.arange(n, dtype=np.int64) * 2
        trace = AccessTrace.from_arrays(
            starts, np.full(n, 3), np.zeros(n, dtype=np.int64))
        loaded = load_trace(save_trace(trace, tmp_path / "big.npz"))
        assert len(loaded) == n
