"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConvergenceError,
    DesignSpaceError,
    InvalidParameterError,
    ReproError,
    SimulationError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConvergenceError, InvalidParameterError, TraceError,
        SimulationError, DesignSpaceError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Parameter/trace/space errors double as ValueError so generic
        # callers can catch them idiomatically.
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(TraceError, ValueError)
        assert issubclass(DesignSpaceError, ValueError)

    def test_convergence_error_payload(self):
        err = ConvergenceError("nope", iterations=7, residual=0.5)
        assert err.iterations == 7
        assert err.residual == 0.5
        assert "nope" in str(err)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise TraceError("boom")
