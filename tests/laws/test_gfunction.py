"""Tests for g(N) derivation and the Table I entries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.laws.gfunction import (
    TABLE_I,
    FFTLikeG,
    FixedSizeG,
    LinearG,
    PowerLawG,
    derive_g_from_complexity,
    g_from_h,
)


class TestPowerLawG:
    def test_g_of_one_is_one(self):
        for b in (0.0, 0.5, 1.0, 1.5):
            assert PowerLawG(b)(1.0) == pytest.approx(1.0)

    def test_regimes(self):
        assert PowerLawG(1.5).regime() == "superlinear"
        assert PowerLawG(1.0).regime() == "linear"
        assert PowerLawG(0.5).regime() == "sublinear"
        assert PowerLawG(0.0).regime() == "sublinear"

    def test_at_least_linear_predicate(self):
        assert PowerLawG(1.5).at_least_linear()
        assert PowerLawG(1.0).at_least_linear()
        assert not PowerLawG(0.99).at_least_linear()

    def test_negative_exponent_rejected(self):
        with pytest.raises(InvalidParameterError):
            PowerLawG(-0.5)

    def test_n_below_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            PowerLawG(1.0)(0.5)

    def test_helpers(self):
        assert LinearG()(7.0) == pytest.approx(7.0)
        assert FixedSizeG()(7.0) == pytest.approx(1.0)


class TestDerivation:
    def test_tmm_from_complexity(self):
        g = derive_g_from_complexity(3.0, 2.0)
        assert g.exponent == pytest.approx(1.5)

    def test_linear_kernels(self):
        assert derive_g_from_complexity(1.0, 1.0).exponent == 1.0

    def test_invalid_exponents(self):
        with pytest.raises(InvalidParameterError):
            derive_g_from_complexity(0.0, 2.0)

    def test_g_from_h_power_law_independent_of_mref(self):
        def h(m):
            return (2.0 * np.asarray(m) / 3.0) ** 1.5
        g1 = g_from_h(h, m_ref=100.0)
        g2 = g_from_h(h, m_ref=1e6)
        for n in (2.0, 8.0, 64.0):
            assert g1(n) == pytest.approx(g2(n))
            assert g1(n) == pytest.approx(n ** 1.5)

    def test_g_from_h_normalized(self):
        g = g_from_h(lambda m: np.asarray(m) * np.log2(np.asarray(m)), 1024.0)
        assert g(1.0) == pytest.approx(1.0)


class TestFFTLikeG:
    def test_table_one_value_at_n_equals_m(self):
        # Paper's '2N' entry: g(N) = 2N exactly when N = m_ref.
        m = 2.0 ** 16
        g = FFTLikeG(m_ref=m)
        assert g(m) == pytest.approx(2.0 * m)

    def test_between_n_and_2n_below_mref(self):
        g = FFTLikeG(m_ref=2.0 ** 20)
        for n in (2.0, 64.0, 4096.0):
            assert n < g(n) < 2.0 * n

    def test_superlinear_regime(self):
        assert FFTLikeG().regime() == "superlinear"

    def test_g_of_one_is_one(self):
        assert FFTLikeG()(1.0) == pytest.approx(1.0)


class TestTableI:
    def test_all_four_kernels_present(self):
        assert set(TABLE_I) == {"tmm", "band_sparse", "stencil", "fft"}

    def test_tmm_exponent(self):
        assert TABLE_I["tmm"]["g"].exponent == pytest.approx(1.5)

    def test_linear_kernels(self):
        assert TABLE_I["band_sparse"]["g"].exponent == 1.0
        assert TABLE_I["stencil"]["g"].exponent == 1.0

    def test_all_case_one(self):
        # Every Table I kernel scales at least linearly (case I).
        for entry in TABLE_I.values():
            assert entry["g"].at_least_linear()


@given(b=st.floats(0.0, 2.0), n1=st.floats(1.0, 1e5), n2=st.floats(1.0, 1e5))
@settings(max_examples=200, deadline=None)
def test_power_law_multiplicativity(b, n1, n2):
    # g(n1 * n2) == g(n1) * g(n2) for power laws (the property the
    # paper's derivation of Eq. 4 depends on).
    g = PowerLawG(b)
    assert np.isclose(g(n1 * n2), g(n1) * g(n2), rtol=1e-9)
