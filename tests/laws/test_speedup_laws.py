"""Tests for Amdahl / Gustafson / Sun-Ni speedups and their relations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.laws import (
    PowerLawG,
    amdahl_speedup,
    gustafson_speedup,
    memory_bounded_speedup,
    scaled_problem_size,
    sun_ni_speedup,
)


class TestAmdahl:
    def test_no_sequential_part_is_linear(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)

    def test_all_sequential_is_one(self):
        assert amdahl_speedup(1.0, 1000) == pytest.approx(1.0)

    def test_limit_is_inverse_fseq(self):
        assert amdahl_speedup(0.1, 1e9) == pytest.approx(10.0, rel=1e-6)

    def test_array_input(self):
        out = amdahl_speedup(0.5, np.array([1.0, 2.0, 4.0]))
        assert np.allclose(out, [1.0, 4 / 3, 1.6])

    def test_invalid_fseq(self):
        with pytest.raises(InvalidParameterError):
            amdahl_speedup(1.5, 4)

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            amdahl_speedup(0.5, 0.5)


class TestGustafson:
    def test_linear_in_n(self):
        assert gustafson_speedup(0.0, 16) == pytest.approx(16.0)

    def test_fseq_one_gives_one(self):
        assert gustafson_speedup(1.0, 16) == pytest.approx(1.0)

    def test_classic_value(self):
        assert gustafson_speedup(0.1, 10) == pytest.approx(9.1)


class TestSunNi:
    def test_reduces_to_amdahl_when_g_is_one(self):
        for f in (0.0, 0.1, 0.5, 1.0):
            assert sun_ni_speedup(f, 16, PowerLawG(0.0)) == pytest.approx(
                amdahl_speedup(f, 16))

    def test_reduces_to_gustafson_when_g_is_n(self):
        for f in (0.0, 0.1, 0.5, 1.0):
            assert sun_ni_speedup(f, 16, PowerLawG(1.0)) == pytest.approx(
                gustafson_speedup(f, 16))

    def test_paper_example_n_to_three_halves(self):
        # Paper: g = N^{3/2} gives S = (f + (1-f)N^{3/2})/(f + (1-f)N^{1/2}).
        f, n = 0.2, 64.0
        expected = (f + (1 - f) * n ** 1.5) / (f + (1 - f) * n ** 0.5)
        assert sun_ni_speedup(f, n, PowerLawG(1.5)) == pytest.approx(expected)

    def test_accepts_precomputed_g_values(self):
        n = np.array([1.0, 4.0, 16.0])
        g_vals = n ** 1.5
        direct = sun_ni_speedup(0.1, n, PowerLawG(1.5))
        precomp = sun_ni_speedup(0.1, n, g_vals)
        assert np.allclose(direct, precomp)

    def test_g_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            sun_ni_speedup(0.1, 4, 0.0)

    @given(f=st.floats(0.0, 1.0), n=st.floats(1.0, 1e4),
           b=st.floats(0.0, 2.0))
    @settings(max_examples=200, deadline=None)
    def test_speedup_bounds(self, f, n, b):
        # Sun-Ni speedup is always within [1, N].
        s = sun_ni_speedup(f, n, PowerLawG(b))
        assert 1.0 - 1e-9 <= s <= n + 1e-9

    @given(f=st.floats(0.01, 0.99), b=st.floats(0.0, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_n(self, f, b):
        ns = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        s = sun_ni_speedup(f, ns, PowerLawG(b))
        assert np.all(np.diff(s) >= -1e-9)


class TestMemoryBoundedForm:
    def test_matches_eq4_for_power_law_h(self):
        # h(M) = (2M/3)^{3/2}: the paper's dense-matmul example.
        def h(m):
            return (2.0 * np.asarray(m) / 3.0) ** 1.5

        def h_inv(w):
            return 1.5 * w ** (2.0 / 3.0)

        w = h(3000.0)
        for n in (1.0, 4.0, 64.0):
            general = memory_bounded_speedup(0.1, w, n, h, h_inv)
            eq4 = sun_ni_speedup(0.1, n, PowerLawG(1.5))
            assert general == pytest.approx(eq4, rel=1e-9)

    def test_scaled_problem_size_matmul(self):
        def h(m):
            return (2.0 * np.asarray(m) / 3.0) ** 1.5

        def h_inv(w):
            return 1.5 * w ** (2.0 / 3.0)

        w = h(300.0)
        assert scaled_problem_size(w, 4.0, h, h_inv) == pytest.approx(
            8.0 * w)  # 4^{3/2}

    def test_invalid_problem_size(self):
        with pytest.raises(InvalidParameterError):
            scaled_problem_size(-1.0, 2, lambda m: m, lambda w: w)
