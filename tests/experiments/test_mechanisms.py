"""Unit tests for the concurrency-mechanism sweep (fast variant)."""

from __future__ import annotations

import pytest

from repro.experiments.mechanisms import baseline_chip, run_mechanism_sweep


@pytest.fixture(scope="module")
def table():
    return run_mechanism_sweep(n_ops=2500, seed=5)


class TestMechanismSweep:
    def test_all_variants_present(self, table):
        names = table.column("mechanism")
        assert len(names) == 8
        assert "baseline (all off)" in names
        assert "all mechanisms" in names

    def test_baseline_is_starved(self):
        chip = baseline_chip()
        assert chip.core.issue_width == 1
        assert chip.l1.mshr_entries == 1
        assert chip.l1.banks == 1

    def test_mshrs_raise_miss_concurrency(self, table):
        rows = dict(zip(table.column("mechanism"), table.column("C_M")))
        assert (rows["non-blocking cache (8 MSHRs)"]
                > rows["baseline (all off)"])

    def test_banks_raise_hit_concurrency(self, table):
        rows = dict(zip(table.column("mechanism"), table.column("C_H")))
        assert rows["multi-bank L1 (4 banks)"] > rows["baseline (all off)"]

    def test_smt_raises_concurrency(self, table):
        rows = dict(zip(table.column("mechanism"), table.column("C")))
        assert rows["SMT (2 threads)"] > rows["baseline (all off)"]

    def test_composition_dominates(self, table):
        camat = dict(zip(table.column("mechanism"), table.column("C-AMAT")))
        assert camat["all mechanisms"] == min(camat.values())
