"""Tests for the model-vs-simulation validation experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.validation import (
    run_model_validation,
    spearman_rank_correlation,
)


class TestSpearman:
    def test_perfect_agreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, a * 10.0) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(0)
        a = rng.random(50)
        assert spearman_rank_correlation(a, np.exp(a)) == pytest.approx(1.0)

    def test_ties_handled(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([5.0, 5.0, 6.0, 7.0])
        assert spearman_rank_correlation(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.random(500)
        b = rng.random(500)
        assert abs(spearman_rank_correlation(a, b)) < 0.15

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.array([1.0, 2.0]),
                                      np.array([1.0]))


class TestValidationExperiment:
    def test_rank_agreement(self):
        from repro.workloads import parsec_like
        table, rho = run_model_validation(
            workload=parsec_like("ocean", n_ops=2500), seed=4)
        assert len(table) == 9
        assert rho > 0.5
