"""Tests for the miss-curve calibration loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.calibration import run_calibration


@pytest.fixture(scope="module")
def outcome():
    return run_calibration(n_ops=4000,
                           capacities_kib=(4.0, 16.0, 64.0))


class TestCalibration:
    def test_fitted_tracks_simulated_miss_rate(self, outcome):
        table, rho = outcome
        assert rho == pytest.approx(1.0)

    def test_both_miss_rates_fall_with_capacity(self, outcome):
        table, _ = outcome
        fitted = table.column("fitted_MR")
        simulated = table.column("simulated_MR")
        assert all(b < a for a, b in zip(fitted, fitted[1:]))
        assert all(b < a for a, b in zip(simulated, simulated[1:]))

    def test_more_capacity_never_slower(self, outcome):
        table, _ = outcome
        cycles = table.column("exec_cycles")
        assert all(b <= a * 1.01 for a, b in zip(cycles, cycles[1:]))

    def test_camat_below_amat_everywhere(self, outcome):
        # The C-AMAT-vs-AMAT gap this experiment makes visible.
        table, _ = outcome
        camat = table.column("simulated_C-AMAT")
        amat = table.column("simulated_AMAT")
        assert all(c < a for c, a in zip(camat, amat))
