"""Golden regression for the Fig. 12 pipeline on a small space.

``tests/data/fig12_small_golden.json`` pins the exact per-method
simulation counts and best-cost errors of ``run_fig12`` on a 4^6-point
space.  Any drift — a search touching the budget differently, the batch
engine reordering evaluations, the surrogate kernel changing — fails
here before it silently changes the paper's headline figure.

If a change is *intentional*, regenerate the fixture (see
``docs/DSE_PERFORMANCE.md``) and explain the shift in the commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.fig12_aps import run_fig12

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "fig12_small_golden.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def outcome(golden):
    _table, outcome = run_fig12(values_per_param=golden["values_per_param"],
                                seed=golden["seed"])
    return outcome


def test_space_size_pinned(golden, outcome):
    assert outcome.space_size == golden["space_size"]


def test_simulation_counts_exact(golden, outcome):
    # The budget meters ARE the figure; counts must not drift at all.
    assert outcome.aps_sims == golden["simulations"]["aps"]
    assert outcome.ann_sims == golden["simulations"]["ann"]
    assert outcome.ga_sims == golden["simulations"]["ga"]
    assert outcome.rsm_sims == golden["simulations"]["rsm"]
    assert outcome.full_sims == golden["simulations"]["full"]


def test_best_cost_errors_pinned(golden, outcome):
    assert outcome.aps_error == pytest.approx(golden["errors"]["aps"],
                                              rel=1e-9)
    assert outcome.ann_error == pytest.approx(golden["errors"]["ann"],
                                              rel=1e-9)
    assert outcome.ga_error == pytest.approx(golden["errors"]["ga"],
                                             rel=1e-9, abs=1e-12)
    assert outcome.rsm_error == pytest.approx(golden["errors"]["rsm"],
                                              rel=1e-9, abs=1e-12)


def test_narrowing_ordering_holds(outcome):
    # The qualitative Fig. 12 claim, independent of exact values.
    assert (outcome.aps_sims < outcome.ann_sims < outcome.full_sims)
