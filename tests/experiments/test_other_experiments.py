"""Tests for the remaining experiment runners (reduced sizes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.capacity_bound import run_capacity_bound
from repro.experiments.fig07_allocation import run_fig7
from repro.experiments.fig12_aps import (
    fluidanimate_profile,
    fluidanimate_space,
    run_fig12,
)
from repro.experiments.fig13_apc import run_fig13
from repro.experiments.table1_gfactors import run_table1


class TestTable1:
    def test_rows(self):
        t = run_table1()
        assert len(t) == 4
        apps = t.column("application")
        assert any("matrix" in a.lower() for a in apps)

    def test_regimes_at_least_linear(self):
        t = run_table1()
        assert all(r in ("linear", "superlinear")
                   for r in t.column("regime"))


class TestFig7:
    def test_ordering(self):
        t = run_fig7(total_cores=32)
        cores = t.column("cores")
        # app1 (seq, low C) < app3 (middle) < app2 (parallel, high C).
        assert cores[0] < cores[2] < cores[1]


class TestFig12Small:
    def test_small_space_pipeline(self):
        # 4 values/param -> 4096-point space: the full pipeline runs.
        table, outcome = run_fig12(values_per_param=4, seed=1)
        assert outcome.space_size == 4 ** 6
        assert outcome.aps_sims < outcome.space_size
        assert outcome.full_sims == outcome.space_size
        assert np.isfinite(outcome.aps_error)
        methods = table.column("method")
        assert "APS (C2-Bound)" in methods

    def test_space_structure(self):
        space = fluidanimate_space(10)
        assert space.size == 10 ** 6
        assert set(space.names) == {"a0", "a1", "a2", "n",
                                    "issue_width", "rob_size"}

    def test_profile(self):
        app, machine = fluidanimate_profile()
        assert app.name == "fluidanimate"
        assert machine.total_area > machine.shared_area


class TestFig13Small:
    def test_apc_ordering_holds(self):
        t = run_fig13(benchmarks=("fluidanimate", "blackscholes"),
                      n_ops=4000)
        l1 = t.column("APC_L1")
        llc = t.column("APC_LLC")
        dram = t.column("APC_DRAM")
        for a, b, c in zip(l1, llc, dram):
            assert a > b > c


class TestCapacityBound:
    def test_case_flips_with_capacity(self):
        t = run_capacity_bound()
        cases = t.column("case")
        assert "memory-bound" in cases
        assert "processor-bound" in cases
        # Monotone: once processor-bound, larger capacity stays so.
        flip = cases.index("processor-bound")
        assert all(c == "processor-bound" for c in cases[flip:])

    def test_bounded_size_monotone_in_capacity(self):
        t = run_capacity_bound()
        bounded = t.column("bounded_Z_flops")
        assert all(b2 > b1 for b1, b2 in zip(bounded, bounded[1:]))
