"""Shape tests for the Figs. 8-11 reproduction.

Absolute values are ours; the *shape* claims come from the paper's
Section IV discussion and must hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figs08_11_scaling import default_ns, run_scaling_figure


@pytest.fixture(scope="module")
def fig8():
    return run_scaling_figure(f_mem=0.3, quantity="WT")


@pytest.fixture(scope="module")
def fig9():
    return run_scaling_figure(f_mem=0.9, quantity="WT")


@pytest.fixture(scope="module")
def fig10():
    return run_scaling_figure(f_mem=0.3, quantity="throughput")


@pytest.fixture(scope="module")
def fig11():
    return run_scaling_figure(f_mem=0.9, quantity="throughput")


class TestFigs8and9:
    def test_w_grows_as_n_three_halves(self, fig8):
        ns = np.array(fig8.column("N"), dtype=float)
        w = np.array(fig8.column("W"))
        assert np.allclose(w, ns ** 1.5, rtol=1e-9)

    def test_time_ordering_by_concurrency(self, fig8):
        t1 = np.array(fig8.column("T(C=1)"))
        t4 = np.array(fig8.column("T(C=4)"))
        t8 = np.array(fig8.column("T(C=8)"))
        assert np.all(t8 < t4)
        assert np.all(t4 < t1)

    def test_speedup_of_c8_over_c1_significant_at_1000(self, fig8):
        # Paper: "when N is 1000, the speedup ratio of T(C=8) over
        # T(C=1) is very significant".
        t1 = np.array(fig8.column("T(C=1)"))
        t8 = np.array(fig8.column("T(C=8)"))
        assert t1[-1] / t8[-1] > 2.0

    def test_time_increases_with_fmem(self, fig8, fig9):
        for col in ("T(C=1)", "T(C=4)", "T(C=8)"):
            # Same normalization base (T(1, C=1) of each figure), so
            # compare the shape-free absolute ratios via C=1 N=1 anchor:
            t_low = np.array(fig8.column(col))
            t_high = np.array(fig9.column(col))
            # Normalized within figure; the f_mem effect shows in the
            # C>1 columns being relatively closer to C=1 when stalls
            # dominate. Check raw ratios via the un-normalized anchor
            # is done in test_optimizer; here check shape consistency:
            assert t_low.shape == t_high.shape

    def test_t_c1_tracks_w(self, fig8):
        # Paper: with no concurrency the execution time curve is close
        # to the problem-size curve (same growth exponent regime).
        ns = np.array(fig8.column("N"), dtype=float)
        t1 = np.array(fig8.column("T(C=1)"))
        w = np.array(fig8.column("W"))
        # Compare log-log slopes over the top decade.
        top = ns >= 100
        slope_t = np.polyfit(np.log(ns[top]), np.log(t1[top]), 1)[0]
        slope_w = np.polyfit(np.log(ns[top]), np.log(w[top]), 1)[0]
        assert slope_t == pytest.approx(slope_w, abs=0.35)


class TestFigs10and11:
    def test_throughput_ordering_by_concurrency(self, fig10):
        wt1 = np.array(fig10.column("W/T(C=1)"))
        wt4 = np.array(fig10.column("W/T(C=4)"))
        wt8 = np.array(fig10.column("W/T(C=8)"))
        assert np.all(wt8 > wt4)
        assert np.all(wt4 > wt1)

    def test_c1_saturates_after_100_cores(self, fig10):
        # Paper: "when there is no memory concurrency (C=1), about one
        # hundred cores are enough to achieve the best throughput" —
        # per added core, the gain collapses past N=100.
        ns = np.array(fig10.column("N"), dtype=float)
        wt1 = np.array(fig10.column("W/T(C=1)"))
        early = (ns >= 1) & (ns <= 100)
        late = ns >= 100
        slope_early = np.polyfit(np.log(ns[early]), np.log(wt1[early]), 1)[0]
        slope_late = np.polyfit(np.log(ns[late]), np.log(wt1[late]), 1)[0]
        assert slope_late < 0.55 * slope_early

    def test_high_c_keeps_earning(self, fig10):
        # Higher concurrency defers saturation: C=8 retains a larger
        # fraction of its early slope than C=1.
        ns = np.array(fig10.column("N"), dtype=float)
        def late_over_early(col):
            v = np.array(fig10.column(col))
            early = (ns >= 1) & (ns <= 100)
            late = ns >= 100
            se = np.polyfit(np.log(ns[early]), np.log(v[early]), 1)[0]
            sl = np.polyfit(np.log(ns[late]), np.log(v[late]), 1)[0]
            return sl / se
        assert late_over_early("W/T(C=8)") > late_over_early("W/T(C=1)")

    def test_throughput_decreases_with_fmem(self, fig10, fig11):
        # Paper: W/T decreases with data access frequency f_mem.
        # Both figures share the T(1, C=1) normalization of their own
        # run; compare the un-normalized ratio directly instead.
        from repro.core import ApplicationProfile, C2BoundOptimizer, \
            MachineParameters
        m = MachineParameters()
        lo = C2BoundOptimizer(ApplicationProfile(
            f_seq=0.02, f_mem=0.3), m).evaluate(200)
        hi = C2BoundOptimizer(ApplicationProfile(
            f_seq=0.02, f_mem=0.9), m).evaluate(200)
        assert hi.throughput < lo.throughput
        assert hi.execution_time > lo.execution_time


class TestAxes:
    def test_default_ns(self):
        ns = default_ns()
        assert ns[0] == 1
        assert ns[-1] == 1000
        assert np.all(np.diff(ns) > 0)

    def test_invalid_quantity(self):
        with pytest.raises(ValueError):
            run_scaling_figure(f_mem=0.3, quantity="volume")
