"""Perf-regression sentry: noise-banded gating over BENCH records."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "perf_sentry",
    Path(__file__).resolve().parent.parent / "scripts" / "perf_sentry.py")
sentry = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(sentry)


def _bench_record(path: Path, *, test="test_fig12", wall=1.0,
                  evaluations=100):
    path.write_text(json.dumps({
        "schema": "c2bound.manifest/1",
        "experiment": "fig12",
        "test": test,
        "package_version": "1.0.0",
        "git_sha": "cafe",
        "wall_time_s": wall,
        "metrics": {"counters": {"dse.evaluations": evaluations},
                    "gauges": {}, "histograms": {}},
    }))


def _seed_history(baselines: Path, *, bench="test_fig12",
                  times=(1.0,) * 5, evaluations=100):
    with baselines.open("a") as fh:
        for wall in times:
            fh.write(json.dumps({
                "bench": bench, "wall_time_s": wall, "git_sha": "cafe",
                "package_version": "1.0.0",
                "work": {"dse.evaluations": evaluations}}) + "\n")


@pytest.fixture
def results(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    return d


@pytest.fixture
def baselines(tmp_path):
    return tmp_path / "perf_baselines.jsonl"


class TestLoad:
    def test_summary_records_without_wall_time_are_skipped(self, results):
        (results / "BENCH_speedup.json").write_text(
            json.dumps({"speedup": 20.0, "batched_s": 0.1}))
        _bench_record(results / "BENCH_real.json")
        records = sentry.load_bench_records(results)
        assert [r["bench"] for r in records] == ["test_fig12"]
        assert records[0]["work"] == {"dse.evaluations": 100}


class TestUpdate:
    def test_update_appends_history(self, results, baselines):
        _bench_record(results / "BENCH_a.json", wall=2.0)
        assert sentry.run_update(results, baselines) == 1
        assert sentry.run_update(results, baselines) == 1
        history = sentry.load_history(baselines)
        assert [e["wall_time_s"] for e in history["test_fig12"]] == [2.0, 2.0]


class TestCheck:
    def test_synthetic_2x_slowdown_fails(self, results, baselines):
        """The acceptance criterion: a 2x regression must always trip."""
        _seed_history(baselines, times=(1.0, 1.02, 0.98, 1.01, 0.99))
        _bench_record(results / "BENCH_fig12.json", wall=2.0)
        report = sentry.run_check(results, baselines)
        assert report["regressions"] == 1
        check = report["checks"][0]
        assert check["status"] == "regression"
        assert check["ratio"] == pytest.approx(2.0)

    def test_2x_fails_even_at_max_noise_band(self, results, baselines):
        # Wildly noisy history saturates the band at BAND_CEIL < 1.0,
        # so 2x the median still fails.
        times = (1.0, 0.2, 3.0, 0.5, 2.5, 1.1, 0.9)
        _seed_history(baselines, times=times)
        median = sorted(times)[len(times) // 2]
        _bench_record(results / "BENCH_fig12.json", wall=2.0 * median)
        report = sentry.run_check(results, baselines)
        assert report["checks"][0]["band"] == sentry.BAND_CEIL
        assert report["regressions"] == 1

    def test_noise_within_band_passes(self, results, baselines):
        _seed_history(baselines, times=(1.0, 1.05, 0.95, 1.02, 0.97))
        _bench_record(results / "BENCH_fig12.json", wall=1.3)  # +30%
        report = sentry.run_check(results, baselines)
        assert report["regressions"] == 0
        assert report["checks"][0]["status"] == "ok"

    def test_speedup_passes(self, results, baselines):
        _seed_history(baselines)
        _bench_record(results / "BENCH_fig12.json", wall=0.4)
        report = sentry.run_check(results, baselines)
        assert report["checks"][0]["status"] == "ok"

    def test_unknown_bench_is_new_not_failed(self, results, baselines):
        baselines.write_text("")
        _bench_record(results / "BENCH_fig12.json")
        report = sentry.run_check(results, baselines)
        assert report["checks"][0]["status"] == "new"
        assert report["regressions"] == 0

    def test_workload_drift_skips_comparison(self, results, baselines):
        _seed_history(baselines, evaluations=100)
        # Same bench now does 10x the work: slower, but not a regression.
        _bench_record(results / "BENCH_fig12.json", wall=10.0,
                      evaluations=1000)
        report = sentry.run_check(results, baselines)
        assert report["checks"][0]["status"] == "workload_drift"
        assert report["regressions"] == 0

    def test_window_limits_history(self, results, baselines):
        # Ancient slow history beyond the window must not mask a
        # regression against the recent fast regime.
        _seed_history(baselines, times=(10.0,) * 30)
        _seed_history(baselines, times=(1.0,) * 20)
        _bench_record(results / "BENCH_fig12.json", wall=2.0)
        report = sentry.run_check(results, baselines, window=20)
        check = report["checks"][0]
        assert check["baseline_s"] == pytest.approx(1.0)
        assert check["status"] == "regression"


class TestMain:
    def test_check_exit_codes_and_json(self, results, baselines, tmp_path,
                                       capsys):
        _seed_history(baselines)
        _bench_record(results / "BENCH_fig12.json", wall=1.0)
        json_out = tmp_path / "sentry.json"
        rc = sentry.main(["check", "--results", str(results),
                          "--baselines", str(baselines),
                          "--json", str(json_out)])
        assert rc == 0
        assert json.loads(json_out.read_text())["regressions"] == 0
        _bench_record(results / "BENCH_fig12.json", wall=5.0)
        rc = sentry.main(["check", "--results", str(results),
                          "--baselines", str(baselines)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_update_then_check_round_trip(self, results, baselines,
                                          capsys):
        _bench_record(results / "BENCH_fig12.json", wall=1.0)
        assert sentry.main(["update", "--results", str(results),
                            "--baselines", str(baselines)]) == 0
        assert sentry.main(["check", "--results", str(results),
                            "--baselines", str(baselines)]) == 0
        capsys.readouterr()

    def test_missing_results_dir(self, tmp_path, capsys):
        rc = sentry.main(["check", "--results",
                          str(tmp_path / "absent")])
        assert rc == 2
        capsys.readouterr()

    def test_committed_baselines_cover_tracked_benches(self):
        committed = sentry.DEFAULT_BASELINES
        assert committed.exists(), "seed benchmarks/perf_baselines.jsonl"
        history = sentry.load_history(committed)
        assert {"test_dse_batch_speedup",
                "test_sim_hotpath_speedup"} <= set(history)
