"""Tests for the APC metric and its C-AMAT identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camat import AccessTrace, MemoryAccess, TraceAnalyzer, fig1_trace
from repro.errors import InvalidParameterError
from repro.metrics import (
    APCMeasurement,
    LayerAPC,
    apc_from_camat,
    apc_from_counts,
    apc_from_trace,
    throughput,
)


class TestAPCMeasurement:
    def test_basic(self):
        assert apc_from_counts(10, 40) == pytest.approx(0.25)

    def test_idle_layer(self):
        assert APCMeasurement(0, 0).apc == 0.0

    def test_accesses_without_cycles_rejected(self):
        with pytest.raises(InvalidParameterError):
            APCMeasurement(5, 0)

    def test_camat_identity(self):
        m = APCMeasurement(10, 40)
        assert m.camat == pytest.approx(4.0)
        assert apc_from_camat(m.camat) == pytest.approx(m.apc)

    def test_camat_of_idle_rejected(self):
        with pytest.raises(InvalidParameterError):
            APCMeasurement(0, 0).camat

    def test_apc_from_camat_validation(self):
        with pytest.raises(InvalidParameterError):
            apc_from_camat(0.0)


class TestAPCFromTrace:
    def test_fig1_apc_is_inverse_camat(self):
        m = apc_from_trace(fig1_trace())
        stats = TraceAnalyzer().analyze(fig1_trace())
        assert m.apc == pytest.approx(1.0 / stats.camat)
        assert m.camat == pytest.approx(stats.camat)

    @given(st.lists(st.builds(
        MemoryAccess,
        start=st.integers(0, 100),
        hit_cycles=st.integers(1, 5),
        miss_penalty=st.integers(0, 20)), min_size=1, max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_identity_holds_for_any_trace(self, accesses):
        trace = AccessTrace(accesses)
        m = apc_from_trace(trace)
        stats = TraceAnalyzer().analyze(trace)
        assert m.camat == pytest.approx(stats.camat)


class TestLayerAPC:
    def test_ordering_and_gaps(self):
        layers = LayerAPC(
            l1=APCMeasurement(1000, 1000),
            llc=APCMeasurement(100, 1000),
            dram=APCMeasurement(10, 1000),
        )
        d = layers.as_dict()
        assert d["L1"] > d["LLC"] > d["DRAM"]
        gaps = layers.gap_ratios()
        assert gaps["L1/LLC"] == pytest.approx(10.0)
        assert gaps["LLC/DRAM"] == pytest.approx(10.0)

    def test_idle_layers_omitted_from_gaps(self):
        layers = LayerAPC(
            l1=APCMeasurement(10, 10),
            llc=APCMeasurement(0, 0),
            dram=APCMeasurement(0, 0),
        )
        assert layers.gap_ratios() == {}


class TestThroughput:
    def test_scalar(self):
        assert throughput(100.0, 4.0) == pytest.approx(25.0)

    def test_array(self):
        import numpy as np
        out = throughput(np.array([10.0, 20.0]), np.array([2.0, 4.0]))
        assert np.allclose(out, [5.0, 5.0])

    def test_zero_time_rejected(self):
        with pytest.raises(InvalidParameterError):
            throughput(1.0, 0.0)
