"""Tests for the queueing formulas and their match to the DRAM model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.queueing import (
    banked_dram_latency,
    md1_wait,
    mm1_wait,
    utilization,
)
from repro.sim.config import DRAMConfig
from repro.sim.dram import DRAMModel


class TestFormulas:
    def test_utilization(self):
        assert utilization(0.5, 1.0) == pytest.approx(0.5)

    def test_unstable_rejected(self):
        with pytest.raises(InvalidParameterError):
            utilization(1.0, 1.0)

    def test_md1_is_half_mm1(self):
        assert md1_wait(0.6, 1.0) == pytest.approx(0.5 * mm1_wait(0.6, 1.0))

    def test_wait_grows_superlinearly_with_load(self):
        waits = [md1_wait(rho, 1.0) for rho in (0.2, 0.5, 0.8, 0.95)]
        growth = np.diff(waits)
        assert np.all(growth > 0)
        assert growth[-1] > growth[0]

    def test_zero_load_zero_wait(self):
        assert md1_wait(0.0, 1.0) == 0.0

    def test_banked_latency_floor_is_service(self):
        assert banked_dram_latency(0.0, 100.0, 8) == pytest.approx(100.0)

    def test_more_banks_less_wait(self):
        lo = banked_dram_latency(0.05, 100.0, 8)
        hi = banked_dram_latency(0.05, 100.0, 16)
        assert hi < lo

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            banked_dram_latency(0.1, 100.0, 0)
        with pytest.raises(InvalidParameterError):
            md1_wait(-0.1, 1.0)


class TestAgainstDRAMModel:
    def measure_latency(self, inter_arrival: float, n: int = 2500) -> float:
        """Mean latency of Poisson-ish random traffic into the model."""
        rng = np.random.default_rng(0)
        cfg = DRAMConfig(banks=4)
        dram = DRAMModel(cfg)
        t = 0.0
        total = 0.0
        for _ in range(n):
            t += rng.exponential(inter_arrival)
            addr = int(rng.integers(0, 1 << 30)) // 64 * 64
            done = dram.access(addr, t)
            total += done - t
        return total / n

    def test_latency_grows_with_load_like_md1(self):
        # Random rows: service ~ row_conflict + bus.  Compare the
        # simulated latency inflation against the M/D/1 prediction at
        # two load points; shapes must agree within a factor.
        cfg = DRAMConfig(banks=4)
        service = cfg.row_conflict + cfg.bus_cycles
        light_ia, heavy_ia = service * 4.0, service / 2.0
        light = self.measure_latency(light_ia)
        heavy = self.measure_latency(heavy_ia)
        assert heavy > light
        pred_light = banked_dram_latency(1.0 / light_ia, service, 4)
        pred_heavy = banked_dram_latency(1.0 / heavy_ia, service, 4)
        sim_inflation = heavy / light
        pred_inflation = pred_heavy / pred_light
        assert sim_inflation == pytest.approx(pred_inflation, rel=0.5)


class TestSummary:
    def test_simulation_summary_table(self):
        from repro.sim import CMPSimulator, SimulatedChip
        from repro.workloads import parsec_like
        rng = np.random.default_rng(1)
        wl = parsec_like("blackscholes", n_ops=2000)
        res = CMPSimulator(SimulatedChip(n_cores=2)).run(wl.streams(2, rng))
        table = res.summary()
        metrics = dict(zip(table.column("metric"), table.column("value")))
        assert metrics["cores"] == 2
        assert metrics["cycles"] == res.exec_cycles
        assert "L1 miss rate" in metrics
        assert table.render()
