"""Tests for the Table I kernel generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.workingset import working_set_size
from repro.errors import InvalidParameterError
from repro.workloads import BandSpMV, FFTWorkload, Stencil1D, TiledMatMul


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestTiledMatMul:
    def test_stream_length(self, rng):
        wl = TiledMatMul(n=16, tile=4)
        stream = wl.address_stream(rng)
        # 3 accesses per inner iteration, n^3 iterations.
        assert stream.size == 3 * 16 ** 3

    def test_footprint_is_three_matrices(self, rng):
        wl = TiledMatMul(n=16, tile=4, element_bytes=8)
        stream = wl.address_stream(rng)
        footprint_bytes = working_set_size(stream // 8) * 8
        # Every element of A, B, C is touched.
        assert footprint_bytes == 3 * 16 * 16 * 8

    def test_g_is_three_halves(self):
        assert TiledMatMul().characteristics().g.exponent == pytest.approx(1.5)

    def test_dimension_rounded_to_tile(self):
        wl = TiledMatMul(n=10, tile=4)
        assert wl.params.n == 12

    def test_addresses_non_negative_and_distinct_matrices(self, rng):
        wl = TiledMatMul(n=8, tile=4)
        stream = wl.address_stream(rng)
        assert stream.min() >= 0
        # C addresses start above the B region.
        assert stream.max() >= 2 * 8 * 8 * 8

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TiledMatMul(n=0)

    def test_streams_partition(self, rng):
        wl = TiledMatMul(n=8, tile=4)
        parts = wl.streams(4, rng)
        assert len(parts) == 4
        total = sum(stream[0].size for stream in parts)
        assert total == 3 * 8 ** 3

    def test_write_masks(self, rng):
        wl = TiledMatMul(n=8, tile=4)
        parts = wl.streams(2, rng)
        for addrs, gaps, writes in parts:
            assert writes.shape == addrs.shape
        # One third of the accesses are C-updates.
        total_writes = sum(int(s[2].sum()) for s in parts)
        assert total_writes == 8 ** 3


class TestStencil:
    def test_accesses_per_sweep(self, rng):
        wl = Stencil1D(n=100, iterations=2)
        stream = wl.address_stream(rng)
        assert stream.size == 2 * 4 * 98  # 4 accesses per interior point

    def test_double_buffering_alternates(self, rng):
        wl = Stencil1D(n=16, iterations=2, element_bytes=8)
        stream = wl.address_stream(rng)
        half = stream.size // 2
        # Sweep 1 stores to buffer B (>= n*eb); sweep 2 stores to A.
        first_store = stream[3]
        second_sweep_store = stream[half + 3]
        assert first_store >= 16 * 8
        assert second_sweep_store < 16 * 8

    def test_linear_g(self):
        assert Stencil1D().characteristics().g.exponent == 1.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Stencil1D(n=2)


class TestBandSpMV:
    def test_accesses_per_row(self, rng):
        wl = BandSpMV(n=32, half_bandwidth=2)
        stream = wl.address_stream(rng)
        width = 5
        assert stream.size == 32 * (2 * width + 1)

    def test_column_clipping_at_edges(self, rng):
        wl = BandSpMV(n=8, half_bandwidth=3, element_bytes=8)
        stream = wl.address_stream(rng)
        base_x = 8 * 7 * 8
        x_addrs = stream[(stream >= base_x) & (stream < base_x + 8 * 8)]
        assert x_addrs.min() >= base_x

    def test_linear_g(self):
        assert BandSpMV().characteristics().g.exponent == 1.0


class TestFFT:
    def test_stage_count(self, rng):
        wl = FFTWorkload(log2_n=6)
        stream = wl.address_stream(rng)
        # log2(n) stages, n/2 butterflies each, 4 accesses per butterfly.
        assert stream.size == 6 * (64 // 2) * 4

    def test_addresses_within_array(self, rng):
        wl = FFTWorkload(log2_n=6, element_bytes=16)
        stream = wl.address_stream(rng)
        assert stream.min() >= 0
        assert stream.max() < 64 * 16

    def test_fftlike_g(self):
        g = FFTWorkload(log2_n=10).characteristics().g
        assert g.regime() == "superlinear"
        # Table I's 2N at N = m_ref = n.
        assert g(1024.0) == pytest.approx(2048.0)

    def test_strides_grow_with_stage(self, rng):
        wl = FFTWorkload(log2_n=4, element_bytes=1)
        stream = wl.address_stream(rng)
        # First stage: butterfly partner at distance 1; last: n/2.
        first_pair_gap = stream[1] - stream[0]
        last_stage = stream[-4:]
        assert first_pair_gap == 1
        assert last_stage[1] - last_stage[0] == 8
