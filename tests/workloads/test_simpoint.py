"""Tests for the SimPoint-style interval selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.workloads.simpoint import (
    interval_features,
    kmeans,
    select_simpoints,
)


def two_phase_stream(rng: np.random.Generator) -> np.ndarray:
    """Phase A: tight 64-line loop; phase B: random over 64K lines."""
    a = (np.arange(8000) % 64) * 64
    b = rng.integers(0, 1 << 16, 8000) * 64
    return np.concatenate([a, b]).astype(np.int64)


class TestFeatures:
    def test_shape_and_normalization(self):
        addrs = np.arange(5000) * 64
        feats = interval_features(addrs, interval=1000, buckets=32)
        assert feats.shape == (5, 32)
        assert np.allclose(feats.sum(axis=1), 1.0)

    def test_partial_interval_dropped(self):
        addrs = np.arange(2500) * 64
        feats = interval_features(addrs, interval=1000)
        assert feats.shape[0] == 2

    def test_identical_intervals_identical_features(self):
        addrs = np.tile(np.arange(100) * 64, 30)
        feats = interval_features(addrs, interval=1000)
        assert np.allclose(feats, feats[0])

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            interval_features(np.array([]), 10)
        with pytest.raises(InvalidParameterError):
            interval_features(np.arange(5) * 64, 10)


class TestKMeans:
    def test_separates_clear_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, (40, 3))
        b = rng.normal(5.0, 0.05, (40, 3))
        x = np.vstack([a, b])
        labels, centroids = kmeans(x, 2, rng)
        assert len(set(labels[:40])) == 1
        assert len(set(labels[40:])) == 1
        assert labels[0] != labels[40]

    def test_k_one(self):
        rng = np.random.default_rng(0)
        x = rng.random((20, 4))
        labels, centroids = kmeans(x, 1, rng)
        assert np.all(labels == 0)
        assert np.allclose(centroids[0], x.mean(axis=0))

    def test_k_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidParameterError):
            kmeans(np.ones((3, 2)), 4, rng)


class TestSelection:
    def test_two_phase_stream_yields_both_phases(self):
        rng = np.random.default_rng(7)
        addrs = two_phase_stream(rng)
        sel = select_simpoints(addrs, interval=1000, k=2, seed=7)
        # Representatives must cover both halves of the stream.
        reps = sorted(sel.representatives)
        assert reps[0] < 8 <= reps[-1]
        assert sum(sel.weights) == pytest.approx(1.0)

    def test_weights_match_phase_sizes(self):
        rng = np.random.default_rng(7)
        addrs = two_phase_stream(rng)
        sel = select_simpoints(addrs, interval=1000, k=2, seed=7)
        # Two equal phases -> roughly equal weights.
        assert min(sel.weights) > 0.3

    def test_weighted_estimate_reconstructs_mean(self):
        rng = np.random.default_rng(3)
        addrs = two_phase_stream(rng)
        sel = select_simpoints(addrs, interval=1000, k=2, seed=3)
        # Per-interval "statistic": distinct lines per interval.
        def distinct(idx: int) -> float:
            s = addrs[idx * 1000:(idx + 1) * 1000] // 64
            return float(np.unique(s).size)
        estimate = sel.weighted_estimate(
            [distinct(r) for r in sel.representatives])
        truth = np.mean([distinct(i) for i in range(len(addrs) // 1000)])
        assert estimate == pytest.approx(truth, rel=0.25)

    def test_slices(self):
        rng = np.random.default_rng(0)
        addrs = two_phase_stream(rng)
        sel = select_simpoints(addrs, interval=1000, k=2, seed=0)
        for s in sel.slices():
            assert s.stop - s.start == 1000

    def test_k_clamped_to_interval_count(self):
        addrs = np.arange(3000) * 64
        sel = select_simpoints(addrs, interval=1000, k=10, seed=0)
        assert len(sel.representatives) <= 3
