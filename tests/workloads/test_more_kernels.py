"""Tests for the 2-D stencil and GUPS kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.workingset import working_set_size
from repro.errors import InvalidParameterError
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import GUPS, Stencil2D


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestStencil2D:
    def test_access_count(self, rng):
        wl = Stencil2D(n=10, iterations=2)
        stream = wl.address_stream(rng)
        assert stream.size == 2 * 6 * 8 * 8  # 6 accesses per interior pt

    def test_footprint_two_buffers(self, rng):
        wl = Stencil2D(n=16, iterations=1, element_bytes=8)
        stream = wl.address_stream(rng)
        # All interior points of both buffers are touched, plus halos.
        assert working_set_size(stream // 8) <= 2 * 16 * 16
        assert stream.max() < 2 * 16 * 16 * 8

    def test_buffers_swap_between_sweeps(self, rng):
        wl = Stencil2D(n=8, iterations=2, element_bytes=8)
        stream = wl.address_stream(rng)
        half = stream.size // 2
        buffer_bytes = 8 * 8 * 8
        # Sweep 1 stores above the source buffer; sweep 2 below.
        assert stream[5] >= buffer_bytes
        assert stream[half + 5] < buffer_bytes

    def test_row_stride_pattern(self, rng):
        wl = Stencil2D(n=32, element_bytes=8)
        stream = wl.address_stream(rng)
        # north and south of the same point are 2 rows apart.
        assert stream[4] - stream[0] == 2 * 32 * 8

    def test_write_mask(self, rng):
        wl = Stencil2D(n=8)
        parts = wl.streams(2, rng)
        writes = sum(int(s[2].sum()) for s in parts)
        assert writes == 2 * 6 * 6  # one store per interior point/sweep

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Stencil2D(n=2)

    def test_linear_g(self):
        assert Stencil2D().characteristics().g.exponent == 1.0


class TestGUPS:
    def test_addresses_within_table(self, rng):
        wl = GUPS(updates=2000, table_kib=128.0)
        stream = wl.address_stream(rng)
        assert stream.min() >= 0
        assert stream.max() < 128 * 1024

    def test_all_writes(self, rng):
        wl = GUPS(updates=500)
        parts = wl.streams(2, rng)
        for _a, _g, w in parts:
            assert w.all()

    def test_locality_free(self, rng):
        # Nearly every access touches a distinct line.
        wl = GUPS(updates=3000, table_kib=64 * 1024)
        stream = wl.address_stream(rng)
        distinct = working_set_size(stream // 64)
        assert distinct > 0.9 * 3000

    def test_mshr_sensitivity(self, rng):
        # GUPS throughput is a direct function of miss concurrency.
        from dataclasses import replace
        wl = GUPS(updates=1200, table_kib=32 * 1024, f_mem=0.8)
        streams = wl.streams(1, rng)
        chip = SimulatedChip(n_cores=1)
        blocking = replace(chip, l1=replace(chip.l1, mshr_entries=1))
        wide = replace(chip, l1=replace(chip.l1, mshr_entries=16))
        t_blocking = CMPSimulator(blocking).run(
            [tuple(np.copy(x) for x in streams[0])]).exec_cycles
        t_wide = CMPSimulator(wide).run(streams).exec_cycles
        assert t_wide < 0.7 * t_blocking

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GUPS(updates=0)
        with pytest.raises(InvalidParameterError):
            GUPS(table_kib=0.0)
