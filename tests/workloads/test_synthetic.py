"""Tests for the synthetic and PARSEC-like workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.workingset import working_set_size
from repro.errors import InvalidParameterError
from repro.workloads import PARSEC_LIKE, PhasedWorkload, SyntheticWorkload, \
    parsec_like
from repro.workloads.base import interleave_gaps


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestSyntheticWorkload:
    def test_footprint_bounded_by_working_set(self, rng):
        wl = SyntheticWorkload(n_ops=5000, working_set_kib=64.0)
        stream = wl.address_stream(rng)
        assert stream.max() < 64 * 1024

    def test_hot_fraction_concentrates(self, rng):
        wl = SyntheticWorkload(n_ops=8000, working_set_kib=1024.0,
                               hot_fraction=0.9, hot_set_kib=8.0,
                               stream_fraction=0.05)
        stream = wl.address_stream(rng)
        in_hot = np.mean(stream < 8 * 1024)
        assert in_hot > 0.8

    def test_no_consecutive_same_line(self, rng):
        wl = SyntheticWorkload(n_ops=5000, stream_fraction=0.8,
                               hot_fraction=0.1)
        stream = wl.address_stream(rng)
        lines = stream // 64
        assert np.all(lines[1:] != lines[:-1])

    def test_streams_shapes(self, rng):
        wl = SyntheticWorkload(n_ops=4000)
        parts = wl.streams(4, rng)
        assert len(parts) == 4
        for addrs, gaps, writes in parts:
            assert addrs.shape == gaps.shape == writes.shape
            assert np.all(gaps >= 0)

    def test_shared_tiers_are_read_only(self, rng):
        wl = SyntheticWorkload(n_ops=4000, hot_fraction=0.5,
                               hot_set_kib=16.0, warm_fraction=0.2,
                               warm_set_kib=64.0, stream_fraction=0.2,
                               working_set_kib=1024.0, write_fraction=0.9)
        shared_bytes = (16 + 64) * 1024
        for addrs, _gaps, writes in wl.streams(2, rng):
            assert not np.any(writes[addrs < shared_bytes])

    def test_fmem_realized_by_gaps(self, rng):
        gaps = interleave_gaps(20000, 0.25, rng)
        total_instr = gaps.sum() + gaps.size
        assert gaps.size / total_instr == pytest.approx(0.25, rel=0.05)

    def test_fmem_one_means_no_gaps(self, rng):
        assert interleave_gaps(10, 1.0, rng).sum() == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SyntheticWorkload(hot_fraction=0.7, warm_fraction=0.2,
                              stream_fraction=0.3)
        with pytest.raises(InvalidParameterError):
            SyntheticWorkload(hot_set_kib=100.0, working_set_kib=10.0)
        with pytest.raises(InvalidParameterError):
            SyntheticWorkload(burst_length=0.5)

    def test_warm_tier_location(self, rng):
        wl = SyntheticWorkload(n_ops=6000, hot_fraction=0.0,
                               warm_fraction=1.0, warm_set_kib=32.0,
                               hot_set_kib=8.0, stream_fraction=0.0,
                               working_set_kib=1024.0)
        stream = wl.address_stream(rng)
        hot_bytes = 8 * 1024
        assert stream.min() >= hot_bytes
        assert stream.max() < hot_bytes + 32 * 1024 + 64


class TestParsecLike:
    def test_suite_members(self):
        assert "fluidanimate" in PARSEC_LIKE
        assert len(PARSEC_LIKE) >= 6

    def test_override(self):
        wl = parsec_like("fluidanimate", n_ops=123)
        assert wl.n_ops == 123
        assert wl.name == "fluidanimate"

    def test_unknown_profile(self):
        with pytest.raises(InvalidParameterError):
            parsec_like("doom-eternal")

    def test_fluidanimate_large_working_set(self, rng):
        wl = parsec_like("fluidanimate", n_ops=4000)
        chars = wl.characteristics()
        assert chars.working_set_kib >= 16 * 1024
        stream = wl.address_stream(rng)
        assert working_set_size(stream // 64) > 100

    def test_distinct_profiles_distinct_behaviour(self, rng):
        compute = parsec_like("blackscholes").characteristics()
        memory = parsec_like("canneal").characteristics()
        assert compute.f_mem < memory.f_mem
        assert compute.working_set_kib < memory.working_set_kib


class TestPhasedWorkload:
    def test_concatenation_and_boundaries(self, rng):
        a = SyntheticWorkload(name="a", n_ops=1000)
        b = SyntheticWorkload(name="b", n_ops=2000)
        phased = PhasedWorkload([a, b])
        stream = phased.address_stream(rng)
        bounds = phased.boundaries
        assert len(bounds) == 2
        assert bounds[-1] == stream.size
        slices = phased.phase_slices()
        assert slices[0].start == 0
        assert slices[1].stop == stream.size

    def test_characteristics_weighting(self):
        a = SyntheticWorkload(name="a", n_ops=1000, f_mem=0.2,
                              working_set_kib=100.0)
        b = SyntheticWorkload(name="b", n_ops=3000, f_mem=0.6,
                              working_set_kib=1000.0)
        chars = PhasedWorkload([a, b]).characteristics()
        assert chars.f_mem == pytest.approx(0.5)
        assert chars.working_set_kib == 1000.0

    def test_boundaries_before_generation_rejected(self):
        phased = PhasedWorkload([SyntheticWorkload(n_ops=10)])
        with pytest.raises(InvalidParameterError):
            _ = phased.boundaries

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            PhasedWorkload([])
