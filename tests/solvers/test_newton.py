"""Tests for the Newton solver and its building blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, InvalidParameterError
from repro.solvers import newton_solve, numeric_jacobian


class TestNumericJacobian:
    def test_linear_function_exact(self):
        a = np.array([[2.0, -1.0], [0.5, 3.0]])
        jac = numeric_jacobian(lambda x: a @ x, np.array([1.0, 2.0]))
        assert np.allclose(jac, a, atol=1e-6)

    def test_quadratic(self):
        jac = numeric_jacobian(lambda x: np.array([x[0] ** 2]),
                               np.array([3.0]))
        assert jac[0, 0] == pytest.approx(6.0, rel=1e-6)

    def test_rectangular(self):
        jac = numeric_jacobian(
            lambda x: np.array([x[0] + x[1], x[0] - x[1], 2 * x[0]]),
            np.array([1.0, 1.0]))
        assert jac.shape == (3, 2)

    def test_requires_1d(self):
        with pytest.raises(InvalidParameterError):
            numeric_jacobian(lambda x: x, np.zeros((2, 2)))


class TestNewton:
    def test_scalar_root(self):
        res = newton_solve(lambda x: np.array([x[0] ** 2 - 4.0]),
                           np.array([3.0]))
        assert res.converged
        assert res.x[0] == pytest.approx(2.0)

    def test_2d_system(self):
        # x^2 + y^2 = 25, x - y = 1  ->  x=4, y=3.
        def f(v):
            x, y = v
            return np.array([x * x + y * y - 25.0, x - y - 1.0])
        res = newton_solve(f, np.array([5.0, 2.0]))
        assert res.converged
        assert np.allclose(res.x, [4.0, 3.0])

    def test_analytic_jacobian_path(self):
        def f(v):
            return np.array([np.exp(v[0]) - 2.0])
        def jac(v):
            return np.array([[np.exp(v[0])]])
        res = newton_solve(f, np.array([0.0]), jacobian=jac)
        assert res.x[0] == pytest.approx(np.log(2.0))

    def test_no_root_raises(self):
        with pytest.raises(ConvergenceError) as exc:
            newton_solve(lambda x: np.array([x[0] ** 2 + 1.0]),
                         np.array([1.0]), max_iter=20)
        assert exc.value.iterations == 20

    def test_no_root_soft_failure(self):
        res = newton_solve(lambda x: np.array([x[0] ** 2 + 1.0]),
                           np.array([1.0]), max_iter=20,
                           raise_on_failure=False)
        assert not res.converged

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            newton_solve(lambda x: np.array([x[0], x[0]]), np.array([1.0]))

    def test_singular_jacobian_fallback(self):
        # f(x, y) = (x + y - 2, 2x + 2y - 4): singular but consistent.
        def f(v):
            s = v[0] + v[1]
            return np.array([s - 2.0, 2.0 * s - 4.0])
        res = newton_solve(f, np.array([5.0, -1.0]), tol=1e-8)
        assert res.converged
        assert res.x.sum() == pytest.approx(2.0, abs=1e-6)

    @given(root=st.floats(-5.0, 5.0), scale=st.floats(0.5, 3.0))
    @settings(max_examples=100, deadline=None)
    def test_linear_always_converges(self, root, scale):
        res = newton_solve(lambda x: np.array([scale * (x[0] - root)]),
                           np.array([root + 10.0]))
        assert res.converged
        assert res.x[0] == pytest.approx(root, abs=1e-6)
