"""Tests for the scalar minimizers and grid search."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.solvers import (
    brent_minimize,
    golden_section_minimize,
    grid_minimize,
    grid_refine_minimize,
    integer_minimize,
)


class TestGoldenSection:
    def test_parabola(self):
        x, f = golden_section_minimize(lambda v: (v - 2.5) ** 2, 0.0, 10.0)
        assert x == pytest.approx(2.5, abs=1e-6)
        assert f == pytest.approx(0.0, abs=1e-10)

    def test_boundary_minimum(self):
        x, _ = golden_section_minimize(lambda v: v, 1.0, 5.0)
        assert x == pytest.approx(1.0, abs=1e-5)

    def test_invalid_bracket(self):
        with pytest.raises(InvalidParameterError):
            golden_section_minimize(lambda v: v, 5.0, 1.0)


class TestBrent:
    def test_parabola(self):
        x, _ = brent_minimize(lambda v: (v - 1.234) ** 2, -10.0, 10.0)
        assert x == pytest.approx(1.234, abs=1e-7)

    def test_nonsmooth(self):
        x, _ = brent_minimize(lambda v: abs(v - 3.0), 0.0, 10.0)
        assert x == pytest.approx(3.0, abs=1e-6)

    def test_transcendental(self):
        # min of x - sin(x) + x^2/10 near 0... use cosh-like bowl instead.
        x, _ = brent_minimize(lambda v: math.cosh(v - 0.7), -5.0, 5.0)
        assert x == pytest.approx(0.7, abs=1e-6)

    @given(c=st.floats(-5.0, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_quartic_bowl(self, c):
        x, _ = brent_minimize(lambda v: (v - c) ** 4 + 1.0, -10.0, 10.0)
        assert x == pytest.approx(c, abs=1e-3)


class TestGrid:
    def test_grid_minimize(self):
        res = grid_minimize(lambda v: (v - 3.0) ** 2, [0, 1, 2, 3, 4])
        assert res.x == 3.0
        assert res.evaluations == 5

    def test_grid_minimize_empty(self):
        with pytest.raises(InvalidParameterError):
            grid_minimize(lambda v: v, [])

    def test_grid_all_nonfinite(self):
        with pytest.raises(InvalidParameterError):
            grid_minimize(lambda v: float("inf"), [1.0, 2.0])

    def test_grid_refine(self):
        res = grid_refine_minimize(lambda v: (v - math.pi) ** 2, 0.0, 10.0,
                                   points_per_level=9, levels=6)
        assert res.x == pytest.approx(math.pi, abs=1e-3)

    def test_grid_refine_log_scale(self):
        res = grid_refine_minimize(lambda v: (math.log(v) - 3.0) ** 2,
                                   1.0, 1e4, log_scale=True)
        assert res.x == pytest.approx(math.exp(3.0), rel=1e-2)

    def test_grid_refine_log_needs_positive(self):
        with pytest.raises(InvalidParameterError):
            grid_refine_minimize(lambda v: v, 0.0, 1.0, log_scale=True)


class TestIntegerMinimize:
    def test_exhaustive_small_range(self):
        res = integer_minimize(lambda n: (n - 37) ** 2, 1, 100)
        assert res.x == 37
        assert res.evaluations == 100

    def test_large_range_unimodal(self):
        res = integer_minimize(lambda n: (n - 12345) ** 2, 1, 100000)
        assert res.x == 12345
        assert res.evaluations < 1000

    def test_ties_prefer_smaller(self):
        res = integer_minimize(lambda n: 0.0, 5, 10)
        assert res.x == 5

    def test_empty_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            integer_minimize(lambda n: n, 5, 4)

    @given(target=st.integers(1, 50000))
    @settings(max_examples=50, deadline=None)
    def test_unimodal_exactness(self, target):
        res = integer_minimize(lambda n: abs(n - target), 1, 50000)
        assert res.x == target
