"""Shared fixtures for the test suite.

Besides the basic deterministic fixtures, this module hosts the seeded
generators behind the DSE property/differential tests
(``tests/dse/test_batch_*.py``): factories that grow randomized design
spaces and configuration batches from an explicit seed, so every
"random" case is reproducible from its parametrized seed alone.

``pytest --sanitize`` re-runs any selected suite as a dynamic race
check: it arms the runtime concurrency sanitizer
(``C2BOUND_SANITIZE=1``, see :mod:`repro.analysis.sanitizer`) for the
whole session and fails at teardown if any single-writer violation was
recorded — so the differential/fuzz/chaos suites double as a race
detector without changing a single test.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.params import ApplicationProfile, MachineParameters


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="arm the runtime concurrency sanitizer (C2BOUND_SANITIZE=1) "
             "for the whole session and fail on any recorded finding")


@pytest.fixture(autouse=True, scope="session")
def _sanitize_session(request, tmp_path_factory):
    """Session-wide sanitizer arming behind ``--sanitize``."""
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro.analysis.sanitizer import ENV_FLAG, ENV_LOG, load_findings

    log = tmp_path_factory.mktemp("sanitize") / "findings.jsonl"
    saved = {name: os.environ.get(name) for name in (ENV_FLAG, ENV_LOG)}
    os.environ[ENV_FLAG] = "1"
    os.environ[ENV_LOG] = str(log)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    findings = load_findings(log)
    assert not findings, (
        f"concurrency sanitizer recorded {len(findings)} finding(s) "
        f"in {log}:\n"
        + "\n".join(repr(f) for f in findings[:10]))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def random_space_factory():
    """Seeded generator of randomized surrogate-ready design spaces.

    ``factory(seed)`` draws a :class:`~repro.dse.space.DesignSpace` over
    the six C2-Bound parameters with randomized grid sizes and values —
    wide enough to straddle the Eq. 12 feasibility boundary so batches
    mix feasible and infeasible points.
    """
    from repro.dse.space import DesignSpace, Parameter

    def factory(seed: int, *, max_values: int = 4) -> DesignSpace:
        gen = np.random.default_rng(seed)

        def fgrid(lo: float, hi: float) -> tuple:
            k = int(gen.integers(2, max_values + 1))
            vals = np.sort(gen.uniform(lo, hi, size=k))
            # Perturb duplicates apart (uniform draws collide with
            # probability ~0, but stay deterministic about it).
            return tuple(float(v) + 1e-9 * i for i, v in enumerate(vals))

        def igrid(lo: int, hi: int) -> tuple:
            k = int(gen.integers(2, max_values + 1))
            vals = gen.choice(np.arange(lo, hi + 1), size=k, replace=False)
            return tuple(int(v) for v in np.sort(vals))

        return DesignSpace([
            Parameter("a0", fgrid(0.1, 4.0)),
            Parameter("a1", fgrid(0.05, 2.0)),
            Parameter("a2", fgrid(0.05, 4.0)),
            Parameter("n", igrid(1, 128)),
            Parameter("issue_width", igrid(1, 10)),
            Parameter("rob_size", igrid(8, 512)),
        ])

    return factory


@pytest.fixture
def random_config_batch_factory():
    """Seeded generator of config batches with deliberate duplicates.

    ``factory(space, seed, size)`` samples configurations (with
    replacement) from a design space and shuffles in exact duplicates —
    the adversarial input for memoization/budget invariants.
    """

    def factory(space, seed: int, size: int = 40) -> list[dict]:
        gen = np.random.default_rng(seed)
        idx = gen.integers(0, space.size, size=size)
        configs = [space.config_at(int(i)) for i in idx]
        # Re-append a third of the batch as duplicates, then shuffle.
        dups = [dict(configs[int(i)])
                for i in gen.integers(0, size, size=max(size // 3, 1))]
        batch = configs + dups
        gen.shuffle(batch)
        return batch

    return factory


@pytest.fixture
def default_app() -> ApplicationProfile:
    """A representative application profile."""
    return ApplicationProfile(f_seq=0.02, f_mem=0.3, concurrency=4.0)


@pytest.fixture
def default_machine() -> MachineParameters:
    """The default machine parameters."""
    return MachineParameters()
