"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ApplicationProfile, MachineParameters


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def default_app() -> ApplicationProfile:
    """A representative application profile."""
    return ApplicationProfile(f_seq=0.02, f_mem=0.3, concurrency=4.0)


@pytest.fixture
def default_machine() -> MachineParameters:
    """The default machine parameters."""
    return MachineParameters()
