"""Tests for write traffic, writebacks and the MSI-lite directory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import CMPSimulator, SimulatedChip
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig


def run(streams, n_cores=2, coherent=True, **chip_kw):
    chip = SimulatedChip(n_cores=n_cores, **chip_kw)
    return CMPSimulator(chip, coherent=coherent).run(streams)


def stream(addrs, writes=None, gap=50):
    addrs = np.asarray(addrs, dtype=np.int64)
    gaps = np.full(addrs.size, gap, dtype=np.int64)
    if writes is None:
        return (addrs, gaps)
    return (addrs, gaps, np.asarray(writes, dtype=bool))


class TestDirtyWritebacks:
    def test_read_only_run_has_no_writebacks(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 20, 500) * 64
        res = run([stream(addrs), stream(addrs)])
        assert res.l1_writebacks == 0
        assert res.dram_writes == 0

    def test_dirty_evictions_produce_writebacks(self):
        # Write a footprint 4x the L1, cyclically: every eviction dirty.
        lines = 4 * 512  # 4x a 32KiB/64B cache
        addrs = np.tile(np.arange(lines) * 64, 3)
        writes = np.ones(addrs.size, dtype=bool)
        res = run([stream(addrs, writes), stream(np.array([0]))])
        assert res.l1_writebacks > 0

    def test_cache_level_writeback_tracking(self):
        cache = SetAssociativeCache(CacheConfig(size_kib=0.125, assoc=2))
        sets = cache.num_sets
        stride = sets * 64
        cache.access_rw(0, write=True)
        cache.access_rw(stride, write=True)
        _, victim = cache.access_rw(2 * stride, write=False)
        assert victim is not None
        assert cache.writebacks == 1

    def test_invalidate_dirty_counts_writeback(self):
        cache = SetAssociativeCache(CacheConfig())
        cache.access_rw(0, write=True)
        assert cache.is_dirty(0)
        cache.invalidate(0)
        assert cache.writebacks == 1

    def test_set_dirty_without_stats(self):
        cache = SetAssociativeCache(CacheConfig())
        cache.access(0)
        hits_before = cache.hits
        assert cache.set_dirty(0)
        assert cache.hits == hits_before
        assert cache.is_dirty(0)
        assert not cache.set_dirty(1 << 20)


class TestCoherence:
    def test_write_invalidates_remote_copy(self):
        # Core 0 and core 1 both read line 0; core 0 then writes it.
        a = stream(np.array([0, 0, 0]), [False, True, False], gap=2000)
        b = stream(np.array([0, 0]), None, gap=2000)
        res = run([a, b])
        assert res.invalidations + res.upgrades >= 1

    def test_non_coherent_mode_has_no_invalidations(self):
        a = stream(np.array([0, 0, 0]), [False, True, False], gap=2000)
        b = stream(np.array([0, 0]), None, gap=2000)
        res = run([a, b], coherent=False)
        assert res.invalidations == 0
        assert res.upgrades == 0

    def test_private_writes_cause_no_invalidations(self):
        # Disjoint address ranges: the directory never sees sharing.
        a = stream(np.arange(100) * 64, np.ones(100, bool), gap=100)
        b = stream((np.arange(100) + (1 << 16)) * 64,
                   np.ones(100, bool), gap=100)
        res = run([a, b])
        assert res.invalidations == 0

    def test_ping_pong_slower_than_private(self):
        # True/false-sharing ping-pong on one line vs private lines.
        n = 300
        shared = stream(np.zeros(n, dtype=np.int64),
                        np.ones(n, bool), gap=400)
        shared2 = stream(np.zeros(n, dtype=np.int64),
                         np.ones(n, bool), gap=400)
        private1 = stream(np.zeros(n, dtype=np.int64),
                          np.ones(n, bool), gap=400)
        private2 = stream(np.full(n, 1 << 20, dtype=np.int64),
                          np.ones(n, bool), gap=400)
        contended = run([shared, shared2])
        clean = run([private1, private2])
        assert contended.invalidations > 0
        assert contended.exec_cycles > clean.exec_cycles

    def test_kernel_write_masks_flow_through(self):
        from repro.workloads import Stencil1D
        rng = np.random.default_rng(1)
        wl = Stencil1D(n=512, iterations=2)
        res = run(wl.streams(2, rng))
        total_writes = sum(int(s[2].sum()) for s in wl.streams(2, rng))
        assert total_writes > 0
        # Dirty data exists, so writebacks are possible (footprint is
        # small here, so we only require the plumbing not to crash).
        assert res.exec_cycles > 0
