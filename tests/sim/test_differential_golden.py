"""Differential tests: the optimized simulator is bit-identical to the seed.

``tests/data/sim_golden.json`` holds digests of every observable output
(per-core records, exec cycles, coherence counters, per-layer traces,
layer APC, C-AMAT statistics and ``simulate_chip_cost``) produced by the
pre-optimization implementation.  The fast-path rework — columnar
traces, the MSHR retirement heap, the committed-done watermark, the
list-backed tag stores and the NoC latency table — must reproduce them
exactly, field for field.

See :mod:`tests.sim.golden_util` for the case matrix and regeneration
instructions.
"""

from __future__ import annotations

import json

import pytest

from tests.sim.golden_util import GOLDEN_PATH, golden_cases, run_case

_CASES = golden_cases()


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_golden_file_covers_all_cases(golden):
    assert sorted(golden) == sorted(name for name, *_ in _CASES)


@pytest.mark.parametrize(
    "name,chip,workload,seed", _CASES, ids=[c[0] for c in _CASES])
def test_bit_identical_to_seed_implementation(golden, name, chip,
                                              workload, seed):
    digest = run_case(chip, workload, seed)
    reference = golden[name]
    # Compare field-by-field for a readable failure before the full
    # equality (which guards any keys the loop might miss).
    for key in reference:
        assert digest[key] == reference[key], f"{name}: {key} diverged"
    assert digest == reference
