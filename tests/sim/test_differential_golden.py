"""Differential tests: the optimized simulator is bit-identical to the seed.

``tests/data/sim_golden.json`` holds digests of every observable output
(per-core records, exec cycles, coherence counters, per-layer traces,
per-layer statistics, layer APC, C-AMAT statistics and
``simulate_chip_cost``) produced by the pre-optimization implementation.
The fast-path rework — columnar traces, the MSHR retirement heap, the
committed-done watermark, the list-backed tag stores, the NoC latency
table and the batched epoch kernel (:mod:`repro.sim.kernel`) — must
reproduce them exactly, field for field, with the kernel enabled *and*
disabled.

See :mod:`tests.sim.golden_util` for the case matrix and regeneration
instructions (guarded: digests cannot change without a
``SIM_MODEL_VERSION`` bump).
"""

from __future__ import annotations

import pytest

from tests.sim.golden_util import (GOLDEN_SCHEMA, golden_cases, load_golden,
                                   run_case)

_CASES = golden_cases()


@pytest.fixture(scope="module")
def golden() -> dict:
    return load_golden()


def test_golden_file_schema(golden):
    assert golden["schema"] == GOLDEN_SCHEMA
    assert golden["sim_model_version"]


def test_golden_file_covers_all_cases(golden):
    assert sorted(golden["cases"]) == sorted(name for name, *_ in _CASES)


@pytest.mark.parametrize("use_kernel", [True, False],
                         ids=["kernel", "scalar"])
@pytest.mark.parametrize(
    "name,chip,workload,seed", _CASES, ids=[c[0] for c in _CASES])
def test_bit_identical_to_seed_implementation(golden, name, chip,
                                              workload, seed, use_kernel):
    digest = run_case(chip, workload, seed, use_kernel=use_kernel)
    reference = golden["cases"][name]
    # Compare field-by-field for a readable failure before the full
    # equality (which guards any keys the loop might miss).
    for key in reference:
        assert digest[key] == reference[key], f"{name}: {key} diverged"
    assert digest == reference
