"""Property-based invariants of the CMP simulator (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camat import TraceAnalyzer
from repro.sim import CMPSimulator, SimulatedChip


@st.composite
def small_streams(draw):
    n_ops = draw(st.integers(1, 60))
    addrs = draw(st.lists(st.integers(0, 1 << 16), min_size=n_ops,
                          max_size=n_ops))
    gaps = draw(st.lists(st.integers(0, 50), min_size=n_ops,
                         max_size=n_ops))
    writes = draw(st.lists(st.booleans(), min_size=n_ops, max_size=n_ops))
    return (np.array(addrs, dtype=np.int64) * 8,
            np.array(gaps, dtype=np.int64),
            np.array(writes, dtype=bool))


@given(small_streams())
@settings(max_examples=60, deadline=None)
def test_single_core_invariants(stream):
    chip = SimulatedChip(n_cores=1)
    res = CMPSimulator(chip).run([stream])
    core = res.cores[0]
    addrs, gaps, _writes = stream
    # Conservation: every memory op produced exactly one record, and
    # every op was classified hit or miss exactly once.
    assert core.mem_ops == addrs.size
    assert len(core.records) == addrs.size
    assert core.l1_hits + core.l1_misses == addrs.size
    # The run cannot finish before the issue bandwidth allows.
    total_instr = int(gaps.sum()) + addrs.size
    assert res.exec_cycles >= total_instr // chip.core.issue_width
    # Records are valid accesses with completion after issue.
    for start, hit, penalty in core.records:
        assert start >= 0
        assert hit >= 1
        assert penalty >= 0
    # The emitted trace satisfies the C-AMAT ordering invariant.
    stats = TraceAnalyzer().analyze(core.trace())
    assert stats.camat <= stats.amat + 1e-9


@given(small_streams(), small_streams())
@settings(max_examples=30, deadline=None)
def test_two_core_invariants(s1, s2):
    chip = SimulatedChip(n_cores=2)
    res = CMPSimulator(chip).run([s1, s2])
    assert res.total_instructions == (
        int(s1[1].sum()) + s1[0].size + int(s2[1].sum()) + s2[0].size)
    assert res.exec_cycles >= max(r.finish_cycle for r in res.cores) - 1
    # Coherence counters are consistent.
    assert res.invalidations >= 0
    assert res.dram_writes >= 0


@given(small_streams())
@settings(max_examples=20, deadline=None)
def test_determinism(stream):
    chip = SimulatedChip(n_cores=1)
    a = CMPSimulator(chip).run([(stream[0].copy(), stream[1].copy(),
                                 stream[2].copy())])
    b = CMPSimulator(chip).run([stream])
    assert a.exec_cycles == b.exec_cycles
    assert a.cores[0].records == b.cores[0].records
