"""Tests for simulator configuration and the analytic-to-sim bridge."""

from __future__ import annotations

import pytest

from repro.core.chip import ChipConfig
from repro.errors import InvalidParameterError
from repro.sim.config import (
    CacheConfig,
    CoreMicroConfig,
    DRAMConfig,
    NoCConfig,
    SimulatedChip,
)


class TestFromChipConfig:
    def test_capacities_follow_areas(self):
        chip = ChipConfig(n=8, a0=1.0, a1=0.5, a2=4.0)
        sim = SimulatedChip.from_chip_config(chip)
        assert sim.n_cores == 8
        assert sim.l1.size_kib == pytest.approx(0.5 * 64.0)
        assert sim.l2_slice.size_kib == pytest.approx(4.0 * 64.0)

    def test_issue_width_scales_with_sqrt_area(self):
        # Pollack: 4x the area doubles the width.
        base = SimulatedChip.from_chip_config(
            ChipConfig(n=1, a0=1.0, a1=0.5, a2=1.0))
        big = SimulatedChip.from_chip_config(
            ChipConfig(n=1, a0=4.0, a1=0.5, a2=1.0))
        assert base.core.issue_width == 4
        assert big.core.issue_width == 8
        assert big.core.rob_size == 32 * 8

    def test_explicit_micro_overrides(self):
        sim = SimulatedChip.from_chip_config(
            ChipConfig(n=2, a0=1.0, a1=0.5, a2=1.0),
            micro=CoreMicroConfig(issue_width=2, rob_size=64))
        assert sim.core.issue_width == 2

    def test_tiny_areas_clamped(self):
        sim = SimulatedChip.from_chip_config(
            ChipConfig(n=1, a0=0.01, a1=0.001, a2=0.001))
        assert sim.l1.size_kib >= 1.0
        assert sim.core.issue_width >= 1


class TestConfigValidation:
    def test_core_micro(self):
        with pytest.raises(InvalidParameterError):
            CoreMicroConfig(issue_width=0)
        with pytest.raises(InvalidParameterError):
            CoreMicroConfig(rob_size=0)

    def test_cache_geometry_derived(self):
        cfg = CacheConfig(size_kib=64.0, assoc=4, line_bytes=64)
        assert cfg.num_lines == 1024
        assert cfg.num_sets == 256

    def test_noc(self):
        with pytest.raises(InvalidParameterError):
            NoCConfig(hop_latency=-1)

    def test_dram_row_bytes(self):
        with pytest.raises(InvalidParameterError):
            DRAMConfig(row_bytes=100)

    def test_chip_core_count(self):
        with pytest.raises(InvalidParameterError):
            SimulatedChip(n_cores=0)
