"""Tests for MSHRs, the DRAM model and the mesh NoC."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.sim.config import DRAMConfig, NoCConfig
from repro.sim.dram import DRAMModel
from repro.sim.mshr import MSHRFile
from repro.sim.noc import MeshNoC


class TestMSHR:
    def test_allocate_and_retire(self):
        m = MSHRFile(2)
        m.allocate(1, fill_time=100, now=0)
        assert m.outstanding(0) == 1
        assert m.outstanding(100) == 0

    def test_merge(self):
        m = MSHRFile(2)
        m.allocate(1, fill_time=100, now=0)
        assert m.merge(1, now=10) == 100
        assert m.secondary_merges == 1

    def test_merge_missing_line_rejected(self):
        m = MSHRFile(2)
        with pytest.raises(InvalidParameterError):
            m.merge(7, now=0)

    def test_full_file_stalls(self):
        m = MSHRFile(2)
        m.allocate(1, fill_time=50, now=0)
        m.allocate(2, fill_time=80, now=0)
        assert m.earliest_free_time(10) == 50
        assert m.stall_events == 1

    def test_allocate_full_raises(self):
        m = MSHRFile(1)
        m.allocate(1, fill_time=50, now=0)
        with pytest.raises(InvalidParameterError):
            m.allocate(2, fill_time=60, now=0)

    def test_duplicate_line_rejected(self):
        m = MSHRFile(4)
        m.allocate(1, fill_time=50, now=0)
        with pytest.raises(InvalidParameterError):
            m.allocate(1, fill_time=70, now=0)

    def test_lookup(self):
        m = MSHRFile(2)
        m.allocate(3, fill_time=42, now=0)
        assert m.lookup(3, now=0) == 42
        assert m.lookup(3, now=42) is None


class TestDRAM:
    def test_row_hit_faster_than_conflict(self):
        cfg = DRAMConfig()
        d = DRAMModel(cfg)
        t1 = d.access(0, 0)
        assert t1 == cfg.row_miss + cfg.bus_cycles  # first touch
        t2 = d.access(8, t1)  # same row
        assert t2 - t1 == cfg.row_hit + cfg.bus_cycles
        far = cfg.row_bytes * cfg.banks * 10  # same bank, other row
        t3 = d.access(far, t2)
        assert t3 - t2 == cfg.row_conflict + cfg.bus_cycles

    def test_bank_queueing_serializes(self):
        d = DRAMModel(DRAMConfig())
        t1 = d.access(0, 0)
        t2 = d.access(16, 0)  # same bank, same row, same arrival
        assert t2 > t1

    def test_different_banks_parallel(self):
        cfg = DRAMConfig()
        d = DRAMModel(cfg)
        t1 = d.access(0, 0)
        t2 = d.access(cfg.row_bytes, 0)  # next bank
        assert t2 == pytest.approx(t1, abs=cfg.row_hit + cfg.bus_cycles)
        assert d.bank_of(0) != d.bank_of(cfg.row_bytes)

    def test_row_hit_rate(self):
        d = DRAMModel(DRAMConfig())
        t = 0
        for i in range(10):
            t = d.access(i * 8, t)
        assert d.row_hit_rate == pytest.approx(0.9)

    def test_stats_reset(self):
        d = DRAMModel(DRAMConfig())
        d.access(0, 0)
        d.reset_stats()
        assert d.requests == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DRAMConfig(row_hit=0)
        with pytest.raises(InvalidParameterError):
            DRAMConfig(row_hit=300, row_miss=200)
        with pytest.raises(InvalidParameterError):
            DRAMModel(DRAMConfig()).bank_of(-5)


class TestNoC:
    def test_hop_count(self):
        noc = MeshNoC(16, NoCConfig())
        assert noc.side == 4
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 3) == 3
        assert noc.hops(0, 15) == 6  # corner to corner

    def test_latency(self):
        noc = MeshNoC(16, NoCConfig(hop_latency=2, router_latency=1))
        assert noc.latency(0, 5) == 1 + 2 * noc.hops(0, 5)
        assert noc.round_trip(0, 5) == 2 * noc.latency(0, 5)

    def test_single_node(self):
        noc = MeshNoC(1, NoCConfig())
        assert noc.latency(0, 0) == noc.config.router_latency

    def test_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            MeshNoC(4, NoCConfig()).hops(0, 4)

    def test_average_hops_closed_form(self):
        noc = MeshNoC(16, NoCConfig())
        # Brute-force average over all pairs of the full 4x4 mesh.
        total = sum(noc.hops(s, d) for s in range(16) for d in range(16))
        assert noc.average_hops == pytest.approx(total / 256.0)
