"""Tests for the core model and the CMP simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.camat import TraceAnalyzer
from repro.errors import SimulationError
from repro.sim import (
    CMPSimulator,
    CacheConfig,
    CoreMicroConfig,
    SimulatedChip,
)
from repro.sim.config import DRAMConfig, NoCConfig


def run_single_core(addresses, gaps=None, **chip_kw):
    addresses = np.asarray(addresses, dtype=np.int64)
    if gaps is None:
        gaps = np.zeros_like(addresses)
    chip = SimulatedChip(n_cores=1, **chip_kw)
    return CMPSimulator(chip).run([(addresses, np.asarray(gaps))])


class TestSingleCore:
    def test_pure_hits_after_warmup(self):
        # Gaps let the cold-miss fill complete before the re-touches.
        res = run_single_core([0, 0, 0, 0], gaps=[0, 4000, 4000, 4000])
        core = res.cores[0]
        assert core.l1_misses == 1
        assert core.l1_hits == 3

    def test_back_to_back_same_line_merges(self):
        # With no gaps all re-touches land inside the fill window and
        # ride the MSHR entry as secondary misses.
        res = run_single_core([0, 0, 0, 0])
        core = res.cores[0]
        assert core.l1_misses == 4
        assert core.mshr.secondary_merges if hasattr(core, "mshr") else True

    def test_finish_cycle_positive_and_ipc(self):
        res = run_single_core(np.arange(64) * 64)
        assert res.exec_cycles > 0
        assert 0 < res.ipc

    def test_compute_only_gaps_lengthen_run(self):
        addrs = np.zeros(16, dtype=np.int64)
        short = run_single_core(addrs)
        long = run_single_core(addrs, gaps=np.full(16, 1000))
        assert long.exec_cycles > short.exec_cycles

    def test_trace_roundtrip_through_analyzer(self):
        res = run_single_core(np.arange(128) * 8)
        stats = res.core_stats(0)
        assert stats.accesses == 128
        assert stats.camat <= stats.amat + 1e-9

    def test_mshr_limits_miss_concurrency(self):
        # Random far-apart lines with no compute gaps: misses pile up
        # to the MSHR limit but not beyond (merges aside).
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 28, 600) * 64
        chip_kw = dict(l1=CacheConfig(mshr_entries=4),
                       core=CoreMicroConfig(issue_width=8, rob_size=512))
        res = run_single_core(addrs, **chip_kw)
        stats = res.core_stats(0)
        # Distinct-line misses overlap at most mshr_entries deep, plus
        # the lookup-stage access that joins the moment an entry
        # retires (the +1) — but far below the 40+ of an unlimited file.
        assert stats.miss_concurrency <= 4 + 1.5

    def test_blocking_cache_serializes_misses(self):
        rng = np.random.default_rng(4)
        addrs = rng.integers(0, 1 << 28, 200) * 64
        res_blocking = run_single_core(
            addrs, l1=CacheConfig(mshr_entries=1))
        res_nonblocking = run_single_core(
            addrs, l1=CacheConfig(mshr_entries=16))
        assert res_blocking.exec_cycles > res_nonblocking.exec_cycles

    def test_wider_issue_not_slower(self):
        addrs = (np.arange(512) % 64) * 8
        slow = run_single_core(addrs, core=CoreMicroConfig(issue_width=1))
        fast = run_single_core(addrs, core=CoreMicroConfig(issue_width=8))
        assert fast.exec_cycles <= slow.exec_cycles

    def test_bigger_rob_not_slower(self):
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 1 << 26, 400) * 64
        small = run_single_core(addrs, core=CoreMicroConfig(rob_size=8))
        big = run_single_core(addrs, core=CoreMicroConfig(rob_size=256))
        assert big.exec_cycles <= small.exec_cycles

    def test_stream_count_mismatch_rejected(self):
        chip = SimulatedChip(n_cores=2)
        with pytest.raises(SimulationError):
            CMPSimulator(chip).run([(np.array([0]), np.array([0]))])

    def test_negative_gap_rejected(self):
        with pytest.raises(SimulationError):
            run_single_core([0, 64], gaps=[0, -1])


class TestHierarchy:
    def test_l2_hit_cheaper_than_dram(self):
        # Two misses to the same line from L1 after eviction hit in L2.
        line = 1 << 20
        # Thrash L1 between the two touches of `line`.
        thrash = [(i + 2) * (1 << 12) for i in range(4096)]
        addrs = [line] + [t * 64 for t in range(4096)] + [line]
        res = run_single_core(np.asarray(addrs, dtype=np.int64))
        assert res.l2_trace is not None

    def test_dram_trace_only_on_l2_miss(self):
        res = run_single_core([0, 0, 0])
        # Single line: one L2 access (the cold miss), one DRAM access.
        assert len(res.l2_trace) == 1
        assert len(res.dram_trace) == 1

    def test_l2_capacity_effect(self):
        rng = np.random.default_rng(6)
        # Working set ~1MB: fits a 2MB L2 slice, thrashes a 64KB one.
        addrs = rng.integers(0, 1 << 20, 3000)
        addrs = (addrs // 64) * 64
        small = run_single_core(addrs, l2_slice=CacheConfig(
            size_kib=64.0, assoc=16, hit_latency=15, mshr_entries=16))
        big = run_single_core(addrs, l2_slice=CacheConfig(
            size_kib=2048.0, assoc=16, hit_latency=15, mshr_entries=16))
        assert big.exec_cycles < small.exec_cycles

    def test_apc_layer_ordering(self):
        # Three-tier locality (L1-resident hot set, L2-resident warm
        # set, cold DRAM tail): APC must decrease down the hierarchy.
        rng = np.random.default_rng(7)
        hot = rng.integers(0, 256, 4000) * 8           # 2KB: fits L1
        warm = (1 << 30) + rng.integers(0, 4096, 1500) * 64  # 256KB: fits L2
        cold = rng.integers(0, 1 << 24, 500) * 64
        addrs = np.concatenate([hot, warm, cold]).astype(np.int64)
        rng.shuffle(addrs)
        res = run_single_core(addrs, gaps=np.full(addrs.size, 3))
        apc = res.layer_apc().as_dict()
        assert apc["L1"] > apc["LLC"] > apc["DRAM"]


class TestMultiCore:
    def test_contention_slows_shared_dram(self):
        rng = np.random.default_rng(8)
        def streams(n):
            return [((rng.integers(0, 1 << 26, 300) * 64).astype(np.int64),
                     np.zeros(300, dtype=np.int64)) for _ in range(n)]
        solo = CMPSimulator(SimulatedChip(
            n_cores=1, dram=DRAMConfig(banks=1))).run(streams(1))
        quad = CMPSimulator(SimulatedChip(
            n_cores=4, dram=DRAMConfig(banks=1))).run(streams(4))
        # Four cores hammering one DRAM bank: per-core time worsens.
        assert quad.exec_cycles > solo.exec_cycles

    def test_per_core_results(self):
        rng = np.random.default_rng(9)
        chip = SimulatedChip(n_cores=4)
        streams = [
            ((rng.integers(0, 1 << 20, 200) * 64).astype(np.int64),
             np.zeros(200, dtype=np.int64))
            for _ in range(4)]
        res = CMPSimulator(chip).run(streams)
        assert len(res.cores) == 4
        assert all(c.mem_ops == 200 for c in res.cores)
        assert res.total_instructions == sum(
            c.instructions for c in res.cores)

    def test_noc_distance_affects_remote_l2(self):
        # Larger mesh hop latency slows L2-bound runs.
        rng = np.random.default_rng(10)
        addrs = (rng.integers(0, 1 << 14, 2000) * 64).astype(np.int64)
        streams = [(addrs.copy(), np.zeros(2000, dtype=np.int64))
                   for _ in range(4)]
        near = CMPSimulator(SimulatedChip(
            n_cores=4, noc=NoCConfig(hop_latency=1))).run(streams)
        far = CMPSimulator(SimulatedChip(
            n_cores=4, noc=NoCConfig(hop_latency=40))).run(streams)
        assert far.exec_cycles > near.exec_cycles
