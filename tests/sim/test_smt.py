"""Tests for the SMT core model."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import CMPSimulator, SimulatedChip
from repro.sim.config import CoreMicroConfig


def make_chip(smt: int, **micro_kw) -> SimulatedChip:
    chip = SimulatedChip(n_cores=1)
    return replace(chip, core=CoreMicroConfig(smt_threads=smt, **micro_kw))


def miss_stream(rng, n=400, gap=100):
    addrs = (rng.integers(0, 1 << 26, n) * 64).astype(np.int64)
    return (addrs, np.full(n, gap, dtype=np.int64))


class TestSMTBasics:
    def test_stream_count_checked(self):
        chip = make_chip(2)
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            CMPSimulator(chip).run([miss_stream(rng)])

    def test_result_merges_threads(self):
        chip = make_chip(2)
        rng = np.random.default_rng(0)
        res = CMPSimulator(chip).run([miss_stream(rng, 300),
                                      miss_stream(rng, 300)])
        core = res.cores[0]
        assert core.mem_ops == 600
        assert len(core.records) == 600
        starts = [r[0] for r in core.records]
        assert starts == sorted(starts)

    def test_single_thread_smt_equals_plain_core(self):
        rng = np.random.default_rng(1)
        stream = miss_stream(rng, 200)
        plain = CMPSimulator(make_chip(1)).run([stream])
        # smt_threads=1 uses the plain CoreModel path.
        assert plain.cores[0].mem_ops == 200


class TestSMTConcurrency:
    def test_smt_raises_measured_concurrency(self):
        # Two memory-bound threads on one SMT core overlap each other's
        # misses; the same work run as one long thread cannot.
        rng = np.random.default_rng(2)
        a1, g1 = miss_stream(rng, 300, gap=200)
        a2, g2 = miss_stream(rng, 300, gap=200)
        single = CMPSimulator(make_chip(1)).run(
            [(np.concatenate([a1, a2]), np.concatenate([g1, g2]))])
        smt = CMPSimulator(make_chip(2)).run([(a1, g1), (a2, g2)])
        c_single = single.core_stats(0).concurrency
        c_smt = smt.core_stats(0).concurrency
        assert c_smt > c_single

    def test_smt_improves_memory_bound_throughput(self):
        rng = np.random.default_rng(3)
        a1, g1 = miss_stream(rng, 300, gap=200)
        a2, g2 = miss_stream(rng, 300, gap=200)
        single = CMPSimulator(make_chip(1)).run(
            [(np.concatenate([a1, a2]), np.concatenate([g1, g2]))])
        smt = CMPSimulator(make_chip(2)).run([(a1, g1), (a2, g2)])
        assert smt.exec_cycles < single.exec_cycles

    def test_threads_share_l1(self):
        # Thread 1 warms a line; thread 2 hits it (shared tags).
        chip = make_chip(2)
        line = np.int64(1 << 20)
        warm = (np.full(50, line), np.full(50, 500, dtype=np.int64))
        reader = (np.full(50, line), np.full(50, 500, dtype=np.int64))
        res = CMPSimulator(chip).run([warm, reader])
        core = res.cores[0]
        assert core.l1_misses <= 3  # one cold miss (+ possible merges)

    def test_smt_validation(self):
        from repro.errors import InvalidParameterError
        with pytest.raises(InvalidParameterError):
            CoreMicroConfig(smt_threads=0)
