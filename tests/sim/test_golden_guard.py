"""Guards on the golden-digest machinery itself.

The differential wall is only as strong as its pin: if the digest
depended on dict iteration order, or the golden file could be silently
regenerated after a semantic change, bit-identity would rot without a
failing test.  This module pins both properties of
:mod:`tests.sim.golden_util`:

- ``_sha`` is canonical — key order and assembly history never leak
  into a digest (layer-stat dicts are built by unordered accumulation,
  so insertion-order hashing would be nondeterministic across
  refactors);
- ``regeneration_error`` refuses to rewrite any existing digest unless
  ``SIM_MODEL_VERSION`` is bumped, while allowing purely additive
  changes (new cases, new fields).
"""

from __future__ import annotations

import json

from tests.sim.golden_util import (GOLDEN_PATH, GOLDEN_SCHEMA, _sha,
                                   load_golden, regeneration_error)


# ----- digest canonicalization ------------------------------------------
def test_sha_is_insertion_order_invariant():
    forward = {"l2.hits": 10, "l2.misses": 3, "dram.writes": 1}
    reversed_ = dict(reversed(list(forward.items())))
    assert list(forward) != list(reversed_)  # genuinely different orders
    assert _sha(forward) == _sha(reversed_)


def test_sha_nested_dicts_and_lists_are_canonical():
    a = {"cores": [{"hits": 1, "misses": 2}], "meta": {"x": 1, "y": 2}}
    b = {"meta": {"y": 2, "x": 1}, "cores": [{"misses": 2, "hits": 1}]}
    assert _sha(a) == _sha(b)
    # List order is content, not assembly history: it must matter.
    assert _sha([1, 2]) != _sha([2, 1])


def test_sha_distinguishes_values_and_types():
    assert _sha({"k": 1}) != _sha({"k": 2})
    assert _sha({"k": "1"}) != _sha({"k": 1})


# ----- regeneration refusal ---------------------------------------------
def _pin(version="v1", **cases):
    return {"schema": GOLDEN_SCHEMA, "sim_model_version": version,
            "cases": cases}


def test_regeneration_refused_when_digest_changes_without_bump():
    old = _pin(default={"exec_cycles": 100, "ipc": "0.5"})
    new = _pin(default={"exec_cycles": 101, "ipc": "0.5"})
    error = regeneration_error(old, new)
    assert error is not None
    assert "SIM_MODEL_VERSION" in error


def test_regeneration_allowed_with_version_bump():
    old = _pin("v1", default={"exec_cycles": 100})
    new = _pin("v2", default={"exec_cycles": 101})
    assert regeneration_error(old, new) is None


def test_regeneration_allows_additive_changes():
    old = _pin(default={"exec_cycles": 100})
    new = _pin(default={"exec_cycles": 100, "ipc": "0.5"},
               extra_case={"exec_cycles": 7})
    assert regeneration_error(old, new) is None


def test_regeneration_identical_is_allowed():
    old = _pin(default={"exec_cycles": 100})
    assert regeneration_error(old, old) is None


# ----- the committed golden file itself ---------------------------------
def test_golden_file_is_canonically_serialized():
    """The pin on disk is sorted-keys JSON — diffs stay reviewable."""
    text = GOLDEN_PATH.read_text()
    data = json.loads(text)
    assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"
    assert data["schema"] == GOLDEN_SCHEMA


def test_golden_file_digests_have_expected_shape():
    golden = load_golden()
    for name, digest in golden["cases"].items():
        assert isinstance(digest["exec_cycles"], int), name
        assert isinstance(digest["cores"], list) and digest["cores"], name
        for core in digest["cores"]:
            assert len(core["records_sha"]) == 64, name
        assert set(digest["layer_apc"]) == {"l1", "llc", "dram"}, name
