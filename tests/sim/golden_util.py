"""Golden-digest helper for the simulator differential tests.

The fast-path optimizations (columnar traces, MSHR heap, watermark
issue tracking, list-backed tag stores) must not change simulator
*behavior* at all: :mod:`tests.sim.test_differential_golden` compares a
digest of every observable output — per-core records, exec cycles,
counters, per-layer traces, layer APC and C-AMAT statistics — against
``tests/data/sim_golden.json``, which was generated with the
pre-optimization implementation.  Regenerate (only after an intentional
semantic change, alongside a bump of
:data:`repro.sim.cache_store.SIM_MODEL_VERSION`) with::

    PYTHONPATH=src:tests python tests/sim/golden_util.py
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "sim_golden.json"


def golden_cases() -> "list[tuple[str, object, object, int]]":
    """The seeded (name, chip, workload, seed) differential test matrix.

    Small enough to run in a few seconds, broad enough to cover every
    event-loop mechanism: coherent writes, SMT, prefetching, MSHR
    starvation and the default configuration.
    """
    from repro.sim.config import CacheConfig, CoreMicroConfig, SimulatedChip
    from repro.workloads.gups import GUPS
    from repro.workloads.matmul import TiledMatMul
    from repro.workloads.parsec import parsec_like

    base = SimulatedChip()
    return [
        ("default_fluidanimate",
         replace(base, n_cores=4),
         parsec_like("fluidanimate", n_ops=4000), 7),
        ("writes_coherent_matmul",
         replace(base, n_cores=2),
         TiledMatMul(n=24, tile=6), 11),
        ("smt_fluidanimate",
         replace(base, n_cores=2,
                 core=CoreMicroConfig(issue_width=4, rob_size=64,
                                      smt_threads=2)),
         parsec_like("fluidanimate", n_ops=2000), 13),
        ("prefetch_stream",
         replace(base, n_cores=2,
                 l1=replace(base.l1, prefetch="stride", prefetch_degree=2)),
         parsec_like("streamcluster", n_ops=3000), 17),
        ("mshr_starved_gups",
         replace(base, n_cores=2,
                 l1=replace(base.l1, size_kib=4.0, mshr_entries=2, banks=1),
                 l2_slice=replace(base.l2_slice, size_kib=32.0,
                                  mshr_entries=2)),
         GUPS(updates=3000, table_kib=4096.0), 19),
    ]


def _sha(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, separators=(",", ":")).encode()).hexdigest()


def _trace_digest(trace) -> "dict | None":
    if trace is None:
        return None
    return {
        "len": len(trace),
        "sha": _sha([trace.starts.tolist(), trace.hit_lengths.tolist(),
                     trace.miss_penalties.tolist()]),
        "first_cycle": int(trace.first_cycle),
        "last_cycle": int(trace.last_cycle),
    }


def _stats_digest(stats) -> dict:
    return {
        "accesses": stats.accesses,
        "misses": stats.misses,
        "pure_misses": stats.pure_misses,
        "total_hit_access_cycles": stats.total_hit_access_cycles,
        "total_miss_penalty_cycles": stats.total_miss_penalty_cycles,
        "total_pure_miss_access_cycles": stats.total_pure_miss_access_cycles,
        "hit_active_wall_cycles": stats.hit_active_wall_cycles,
        "pure_miss_wall_cycles": stats.pure_miss_wall_cycles,
        "memory_active_wall_cycles": stats.memory_active_wall_cycles,
        "span_cycles": stats.span_cycles,
        "camat": repr(stats.camat),
        "amat": repr(stats.amat),
    }


def result_digest(result, cost: float) -> dict:
    """Every observable output of one simulation, as a JSON-able dict."""
    apc = result.layer_apc()
    return {
        "exec_cycles": int(result.exec_cycles),
        "total_instructions": int(result.total_instructions),
        "ipc": repr(result.ipc),
        "cost": repr(cost),
        "l1_writebacks": int(result.l1_writebacks),
        "invalidations": int(result.invalidations),
        "upgrades": int(result.upgrades),
        "dram_writes": int(result.dram_writes),
        "cores": [{
            "instructions": c.instructions,
            "mem_ops": c.mem_ops,
            "finish_cycle": c.finish_cycle,
            "l1_hits": c.l1_hits,
            "l1_misses": c.l1_misses,
            "prefetches_issued": c.prefetches_issued,
            "prefetches_useful": c.prefetches_useful,
            "records_sha": _sha([list(r) for r in c.records]),
        } for c in result.cores],
        "l2_trace": _trace_digest(result.l2_trace),
        "dram_trace": _trace_digest(result.dram_trace),
        "layer_apc": {
            layer: {"accesses": m.accesses,
                    "active_cycles": m.active_cycles,
                    "apc": repr(m.apc)}
            for layer, m in (("l1", apc.l1), ("llc", apc.llc),
                             ("dram", apc.dram))
        },
        "core0_stats": _stats_digest(result.core_stats(0)),
    }


def run_case(chip, workload, seed: int) -> dict:
    """Simulate one golden case and digest it."""
    from repro.sim.cmp import CMPSimulator, simulate_chip_cost

    rng = np.random.default_rng(seed)
    smt = chip.core.smt_threads
    result = CMPSimulator(chip).run(
        workload.streams(chip.n_cores * smt, rng))
    # simulate_chip_cost draws one stream per core (smt=1 chips only).
    cost = (simulate_chip_cost(chip, workload, seed) if smt == 1
            else float("nan"))
    return result_digest(result, cost)


def main() -> None:
    golden = {name: run_case(chip, workload, seed)
              for name, chip, workload, seed in golden_cases()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} cases)")


if __name__ == "__main__":
    main()
