"""Golden-digest helper for the simulator differential tests.

The fast-path optimizations (columnar traces, MSHR heap, watermark
issue tracking, list-backed tag stores) and the batched epoch kernel
(:mod:`repro.sim.kernel`) must not change simulator *behavior* at all:
:mod:`tests.sim.test_differential_golden` compares a digest of every
observable output — per-core records, exec cycles, counters, per-layer
traces, per-layer statistics, layer APC and C-AMAT statistics — against
``tests/data/sim_golden.json``, which pins the seed scalar-path
semantics.  The golden file records the
:data:`repro.sim.cache_store.SIM_MODEL_VERSION` it was generated under;
:func:`main` refuses to regenerate when any existing digest changes
without a version bump, so the pin cannot be silently rewritten.
Regenerate (only after an intentional semantic change, alongside a bump
of ``SIM_MODEL_VERSION``) with::

    PYTHONPATH=src:tests python tests/sim/golden_util.py

Digest canonicalization: every hash goes through :func:`_sha`, which
serializes with ``sort_keys=True`` — layer-stat dicts are assembled by
unordered accumulation, so hashing them in insertion order would make
the digest depend on dict iteration history rather than content
(pinned by ``tests/sim/test_golden_guard.py``).
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "sim_golden.json"

GOLDEN_SCHEMA = "c2bound.sim-golden/2"


def golden_cases() -> "list[tuple[str, object, object, int]]":
    """The seeded (name, chip, workload, seed) differential test matrix.

    Small enough to run in a few seconds, broad enough to cover every
    event-loop mechanism: coherent writes, SMT, prefetching, MSHR
    starvation, the default configuration — plus the degenerate
    geometries (single core, one MSHR, one-set caches, a free NoC)
    where off-by-one bugs in a rewritten inner loop would hide.
    """
    from repro.sim.config import (CacheConfig, CoreMicroConfig, NoCConfig,
                                  SimulatedChip)
    from repro.workloads.gups import GUPS
    from repro.workloads.matmul import TiledMatMul
    from repro.workloads.parsec import parsec_like

    base = SimulatedChip()
    return [
        ("default_fluidanimate",
         replace(base, n_cores=4),
         parsec_like("fluidanimate", n_ops=4000), 7),
        ("writes_coherent_matmul",
         replace(base, n_cores=2),
         TiledMatMul(n=24, tile=6), 11),
        ("smt_fluidanimate",
         replace(base, n_cores=2,
                 core=CoreMicroConfig(issue_width=4, rob_size=64,
                                      smt_threads=2)),
         parsec_like("fluidanimate", n_ops=2000), 13),
        ("prefetch_stream",
         replace(base, n_cores=2,
                 l1=replace(base.l1, prefetch="stride", prefetch_degree=2)),
         parsec_like("streamcluster", n_ops=3000), 17),
        ("mshr_starved_gups",
         replace(base, n_cores=2,
                 l1=replace(base.l1, size_kib=4.0, mshr_entries=2, banks=1),
                 l2_slice=replace(base.l2_slice, size_kib=32.0,
                                  mshr_entries=2)),
         GUPS(updates=3000, table_kib=4096.0), 19),
        # ----- edge-case geometries (added with the epoch kernel) ------
        ("single_core_canneal",
         replace(base, n_cores=1),
         parsec_like("canneal", n_ops=2500), 23),
        ("blocking_mshr1",
         replace(base, n_cores=2,
                 l1=replace(base.l1, mshr_entries=1),
                 l2_slice=replace(base.l2_slice, mshr_entries=1)),
         parsec_like("streamcluster", n_ops=2000), 29),
        ("one_set_caches",
         replace(base, n_cores=2,
                 l1=CacheConfig(size_kib=0.5, assoc=8, banks=1),
                 l2_slice=replace(base.l2_slice, size_kib=1.0, assoc=16)),
         GUPS(updates=1500, table_kib=256.0), 31),
        ("zero_latency_noc",
         replace(base, n_cores=4,
                 noc=NoCConfig(hop_latency=0, router_latency=0)),
         parsec_like("fluidanimate", n_ops=2000), 37),
    ]


def _sha(obj) -> str:
    """Canonical content hash: key order never leaks into the digest."""
    return hashlib.sha256(json.dumps(
        obj, separators=(",", ":"), sort_keys=True).encode()).hexdigest()


def _trace_digest(trace) -> "dict | None":
    if trace is None:
        return None
    return {
        "len": len(trace),
        "sha": _sha([trace.starts.tolist(), trace.hit_lengths.tolist(),
                     trace.miss_penalties.tolist()]),
        "first_cycle": int(trace.first_cycle),
        "last_cycle": int(trace.last_cycle),
    }


def _stats_digest(stats) -> dict:
    return {
        "accesses": stats.accesses,
        "misses": stats.misses,
        "pure_misses": stats.pure_misses,
        "total_hit_access_cycles": stats.total_hit_access_cycles,
        "total_miss_penalty_cycles": stats.total_miss_penalty_cycles,
        "total_pure_miss_access_cycles": stats.total_pure_miss_access_cycles,
        "hit_active_wall_cycles": stats.hit_active_wall_cycles,
        "pure_miss_wall_cycles": stats.pure_miss_wall_cycles,
        "memory_active_wall_cycles": stats.memory_active_wall_cycles,
        "span_cycles": stats.span_cycles,
        "camat": repr(stats.camat),
        "amat": repr(stats.amat),
    }


def result_digest(result, cost: float, hierarchy_stats: dict) -> dict:
    """Every observable output of one simulation, as a JSON-able dict."""
    apc = result.layer_apc()
    return {
        "exec_cycles": int(result.exec_cycles),
        "total_instructions": int(result.total_instructions),
        "ipc": repr(result.ipc),
        "cost": repr(cost),
        "l1_writebacks": int(result.l1_writebacks),
        "invalidations": int(result.invalidations),
        "upgrades": int(result.upgrades),
        "dram_writes": int(result.dram_writes),
        "layer_stats_sha": _sha({k: repr(float(v))
                                 for k, v in hierarchy_stats.items()}),
        "cores": [{
            "instructions": c.instructions,
            "mem_ops": c.mem_ops,
            "finish_cycle": c.finish_cycle,
            "l1_hits": c.l1_hits,
            "l1_misses": c.l1_misses,
            "prefetches_issued": c.prefetches_issued,
            "prefetches_useful": c.prefetches_useful,
            "records_sha": _sha([list(r) for r in c.records]),
        } for c in result.cores],
        "l2_trace": _trace_digest(result.l2_trace),
        "dram_trace": _trace_digest(result.dram_trace),
        "layer_apc": {
            layer: {"accesses": m.accesses,
                    "active_cycles": m.active_cycles,
                    "apc": repr(m.apc)}
            for layer, m in (("l1", apc.l1), ("llc", apc.llc),
                             ("dram", apc.dram))
        },
        "core0_stats": _stats_digest(result.core_stats(0)),
    }


def run_case(chip, workload, seed: int, *,
             use_kernel: "bool | None" = None) -> dict:
    """Simulate one golden case and digest it."""
    from repro.sim.cmp import CMPSimulator, simulate_chip_cost
    from repro.sim.hierarchy import MemoryHierarchy
    from repro.sim.kernel import kernel_enabled

    rng = np.random.default_rng(seed)
    smt = chip.core.smt_threads
    simulator = CMPSimulator(chip, use_kernel=use_kernel)
    result = simulator.run(workload.streams(chip.n_cores * smt, rng))
    # simulate_chip_cost draws one stream per core (smt=1 chips only);
    # it follows the ambient kernel toggle, so pin it for the digest.
    if smt == 1:
        if use_kernel is None or use_kernel == kernel_enabled():
            cost = simulate_chip_cost(chip, workload, seed)
        else:
            rng = np.random.default_rng(seed)
            rerun = simulator.run(workload.streams(chip.n_cores, rng))
            instructions = rerun.total_instructions
            cost = (float("inf") if instructions == 0
                    else rerun.exec_cycles / instructions)
    else:
        cost = float("nan")
    return result_digest(result, cost, simulator.last_layer_stats)


def load_golden() -> dict:
    """Parse the golden file (schema v2: versioned, cases nested)."""
    with open(GOLDEN_PATH) as handle:
        data = json.load(handle)
    if "cases" not in data:
        raise ValueError(f"{GOLDEN_PATH} is not a {GOLDEN_SCHEMA} file")
    return data


def generate() -> dict:
    """Digest every golden case under the current implementation."""
    from repro.sim.cache_store import SIM_MODEL_VERSION

    cases = {name: run_case(chip, workload, seed)
             for name, chip, workload, seed in golden_cases()}
    return {"schema": GOLDEN_SCHEMA,
            "sim_model_version": SIM_MODEL_VERSION,
            "cases": cases}


def regeneration_error(old: dict, new: dict) -> "str | None":
    """Why regenerating ``old`` -> ``new`` must be refused (None if OK).

    Changed digests are only acceptable together with a
    ``SIM_MODEL_VERSION`` bump: the version is folded into every
    persistent sim-cache key, so silently regenerating the pin would
    let stale cached costs coexist with new semantics.  New cases and
    new digest fields may be added freely.
    """
    if old.get("sim_model_version") == new["sim_model_version"]:
        for name, digest in old.get("cases", {}).items():
            reference = new["cases"].get(name)
            if reference is None:
                continue
            for key, value in digest.items():
                if key in reference and reference[key] != value:
                    return (f"case {name!r} field {key!r} changed but "
                            "SIM_MODEL_VERSION did not: bump "
                            "repro.sim.cache_store.SIM_MODEL_VERSION "
                            "before regenerating the golden pin")
    return None


def main(argv: "list[str] | None" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    force = "--force" in args
    new = generate()
    if GOLDEN_PATH.exists() and not force:
        try:
            old = load_golden()
        except ValueError:
            old = {}
        error = regeneration_error(old, new)
        if error is not None:
            print(f"refusing to regenerate: {error}", file=sys.stderr)
            return 2
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(new, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(new['cases'])} cases, "
          f"model {new['sim_model_version']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
