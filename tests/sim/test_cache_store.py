"""Unit tests for the persistent content-addressed simulation store."""

from __future__ import annotations

import json
import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.obs import get_registry
from repro.sim.cache_store import (
    ENV_VAR,
    SIM_MODEL_VERSION,
    SimCacheStore,
    cached_simulate_chip_cost,
    fingerprint,
    get_default_store,
    resolve_store,
    set_default_store,
    sim_cache_key,
)
from repro.sim.config import CoreMicroConfig, SimulatedChip
from repro.workloads.gups import GUPS
from repro.workloads.parsec import parsec_like


@pytest.fixture(autouse=True)
def _isolate_default_store(monkeypatch):
    """Each test starts with no default store and no env override."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_default_store(None)
    yield
    set_default_store(None)


# ----- keys ----------------------------------------------------------------
def test_key_is_stable_across_equal_inputs():
    chip = replace(SimulatedChip(), n_cores=2)
    assert sim_cache_key(chip, parsec_like("fluidanimate", n_ops=500), 7) \
        == sim_cache_key(replace(SimulatedChip(), n_cores=2),
                         parsec_like("fluidanimate", n_ops=500), 7)


def test_key_is_sensitive_to_every_input():
    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=500)
    base = sim_cache_key(chip, wl, 7)
    assert sim_cache_key(replace(chip, n_cores=4), wl, 7) != base
    assert sim_cache_key(
        replace(chip, core=CoreMicroConfig(issue_width=2)), wl, 7) != base
    assert sim_cache_key(
        replace(chip, l1=replace(chip.l1, size_kib=64.0)), wl, 7) != base
    assert sim_cache_key(chip, parsec_like("fluidanimate", n_ops=501),
                         7) != base
    assert sim_cache_key(chip, GUPS(updates=500, table_kib=64.0), 7) != base
    assert sim_cache_key(chip, wl, 8) != base


def test_key_folds_in_the_model_version_salt(monkeypatch):
    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=500)
    base = sim_cache_key(chip, wl, 7)
    monkeypatch.setattr("repro.sim.cache_store.SIM_MODEL_VERSION",
                        SIM_MODEL_VERSION + ".bumped")
    assert sim_cache_key(chip, wl, 7) != base


def test_fingerprint_handles_arrays_floats_and_plain_objects():
    assert fingerprint(1.5) == ["f", "1.5"]
    assert fingerprint(np.float64(1.5)) == ["f", "1.5"]
    a = fingerprint(np.arange(4))
    b = fingerprint(np.arange(4))
    assert a == b
    assert fingerprint(np.arange(5)) != a

    class Odd:
        __slots__ = ()
    with pytest.raises(InvalidParameterError, match="cannot fingerprint"):
        fingerprint(Odd())


# ----- store mechanics -----------------------------------------------------
def test_put_get_round_trip_is_exact(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    cost = 0.1 + 0.2  # a float whose repr exposes rounding (0.30000...4)
    key = "ab" + "0" * 62
    store.put(key, cost)
    assert store.get(key) == cost
    # Bypass the memory front: a fresh instance reads from disk.
    assert SimCacheStore(tmp_path / "cache").get(key) == cost


def test_get_miss_and_corrupt_entry(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    key = "cd" + "1" * 62
    assert store.get(key) is None
    path = store.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert store.get(key) is None  # corrupt entry is a plain miss
    assert store.misses == 2


def test_entry_records_provenance(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    key = "ef" + "2" * 62
    store.put(key, 3.25, seed=7, workload="GUPS")
    entry = json.loads(store.path_for(key).read_text())
    assert entry == {"cost": "3.25", "model_version": SIM_MODEL_VERSION,
                     "seed": 7, "workload": "GUPS"}


def test_memory_front_evicts_lru(tmp_path):
    registry = get_registry()
    registry.reset()
    store = SimCacheStore(tmp_path / "cache", memory_entries=2)
    keys = [f"{i:02d}" + "3" * 62 for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, float(i))
    assert len(store._mem) == 2
    assert registry.counter("sim.cache.evictions").value == 1
    # The evicted key still reads (from disk) and every value survives.
    assert [store.get(k) for k in keys] == [0.0, 1.0, 2.0]


def test_stats_and_clear(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    for i in range(3):
        store.put(f"{i:02d}" + "4" * 62, float(i))
    stats = store.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] > 0
    assert stats["model_version"] == SIM_MODEL_VERSION
    assert store.clear() == 3
    assert store.stats()["entries"] == 0
    assert store.get("00" + "4" * 62) is None


def test_pickle_ships_configuration_only(tmp_path):
    store = SimCacheStore(tmp_path / "cache", memory_entries=7)
    store.put("aa" + "5" * 62, 1.5)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.root == store.root
    assert clone.memory_entries == 7
    assert len(clone._mem) == 0          # fresh LRU front
    assert clone.get("aa" + "5" * 62) == 1.5  # disk is shared


def test_concurrent_style_double_put_is_idempotent(tmp_path):
    a = SimCacheStore(tmp_path / "cache")
    b = SimCacheStore(tmp_path / "cache")
    key = "bb" + "6" * 62
    a.put(key, 2.5)
    b.put(key, 2.5)  # second writer replaces atomically with same value
    assert SimCacheStore(tmp_path / "cache").get(key) == 2.5


# ----- default-store resolution -------------------------------------------
def test_resolve_store_modes(tmp_path):
    assert resolve_store(None) is None
    assert resolve_store("default") is None  # no default configured
    store = SimCacheStore(tmp_path / "cache")
    assert resolve_store(store) is store
    made = resolve_store(tmp_path / "other")
    assert isinstance(made, SimCacheStore)
    assert made.root == tmp_path / "other"


def test_default_store_from_env(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "envcache"))
    # Force re-resolution of the (test-isolated) default.
    import repro.sim.cache_store as mod
    mod._default_configured = False
    mod._default_store = None
    store = get_default_store()
    assert store is not None
    assert store.root == tmp_path / "envcache"
    # set_default_store(None) overrides the environment.
    set_default_store(None)
    assert get_default_store() is None


# ----- the cached entry point ---------------------------------------------
def test_cached_simulate_matches_direct_and_skips_resimulation(tmp_path):
    from repro.sim.cmp import simulate_chip_cost

    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=800)
    store = SimCacheStore(tmp_path / "cache")
    registry = get_registry()
    registry.reset()
    cold = cached_simulate_chip_cost(chip, wl, 7, store)
    assert registry.counter("sim.runs").value == 1
    warm = cached_simulate_chip_cost(chip, wl, 7, store)
    assert registry.counter("sim.runs").value == 1  # no new simulation
    direct = simulate_chip_cost(chip, wl, 7)
    assert cold == warm == direct
    assert store.hits == 1 and store.misses == 1


def test_cached_simulate_without_any_store_is_uncached(tmp_path):
    from repro.sim.cmp import simulate_chip_cost

    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=400)
    assert cached_simulate_chip_cost(chip, wl, 7) \
        == simulate_chip_cost(chip, wl, 7)
