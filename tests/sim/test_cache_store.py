"""Unit tests for the persistent content-addressed simulation store."""

from __future__ import annotations

import json
import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.obs import get_registry
from repro.sim.cache_store import (
    ENV_VAR,
    SHARD_COUNT,
    SHARD_PREFIX_LEN,
    SIM_MODEL_VERSION,
    SimCacheStore,
    cached_simulate_chip_cost,
    fingerprint,
    get_default_store,
    resolve_store,
    set_default_store,
    shard_of_key,
    sim_cache_key,
)
from repro.sim.config import CoreMicroConfig, SimulatedChip
from repro.workloads.gups import GUPS
from repro.workloads.parsec import parsec_like


@pytest.fixture(autouse=True)
def _isolate_default_store(monkeypatch):
    """Each test starts with no default store and no env override."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_default_store(None)
    yield
    set_default_store(None)


# ----- keys ----------------------------------------------------------------
def test_key_is_stable_across_equal_inputs():
    chip = replace(SimulatedChip(), n_cores=2)
    assert sim_cache_key(chip, parsec_like("fluidanimate", n_ops=500), 7) \
        == sim_cache_key(replace(SimulatedChip(), n_cores=2),
                         parsec_like("fluidanimate", n_ops=500), 7)


def test_key_is_sensitive_to_every_input():
    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=500)
    base = sim_cache_key(chip, wl, 7)
    assert sim_cache_key(replace(chip, n_cores=4), wl, 7) != base
    assert sim_cache_key(
        replace(chip, core=CoreMicroConfig(issue_width=2)), wl, 7) != base
    assert sim_cache_key(
        replace(chip, l1=replace(chip.l1, size_kib=64.0)), wl, 7) != base
    assert sim_cache_key(chip, parsec_like("fluidanimate", n_ops=501),
                         7) != base
    assert sim_cache_key(chip, GUPS(updates=500, table_kib=64.0), 7) != base
    assert sim_cache_key(chip, wl, 8) != base


def test_key_folds_in_the_model_version_salt(monkeypatch):
    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=500)
    base = sim_cache_key(chip, wl, 7)
    monkeypatch.setattr("repro.sim.cache_store.SIM_MODEL_VERSION",
                        SIM_MODEL_VERSION + ".bumped")
    assert sim_cache_key(chip, wl, 7) != base


def test_fingerprint_handles_arrays_floats_and_plain_objects():
    assert fingerprint(1.5) == ["f", "1.5"]
    assert fingerprint(np.float64(1.5)) == ["f", "1.5"]
    a = fingerprint(np.arange(4))
    b = fingerprint(np.arange(4))
    assert a == b
    assert fingerprint(np.arange(5)) != a

    class Odd:
        __slots__ = ()
    with pytest.raises(InvalidParameterError, match="cannot fingerprint"):
        fingerprint(Odd())


# ----- store mechanics -----------------------------------------------------
def test_put_get_round_trip_is_exact(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    cost = 0.1 + 0.2  # a float whose repr exposes rounding (0.30000...4)
    key = "ab" + "0" * 62
    store.put(key, cost)
    assert store.get(key) == cost
    # Bypass the memory front: a fresh instance reads from disk.
    assert SimCacheStore(tmp_path / "cache").get(key) == cost


def test_get_miss_and_corrupt_entry(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    key = "cd" + "1" * 62
    assert store.get(key) is None
    path = store.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert store.get(key) is None  # corrupt entry is a plain miss
    assert store.misses == 2


def test_entry_records_provenance(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    key = "ef" + "2" * 62
    store.put(key, 3.25, seed=7, workload="GUPS")
    entry = json.loads(store.path_for(key).read_text())
    assert entry == {"cost": "3.25", "model_version": SIM_MODEL_VERSION,
                     "seed": 7, "workload": "GUPS"}


def test_memory_front_evicts_lru(tmp_path):
    registry = get_registry()
    registry.reset()
    store = SimCacheStore(tmp_path / "cache", memory_entries=2)
    keys = [f"{i:02d}" + "3" * 62 for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, float(i))
    assert len(store._mem) == 2
    assert registry.counter("sim.cache.evictions").value == 1
    # The evicted key still reads (from disk) and every value survives.
    assert [store.get(k) for k in keys] == [0.0, 1.0, 2.0]


def test_stats_and_clear(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    for i in range(3):
        store.put(f"{i:02d}" + "4" * 62, float(i))
    stats = store.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] > 0
    assert stats["model_version"] == SIM_MODEL_VERSION
    assert store.clear() == 3
    assert store.stats()["entries"] == 0
    assert store.get("00" + "4" * 62) is None


def test_pickle_ships_configuration_only(tmp_path):
    store = SimCacheStore(tmp_path / "cache", memory_entries=7)
    store.put("aa" + "5" * 62, 1.5)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.root == store.root
    assert clone.memory_entries == 7
    assert len(clone._mem) == 0          # fresh LRU front
    assert clone.get("aa" + "5" * 62) == 1.5  # disk is shared


def test_concurrent_style_double_put_is_idempotent(tmp_path):
    a = SimCacheStore(tmp_path / "cache")
    b = SimCacheStore(tmp_path / "cache")
    key = "bb" + "6" * 62
    a.put(key, 2.5)
    b.put(key, 2.5)  # second writer replaces atomically with same value
    assert SimCacheStore(tmp_path / "cache").get(key) == 2.5


# ----- tiered semantics: shards, write-behind, ownership -------------------
def _k(prefix: str, fill: str = "7") -> str:
    return prefix + fill * (64 - len(prefix))


def test_shard_of_key_matches_path_layout(tmp_path):
    store = SimCacheStore(tmp_path / "cache")
    for prefix in ("00", "ab", "ff"):
        key = _k(prefix)
        shard = shard_of_key(key)
        assert 0 <= shard < SHARD_COUNT
        assert shard == int(prefix, 16)
        assert store.path_for(key).parent.name == key[:SHARD_PREFIX_LEN]


def test_front_hit_vs_disk_hit_accounting(tmp_path):
    registry = get_registry()
    registry.reset()
    store = SimCacheStore(tmp_path / "cache")
    key = _k("aa")
    store.put(key, 1.25)
    assert store.get(key) == 1.25            # served by the memory front
    assert store.front_hits == 1
    assert registry.counter("sim.cache.front_hits").value == 1

    fresh = SimCacheStore(tmp_path / "cache")
    assert fresh.get(key) == 1.25            # disk hit: promotes to front
    assert fresh.front_hits == 0 and fresh.hits == 1
    assert fresh.get(key) == 1.25            # now a front hit
    assert fresh.front_hits == 1
    assert fresh.stats()["disk_hits"] == 1


def test_write_behind_buffers_until_batch_flush(tmp_path):
    registry = get_registry()
    registry.reset()
    store = SimCacheStore(tmp_path / "cache", write_behind=3)
    keys = [_k(f"{i:02d}") for i in range(3)]
    store.put(keys[0], 0.0)
    store.put(keys[1], 1.0)
    # Nothing persisted yet — and the buffered entries still read.
    assert not list(store.root.glob("??/*.json"))
    assert store.stats()["pending_writes"] == 2
    assert store.get(keys[0]) == 0.0
    store.put(keys[2], 2.0)                  # hits the batch size: flush
    assert store.stats()["pending_writes"] == 0
    assert store.flushed == 3
    assert len(list(store.root.glob("??/*.json"))) == 3
    assert registry.counter("sim.cache.stores").value == 3


def test_write_behind_flushes_on_close_and_context_exit(tmp_path):
    key = _k("bb")
    with SimCacheStore(tmp_path / "cache", write_behind=64) as store:
        store.put(key, 4.5, seed=3)
        assert not list(store.root.glob("??/*.json"))
    # Context exit flushed — provenance included.
    entry = json.loads(store.path_for(key).read_text())
    assert entry["cost"] == "4.5" and entry["seed"] == 3
    assert store.close() is None             # idempotent


def test_crash_loses_only_buffered_entries(tmp_path):
    store = SimCacheStore(tmp_path / "cache", write_behind=64)
    store.put(_k("cc"), 1.0)
    del store                                # "crash": no flush ran
    assert SimCacheStore(tmp_path / "cache").get(_k("cc")) in (None, 1.0)


def test_pending_entry_survives_front_eviction(tmp_path):
    store = SimCacheStore(tmp_path / "cache", memory_entries=1,
                          write_behind=64)
    first, second = _k("d0"), _k("d1")
    store.put(first, 1.0)
    store.put(second, 2.0)                   # evicts `first` from the front
    assert first not in store._mem
    # Still answered without file I/O (and re-promoted to the front).
    assert store.get(first) == 1.0
    assert store.front_hits == 1
    assert first in store._mem


def test_owned_shards_enforce_single_writer(tmp_path):
    registry = get_registry()
    registry.reset()
    owned, foreign = _k("ab"), _k("cd")
    store = SimCacheStore(tmp_path / "cache",
                          owned_shards=frozenset({0xAB}))
    store.put(owned, 1.0)
    store.put(foreign, 2.0)                  # denied: memory front only
    assert store.path_for(owned).exists()
    assert not store.path_for(foreign).exists()
    assert store.denied == 1
    assert registry.counter("sim.cache.shard_denied").value == 1
    assert store.stats()["shard_denied"] == 1
    assert store.stats()["owned_shards"] == 1
    # The denied entry still serves this process from the front...
    assert store.get(foreign) == 2.0
    # ...and reads are never restricted: once the true owner persists
    # it, a fresh scoped instance reads it from disk.
    SimCacheStore(tmp_path / "cache",
                  owned_shards=frozenset({0xCD})).put(foreign, 2.0)
    scoped = SimCacheStore(tmp_path / "cache",
                           owned_shards=frozenset({0xAB}))
    assert scoped.get(foreign) == 2.0


def test_scoped_view_shares_root_and_overrides_knobs(tmp_path):
    store = SimCacheStore(tmp_path / "cache", memory_entries=7)
    view = store.scoped(owned_shards=frozenset({1, 2}), write_behind=5)
    assert view.root == store.root
    assert view.memory_entries == 7
    assert view.write_behind == 5
    assert view.owned_shards == frozenset({1, 2})
    # The original is untouched (write-through, unrestricted).
    assert store.write_behind == 0 and store.owned_shards is None
    key = _k("01")
    view.put(key, 3.0)
    view.flush()
    assert store.get(key) == 3.0             # same disk tier


def test_pickle_carries_tier_configuration(tmp_path):
    store = SimCacheStore(tmp_path / "cache", write_behind=9,
                          owned_shards=frozenset({3, 4}))
    store.put(_k("03", "9"), 1.0)            # buffered, never pickled
    clone = pickle.loads(pickle.dumps(store))
    assert clone.write_behind == 9
    assert clone.owned_shards == frozenset({3, 4})
    assert len(clone._pending) == 0


def test_stats_tier_breakdown(tmp_path):
    store = SimCacheStore(tmp_path / "cache", write_behind=2)
    store.put(_k("0a"), 1.0)
    store.put(_k("1b"), 2.0)                 # flush fires (batch of 2)
    store.put(_k("2c"), 3.0)                 # buffered
    store.get(_k("0a"))
    stats = store.stats()
    assert stats["front_capacity"] == store.memory_entries
    assert stats["front_hits"] == 1
    assert stats["disk_hits"] == 0
    assert stats["pending_writes"] == 1
    assert stats["write_behind"] == 2
    assert stats["flushed"] == 2
    assert stats["shards_populated"] == 2
    assert stats["shard_count"] == SHARD_COUNT
    assert stats["owned_shards"] == -1       # unrestricted


def test_quarantine_still_works_with_write_behind(tmp_path):
    store = SimCacheStore(tmp_path / "cache", write_behind=4)
    key = _k("ee")
    path = store.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{torn")
    assert store.get(key) is None
    assert store.corrupt == 1
    assert not path.exists()                 # moved aside
    assert (store.quarantine_dir() / path.name).exists()
    store.put(key, 5.0)
    store.flush()
    assert SimCacheStore(tmp_path / "cache").get(key) == 5.0


def test_invalid_tier_knobs_rejected(tmp_path):
    with pytest.raises(InvalidParameterError):
        SimCacheStore(tmp_path / "c", memory_entries=0)
    with pytest.raises(InvalidParameterError):
        SimCacheStore(tmp_path / "c", write_behind=-1)


# ----- default-store resolution -------------------------------------------
def test_resolve_store_modes(tmp_path):
    assert resolve_store(None) is None
    assert resolve_store("default") is None  # no default configured
    store = SimCacheStore(tmp_path / "cache")
    assert resolve_store(store) is store
    made = resolve_store(tmp_path / "other")
    assert isinstance(made, SimCacheStore)
    assert made.root == tmp_path / "other"


def test_default_store_from_env(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "envcache"))
    # Force re-resolution of the (test-isolated) default.
    import repro.sim.cache_store as mod
    mod._default_configured = False
    mod._default_store = None
    store = get_default_store()
    assert store is not None
    assert store.root == tmp_path / "envcache"
    # set_default_store(None) overrides the environment.
    set_default_store(None)
    assert get_default_store() is None


# ----- the cached entry point ---------------------------------------------
def test_cached_simulate_matches_direct_and_skips_resimulation(tmp_path):
    from repro.sim.cmp import simulate_chip_cost

    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=800)
    store = SimCacheStore(tmp_path / "cache")
    registry = get_registry()
    registry.reset()
    cold = cached_simulate_chip_cost(chip, wl, 7, store)
    assert registry.counter("sim.runs").value == 1
    warm = cached_simulate_chip_cost(chip, wl, 7, store)
    assert registry.counter("sim.runs").value == 1  # no new simulation
    direct = simulate_chip_cost(chip, wl, 7)
    assert cold == warm == direct
    assert store.hits == 1 and store.misses == 1


def test_cached_simulate_without_any_store_is_uncached(tmp_path):
    from repro.sim.cmp import simulate_chip_cost

    chip = replace(SimulatedChip(), n_cores=2)
    wl = parsec_like("fluidanimate", n_ops=400)
    assert cached_simulate_chip_cost(chip, wl, 7) \
        == simulate_chip_cost(chip, wl, 7)
