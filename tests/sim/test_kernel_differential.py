"""Property-based differential wall: kernel ≡ scalar ≡ seed, always.

The golden digests (:mod:`tests.sim.test_differential_golden`) pin nine
hand-picked configurations; this suite closes the gaps between them.
Hypothesis draws small random chips and per-core instruction streams —
including shared writeback-heavy lines that force coherence fallbacks,
and single-entry MSHR geometries that force inline structural stalls —
and asserts that three implementations produce *identical* observables:

- the batched epoch kernel (``use_kernel=True``),
- the scalar event loop (``use_kernel=False``),
- the verbatim seed implementation preserved in
  ``benchmarks/legacy_sim.py``.

Equality is exact (integer cycles, full per-access record tuples, layer
counters, APC, C-AMAT statistics), so any divergence shrinks to a
minimal stream — typically a handful of ops — that reproduces the
disagreement deterministically.
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camat.analyzer import TraceAnalyzer
from repro.sim.cmp import CMPSimulator
from repro.sim.config import CacheConfig, NoCConfig, SimulatedChip

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from legacy_sim import legacy_analysis, legacy_simulate  # noqa: E402

_BASE = SimulatedChip()

# A menu of valid geometries instead of free draws: every entry is a
# legal config, and together they cover the structural extremes — one
# MSHR (inline stall path), one-set caches (constant eviction), a free
# NoC (zero-latency ties), and the default geometry.
_CHIPS = [
    replace(_BASE, n_cores=2),
    replace(_BASE, n_cores=1),
    replace(_BASE, n_cores=2,
            l1=replace(_BASE.l1, size_kib=4.0, mshr_entries=1, banks=1),
            l2_slice=replace(_BASE.l2_slice, size_kib=32.0,
                             mshr_entries=1)),
    replace(_BASE, n_cores=2,
            l1=CacheConfig(size_kib=0.5, assoc=8, banks=1),
            l2_slice=replace(_BASE.l2_slice, size_kib=1.0, assoc=16)),
    replace(_BASE, n_cores=2,
            noc=NoCConfig(hop_latency=0, router_latency=0)),
]

# 48 distinct lines within a few L1 sets: small enough that streams
# collide across cores (coherence traffic) and within a core (capacity
# evictions) even at a few dozen ops.
_LINE_POOL = 48


@st.composite
def _case(draw):
    chip = _CHIPS[draw(st.integers(0, len(_CHIPS) - 1))]
    line_bytes = chip.l1.line_bytes
    streams = []
    for _ in range(chip.n_cores):
        n = draw(st.integers(1, 48))
        lines = draw(st.lists(st.integers(0, _LINE_POOL - 1),
                              min_size=n, max_size=n))
        offsets = draw(st.lists(st.integers(0, line_bytes - 1),
                                min_size=n, max_size=n))
        gaps = draw(st.lists(st.integers(0, 5), min_size=n, max_size=n))
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        addresses = (np.asarray(lines, dtype=np.int64) * line_bytes
                     + np.asarray(offsets, dtype=np.int64))
        streams.append((addresses,
                        np.asarray(gaps, dtype=np.int64),
                        np.asarray(writes, dtype=bool)))
    return chip, streams


def _observables(chip, streams, use_kernel: bool):
    """Every cross-checkable output of one optimized-path run."""
    simulator = CMPSimulator(chip, use_kernel=use_kernel)
    result = simulator.run([(a.copy(), g.copy(), w.copy())
                            for a, g, w in streams])
    return {
        "exec_cycles": result.exec_cycles,
        "records": tuple(c.records for c in result.cores),
        "l1_hits": tuple(c.l1_hits for c in result.cores),
        "l1_misses": tuple(c.l1_misses for c in result.cores),
        "l1_writebacks": result.l1_writebacks,
        "invalidations": result.invalidations,
        "upgrades": result.upgrades,
        "dram_writes": result.dram_writes,
        "layer_stats": simulator.last_layer_stats,
        "layer_apc": result.layer_apc(),
        "core_stats": tuple(result.core_stats(i)
                            for i in range(chip.n_cores)),
    }


@settings(max_examples=40, deadline=None)
@given(_case())
def test_kernel_matches_scalar_loop(case):
    chip, streams = case
    assert (_observables(chip, streams, use_kernel=True)
            == _observables(chip, streams, use_kernel=False))


@settings(max_examples=40, deadline=None)
@given(_case())
def test_kernel_matches_seed_implementation(case):
    chip, streams = case
    ours = _observables(chip, streams, use_kernel=True)
    bundle = legacy_simulate(
        chip, [(a.copy(), g.copy(), w.copy()) for a, g, w in streams])
    legacy = legacy_analysis(bundle)

    assert ours["exec_cycles"] == bundle["exec_cycles"]
    for records, legacy_core in zip(ours["records"], bundle["cores"]):
        assert records == tuple(legacy_core._records)
    assert ours["l1_hits"] == tuple(
        c.l1.hits for c in bundle["cores"])
    assert ours["l1_misses"] == tuple(
        c.l1.misses for c in bundle["cores"])
    assert ours["layer_apc"] == legacy["layer_apc"]
    assert ours["core_stats"] == tuple(legacy["core_stats"])


@settings(max_examples=20, deadline=None)
@given(_case())
def test_analyzer_matches_seed_on_fuzzed_traces(case):
    """The event-sweep analyzer agrees with the seed per-core analysis.

    ``legacy_analysis`` re-built every trace from per-access objects and
    re-analyzed from scratch; the optimized path memoizes columnar
    traces.  Statistics must nonetheless match field-for-field on
    arbitrary fuzzed traces, not just the golden ones.
    """
    chip, streams = case
    result = CMPSimulator(chip, use_kernel=True).run(
        [(a.copy(), g.copy(), w.copy()) for a, g, w in streams])
    analyzer = TraceAnalyzer()
    for core_id in range(chip.n_cores):
        assert (result.core_stats(core_id)
                == analyzer.analyze(result.core_trace(core_id)))
