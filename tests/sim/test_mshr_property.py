"""Property tests: heap-retirement MSHR file vs the dict-scan oracle.

:class:`repro.sim.mshr.MSHRFile` retires entries through a min-heap in
amortized O(log k).  The seed implementation retired by scanning every
live entry — O(k) per call but trivially correct — and is kept here
verbatim as ``DictScanMSHRFile``, the reference oracle.  Randomized
operation sequences (allocate / merge / lookup / outstanding /
earliest_free_time, with non-decreasing *and* repeated timestamps, fill
-time ties and full-file stalls) must drive both implementations through
identical observable behavior: return values, exceptions and the
``stall_events`` / ``primary_misses`` / ``secondary_merges`` counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.sim.mshr import MSHRFile


class DictScanMSHRFile:
    """The seed MSHR implementation (verbatim O(k)-retire dict scan)."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise InvalidParameterError(
                f"MSHR entries must be >= 1, got {entries}")
        self.capacity = entries
        self._pending: dict[int, float] = {}
        self.primary_misses = 0
        self.secondary_merges = 0
        self.stall_events = 0

    def _retire(self, now: float) -> None:
        done = [line for line, t in self._pending.items() if t <= now]
        for line in done:
            del self._pending[line]

    def outstanding(self, now: float) -> int:
        self._retire(now)
        return len(self._pending)

    def lookup(self, line: int, now: float) -> "float | None":
        self._retire(now)
        return self._pending.get(line)

    def earliest_free_time(self, now: float) -> float:
        self._retire(now)
        if len(self._pending) < self.capacity:
            return now
        self.stall_events += 1
        return min(self._pending.values())

    def allocate(self, line: int, fill_time: float, now: float) -> None:
        self._retire(now)
        if line in self._pending:
            raise InvalidParameterError(
                f"line {line} already outstanding; merge instead")
        if len(self._pending) >= self.capacity:
            raise InvalidParameterError("MSHR file full at allocation time")
        self._pending[line] = fill_time
        self.primary_misses += 1

    def merge(self, line: int, now: float) -> float:
        self._retire(now)
        if line not in self._pending:
            raise InvalidParameterError(f"no outstanding miss to line {line}")
        self.secondary_merges += 1
        return self._pending[line]

    def stats(self) -> dict:
        return {"primary_misses": self.primary_misses,
                "secondary_merges": self.secondary_merges,
                "stall_events": self.stall_events}


def _apply(mshr, op: str, line: int, now: float, fill: float):
    """Run one operation; returns (tag, value) capturing the outcome."""
    try:
        if op == "allocate":
            return ("ok", mshr.allocate(line, fill, now))
        if op == "merge":
            return ("ok", mshr.merge(line, now))
        if op == "lookup":
            return ("ok", mshr.lookup(line, now))
        if op == "outstanding":
            return ("ok", mshr.outstanding(now))
        return ("ok", mshr.earliest_free_time(now))
    except InvalidParameterError as err:
        return ("raise", str(err))


def _run_sequence(capacity: int, ops: "list[tuple]") -> None:
    """Drive both implementations through ``ops``; compare every step."""
    fast = MSHRFile(capacity)
    oracle = DictScanMSHRFile(capacity)
    for i, (op, line, now, fill) in enumerate(ops):
        got = _apply(fast, op, line, now, fill)
        want = _apply(oracle, op, line, now, fill)
        assert got == want, f"step {i}: {op}(line={line}, now={now}) " \
                            f"-> {got} but oracle {want}"
        assert fast.stats() == oracle.stats(), f"counters diverged at {i}"


def _sequence_from_seed(seed: int, length: int = 300) -> "list[tuple]":
    """A seeded operation sequence biased toward collisions and stalls.

    Lines are drawn from a tiny pool (forcing duplicate-allocate and
    merge paths), fill times from a coarse grid (forcing
    ``earliest_free_time`` ties), and ``now`` advances non-monotonically
    within a window (replaying the repeated peeks of the event loop).
    """
    gen = np.random.default_rng(seed)
    ops = []
    base = 0.0
    for _ in range(length):
        op = ["allocate", "merge", "lookup", "outstanding",
              "earliest_free_time"][int(gen.integers(0, 5))]
        line = int(gen.integers(0, 6))
        base += float(gen.integers(0, 3))
        # Occasionally re-ask at an *earlier* time inside the window —
        # the simulator peeks several cores at interleaved timestamps.
        now = base - float(gen.integers(0, 2))
        fill = now + float(gen.integers(1, 8))
        ops.append((op, line, max(now, 0.0), fill))
    return ops


@pytest.mark.parametrize("seed", range(12))
def test_randomized_sequences_match_oracle(seed):
    _run_sequence(capacity=4, ops=_sequence_from_seed(seed))


@pytest.mark.parametrize("seed", range(8))
def test_capacity_one_file_matches_oracle(seed):
    # Capacity 1 maximizes full-file stalls and re-allocation churn.
    _run_sequence(capacity=1, ops=_sequence_from_seed(100 + seed))


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=3),
    steps=st.lists(
        st.tuples(
            st.sampled_from(["allocate", "merge", "lookup",
                             "outstanding", "earliest_free_time"]),
            st.integers(min_value=0, max_value=4),   # line
            st.integers(min_value=0, max_value=3),   # time increment
            st.integers(min_value=1, max_value=5),   # fill delta
        ),
        min_size=1, max_size=80),
)
def test_hypothesis_sequences_match_oracle(capacity, steps):
    now = 0.0
    ops = []
    for op, line, dt, dfill in steps:
        now += dt
        ops.append((op, line, now, now + dfill))
    _run_sequence(capacity, ops)


def test_earliest_free_time_tie_prefers_the_shared_minimum():
    """Several entries filling at the same cycle: both report that cycle."""
    fast, oracle = MSHRFile(2), DictScanMSHRFile(2)
    for m in (fast, oracle):
        m.allocate(1, 50.0, 0.0)
        m.allocate(2, 50.0, 0.0)
    assert fast.earliest_free_time(10.0) == oracle.earliest_free_time(10.0) \
        == 50.0
    assert fast.stall_events == oracle.stall_events == 1
    # At the tie's fill time both entries retire together.
    assert fast.outstanding(50.0) == oracle.outstanding(50.0) == 0


def test_reallocating_a_retired_line_is_clean():
    """Heap pairs from a retired generation must not shadow a new entry."""
    fast, oracle = MSHRFile(2), DictScanMSHRFile(2)
    for m in (fast, oracle):
        m.allocate(7, 10.0, 0.0)
        assert m.lookup(7, 10.0) is None      # retired exactly at fill
        m.allocate(7, 30.0, 11.0)             # same line, new generation
        assert m.lookup(7, 11.0) == 30.0
        m.allocate(8, 25.0, 11.0)
        assert m.earliest_free_time(12.0) == 25.0
    assert fast.stats() == oracle.stats()
