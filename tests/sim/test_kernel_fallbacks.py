"""Structural-event coverage: every kernel seam is exercised on purpose.

The epoch kernel fast-paths the common ops and leaves three structural
mechanisms, each pinned here with a workload built to trigger it:

- **Coherence fallbacks** — a write that must invalidate remote sharers
  drops to scalar ``CoreModel.advance`` for that one op
  (``sim.kernel.fallbacks``).  Two cores ping-ponging writes over the
  same lines force many of them.
- **MSHR saturation** — a full MSHR file is handled *inline* (the
  scalar ``earliest_free_time`` stall, reproduced inside the kernel
  loop): a single-entry MSHR under a miss storm must rack up
  ``stall_events`` with *zero* fallbacks.
- **Whole-run bypasses** — SMT and prefetch configurations are
  structurally ineligible and run the scalar loop wholesale
  (``sim.kernel.bypass_runs``).

Each scenario also re-asserts kernel/scalar equality, so the seams
stay bit-exact where they are actually stressed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import get_registry
from repro.sim.cmp import CMPSimulator
from repro.sim.config import CoreMicroConfig, SimulatedChip
from repro.sim.kernel import kernel_eligible

from dataclasses import replace


def _run(chip, streams, use_kernel):
    registry = get_registry()
    registry.reset()
    result = CMPSimulator(chip, use_kernel=use_kernel).run(
        [tuple(col.copy() for col in s) for s in streams])
    counters = {name: registry.counter(name).value
                for name in ("sim.kernel.ops", "sim.kernel.fallbacks",
                             "sim.kernel.epochs", "sim.kernel.bypass_runs",
                             "sim.l1.mshr_stall_events")}
    return result, counters


def _assert_identical(chip, streams):
    """Kernel and scalar runs agree on every observable; returns both."""
    kernel_result, kernel_counters = _run(chip, streams, use_kernel=True)
    scalar_result, scalar_counters = _run(chip, streams, use_kernel=False)
    assert kernel_result.exec_cycles == scalar_result.exec_cycles
    for kernel_core, scalar_core in zip(kernel_result.cores,
                                        scalar_result.cores):
        assert kernel_core.records == scalar_core.records
        assert kernel_core.l1_hits == scalar_core.l1_hits
        assert kernel_core.l1_misses == scalar_core.l1_misses
    assert kernel_result.l1_writebacks == scalar_result.l1_writebacks
    assert kernel_result.invalidations == scalar_result.invalidations
    assert kernel_result.upgrades == scalar_result.upgrades
    assert kernel_result.layer_apc() == scalar_result.layer_apc()
    # The scalar run publishes no kernel.* telemetry at all.
    assert scalar_counters["sim.kernel.ops"] == 0
    assert scalar_counters["sim.kernel.fallbacks"] == 0
    return kernel_result, kernel_counters, scalar_counters


def _streams_from_lines(chip, per_core_lines, *, writes=None, gap=2):
    line_bytes = chip.l1.line_bytes
    streams = []
    for core_id, lines in enumerate(per_core_lines):
        addresses = np.asarray(lines, dtype=np.int64) * line_bytes
        gaps = np.full(len(lines), gap, dtype=np.int64)
        mask = (np.asarray(writes[core_id], dtype=bool)
                if writes is not None
                else np.zeros(len(lines), dtype=bool))
        streams.append((addresses, gaps, mask))
    return streams


def test_coherence_writes_force_fallbacks():
    """Ping-ponged writes over shared lines drop to the scalar path."""
    chip = replace(SimulatedChip(), n_cores=2)
    # Both cores write the same 8 lines over and over: every write hits
    # a line the other core shares, so each must invalidate remotely.
    lines = list(range(8)) * 12
    streams = _streams_from_lines(
        chip, [lines, lines],
        writes=[[True] * len(lines)] * 2)
    result, counters, _ = _assert_identical(chip, streams)
    assert counters["sim.kernel.fallbacks"] > 0
    assert result.invalidations > 0
    assert counters["sim.kernel.bypass_runs"] == 0
    # Fast-path ops + fallbacks account for every memory op.
    total_ops = sum(c.mem_ops for c in result.cores)
    assert (counters["sim.kernel.ops"]
            + counters["sim.kernel.fallbacks"]) == total_ops


def test_mshr_saturation_is_inline_not_a_fallback():
    """A single-entry MSHR under a miss storm stalls without falling back."""
    chip = replace(
        SimulatedChip(), n_cores=1,
        l1=replace(SimulatedChip().l1, size_kib=4.0, mshr_entries=1,
                   banks=1))
    # Read-only strided sweep over far more lines than the L1 holds:
    # every access is a primary miss, and back-to-back misses contend
    # for the one MSHR entry.  No writes and a single core means no
    # coherence event can occur.
    lines = [i * 3 for i in range(300)]
    streams = _streams_from_lines(chip, [lines], gap=0)
    result, counters, scalar_counters = _assert_identical(chip, streams)
    assert counters["sim.l1.mshr_stall_events"] > 0
    assert counters["sim.kernel.fallbacks"] == 0
    assert counters["sim.kernel.ops"] == sum(
        c.mem_ops for c in result.cores)
    # The inline stall reproduces the scalar count exactly.
    assert (counters["sim.l1.mshr_stall_events"]
            == scalar_counters["sim.l1.mshr_stall_events"])


@pytest.mark.parametrize("variant", ["smt", "prefetch"])
def test_ineligible_configs_bypass_wholesale(variant):
    base = SimulatedChip()
    if variant == "smt":
        chip = replace(base, n_cores=1,
                       core=CoreMicroConfig(issue_width=2, rob_size=32,
                                            smt_threads=2))
        n_streams = 2
    else:
        chip = replace(base, n_cores=1,
                       l1=replace(base.l1, prefetch="stride",
                                  prefetch_degree=2))
        n_streams = 1
    assert not kernel_eligible(chip)
    rng = np.random.default_rng(5)
    streams = [(rng.integers(0, 1 << 14, 200).astype(np.int64),
                rng.integers(0, 4, 200).astype(np.int64),
                np.zeros(200, dtype=bool))
               for _ in range(n_streams)]
    # Kernel requested but structurally impossible: the run is counted
    # as a bypass and publishes no per-op kernel telemetry.
    result, counters = _run(chip, streams, use_kernel=True)
    assert counters["sim.kernel.bypass_runs"] == 1
    assert counters["sim.kernel.ops"] == 0
    assert counters["sim.kernel.epochs"] == 0
    assert counters["sim.kernel.fallbacks"] == 0
    # And the bypassed run still equals the explicit scalar run.
    scalar_result, scalar_counters = _run(chip, streams, use_kernel=False)
    assert scalar_counters["sim.kernel.bypass_runs"] == 0
    assert result.exec_cycles == scalar_result.exec_cycles
    for a, b in zip(result.cores, scalar_result.cores):
        assert a.records == b.records


def test_clean_run_has_zero_fallbacks():
    """A read-only, non-shared workload never leaves the fast path."""
    chip = replace(SimulatedChip(), n_cores=2)
    # Disjoint line ranges per core: no sharing, no writes, big L1
    # headroom — the kernel should process every op inline.
    streams = _streams_from_lines(
        chip, [[i % 16 for i in range(200)],
               [100 + (i % 16) for i in range(200)]])
    result, counters, _ = _assert_identical(chip, streams)
    assert counters["sim.kernel.fallbacks"] == 0
    assert counters["sim.kernel.epochs"] > 0
    assert counters["sim.kernel.ops"] == sum(
        c.mem_ops for c in result.cores)
