"""Tests for the set-associative cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig


def make_cache(**kw) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(**kw))


class TestGeometry:
    def test_sets_and_ways(self):
        c = make_cache(size_kib=32.0, assoc=8, line_bytes=64)
        assert c.num_sets == 64
        assert c.assoc == 8

    def test_tiny_cache_clamps(self):
        c = make_cache(size_kib=0.0625, assoc=8, line_bytes=64)  # 1 line
        assert c.num_sets >= 1

    def test_line_and_bank(self):
        c = make_cache(line_bytes=64, banks=4)
        assert c.line_of(129) == 2
        assert c.bank_of(129) == 2 % 4

    def test_negative_address_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_cache().line_of(-1)


class TestHitMissSemantics:
    def test_first_touch_misses_second_hits(self):
        c = make_cache()
        assert not c.access(0x1000)
        assert c.access(0x1000)

    def test_same_line_different_word(self):
        c = make_cache(line_bytes=64)
        c.access(0)
        assert c.access(63)
        assert not c.access(64)

    def test_lru_eviction_order(self):
        # Direct-mapped-like: 2 ways, fill 3 lines of one set.
        c = make_cache(size_kib=0.125, assoc=2, line_bytes=64)  # 2 lines
        sets = c.num_sets
        stride = sets * 64
        a, b, d = 0, stride, 2 * stride  # same set
        c.access(a)
        c.access(b)
        c.access(a)      # a is MRU
        c.access(d)      # evicts b (LRU)
        assert c.access(a)
        assert not c.access(b)

    def test_probe_does_not_fill(self):
        c = make_cache()
        assert not c.probe(0)
        assert not c.access(0)
        assert c.probe(0)

    def test_invalidate(self):
        c = make_cache()
        c.access(0)
        assert c.invalidate(0)
        assert not c.access(0)
        assert not c.invalidate(4096 * 64)

    def test_miss_rate_counter(self):
        c = make_cache()
        for addr in (0, 0, 64, 64):
            c.access(addr)
        assert c.miss_rate == pytest.approx(0.5)
        c.reset_stats()
        assert c.miss_rate == 0.0

    def test_streaming_miss_rate(self):
        # Sequential 8B elements on 64B lines: 1/8 miss rate.
        c = make_cache(size_kib=32.0)
        addrs = np.arange(4096) * 8
        misses = sum(0 if c.access(int(a)) else 1 for a in addrs)
        assert misses == 512

    def test_working_set_larger_than_cache_thrashes(self):
        c = make_cache(size_kib=1.0, assoc=2, line_bytes=64)
        # Cyclic sweep over 4x the capacity: LRU thrashes to ~100% misses.
        lines = 4 * c.num_sets * c.assoc
        for _round in range(3):
            for i in range(lines):
                c.access(i * 64)
        c.reset_stats()
        for i in range(lines):
            c.access(i * 64)
        assert c.miss_rate == 1.0


class TestConfigValidation:
    def test_bad_line_size(self):
        with pytest.raises(InvalidParameterError):
            CacheConfig(line_bytes=48)

    def test_bad_capacity(self):
        with pytest.raises(InvalidParameterError):
            CacheConfig(size_kib=0.0)

    def test_bad_mshr(self):
        with pytest.raises(InvalidParameterError):
            CacheConfig(mshr_entries=0)
