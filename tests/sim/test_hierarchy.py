"""Direct unit tests for the shared memory hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import SimulatedChip
from repro.sim.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(SimulatedChip(n_cores=4))


class TestServiceMiss:
    def test_cold_miss_goes_to_dram(self, hierarchy):
        done = hierarchy.service_miss(0, 0, time=0)
        cfg = hierarchy.chip.l2_slice
        assert done >= cfg.hit_latency + hierarchy.chip.dram.row_miss
        assert hierarchy.l2_accesses == 1
        assert hierarchy.l2_hits == 0
        assert hierarchy.dram.requests == 1

    def test_second_touch_hits_l2(self, hierarchy):
        t1 = hierarchy.service_miss(0, 0, time=0)
        t2 = hierarchy.service_miss(0, 0, time=t1 + 1000)
        assert hierarchy.l2_hits == 1
        # An L2 hit is far cheaper than the DRAM round trip.
        assert (t2 - (t1 + 1000)) < t1

    def test_l2_secondary_merge(self, hierarchy):
        # Two cores miss the same line while the fill is in flight.
        t1 = hierarchy.service_miss(0, 0, time=0)
        hierarchy.service_miss(1, 0, time=5)
        assert hierarchy.dram.requests == 1  # merged, no second DRAM trip

    def test_slice_interleaving(self, hierarchy):
        line_bytes = hierarchy.chip.l2_slice.line_bytes
        homes = {hierarchy.slice_of(line) for line in range(8)}
        assert homes == {0, 1, 2, 3}

    def test_negative_time_rejected(self, hierarchy):
        with pytest.raises(SimulationError):
            hierarchy.service_miss(0, 0, time=-1)

    def test_remote_slice_pays_noc(self, hierarchy):
        # Same line state, different requester distances.
        line_bytes = hierarchy.chip.l2_slice.line_bytes
        # Line homed at slice 3; requester 3 is local, requester 0 remote.
        addr = 3 * line_bytes
        t_local = hierarchy.service_miss(3, addr, time=0)
        t_remote = hierarchy.service_miss(0, addr, time=100000)
        local_latency = t_local - 0
        remote_latency = t_remote - 100000
        assert remote_latency > local_latency - hierarchy.chip.dram.row_miss


class TestWriteback:
    def test_writeback_installs_in_l2(self, hierarchy):
        hierarchy.writeback(0, 0, time=0)
        assert hierarchy.slices[hierarchy.slice_of(0)].probe(0)

    def test_l2_dirty_eviction_writes_dram(self):
        from dataclasses import replace
        chip = SimulatedChip(n_cores=1)
        chip = replace(chip, l2_slice=replace(chip.l2_slice, size_kib=2.0,
                                              assoc=2))
        h = MemoryHierarchy(chip)
        lines = chip.l2_slice.num_lines
        for i in range(3 * lines):
            h.writeback(0, i * 64, time=i * 10)
        assert h.dram_writes > 0


class TestCoherenceDirectory:
    def test_register_l1s_validates_count(self, hierarchy):
        with pytest.raises(SimulationError):
            hierarchy.register_l1s([])

    def test_upgrade_without_registry_is_noop(self, hierarchy):
        assert hierarchy.upgrade(0, 0, time=42) == 42


class TestDeterminism:
    def test_same_seed_same_result(self):
        from repro.sim import CMPSimulator
        from repro.workloads import parsec_like
        wl = parsec_like("ocean", n_ops=3000)
        chip = SimulatedChip(n_cores=2)

        def run():
            rng = np.random.default_rng(77)
            return CMPSimulator(chip).run(wl.streams(2, rng))

        a = run()
        b = run()
        assert a.exec_cycles == b.exec_cycles
        assert a.cores[0].records == b.cores[0].records
        assert a.invalidations == b.invalidations
