"""Tests for the L1 prefetchers and their C-AMAT effect."""

from __future__ import annotations

import numpy as np
import pytest
from dataclasses import replace

from repro.errors import InvalidParameterError
from repro.sim import CMPSimulator, SimulatedChip
from repro.sim.config import CacheConfig
from repro.sim.prefetch import NextLinePrefetcher, StridePrefetcher


def run_stream(addrs, prefetch="none", degree=2, gap=20):
    addrs = np.asarray(addrs, dtype=np.int64)
    gaps = np.full(addrs.size, gap, dtype=np.int64)
    chip = SimulatedChip(n_cores=1)
    chip = replace(chip, l1=replace(chip.l1, prefetch=prefetch,
                                    prefetch_degree=degree,
                                    mshr_entries=8))
    return CMPSimulator(chip).run([(addrs, gaps)])


class TestPrefetcherUnits:
    def test_nextline_targets(self):
        p = NextLinePrefetcher(degree=2)
        assert p.on_miss(10) == [11, 12]
        assert p.on_hit(10) == []
        assert p.issued == 2

    def test_stride_detects_constant_stride(self):
        p = StridePrefetcher(degree=2)
        assert p.on_miss(10) == []           # first touch
        assert p.on_miss(12) == []           # stride learned, conf 0
        targets = p.on_miss(14)              # confirmed
        assert targets == [16, 18]

    def test_stride_resets_on_irregularity(self):
        p = StridePrefetcher(degree=1)
        p.on_miss(10)
        p.on_miss(12)
        p.on_miss(14)
        assert p.on_miss(99) == []  # stride broke

    def test_stride_table_bounded(self):
        p = StridePrefetcher(table_size=4)
        for region in range(10):
            p.on_miss(region << 6)
        assert len(p._table) <= 4

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            NextLinePrefetcher(degree=0)
        with pytest.raises(InvalidParameterError):
            StridePrefetcher(table_size=0)
        with pytest.raises(InvalidParameterError):
            CacheConfig(prefetch="oracle")


class TestPrefetchInSimulator:
    def test_sequential_stream_speeds_up(self):
        # A cold sequential sweep in the latency-bound regime (enough
        # compute between accesses that DRAM bandwidth is not the
        # limiter — where prefetching can help at all).
        addrs = np.arange(2000) * 64 + (1 << 22)
        base = run_stream(addrs, prefetch="none", gap=200)
        pf = run_stream(addrs, prefetch="nextline", degree=4, gap=200)
        assert pf.exec_cycles < base.exec_cycles
        assert pf.cores[0].prefetches_issued > 0

    def test_prefetch_improves_camat(self):
        addrs = np.arange(2000) * 64 + (1 << 22)
        base = run_stream(addrs, prefetch="none", gap=600)
        pf = run_stream(addrs, prefetch="stride", degree=4, gap=600)
        # The stride prefetcher all but eliminates demand misses here.
        assert pf.core_stats(0).camat < 0.5 * base.core_stats(0).camat
        assert pf.cores[0].l1_miss_rate < 0.1

    def test_bandwidth_bound_stream_unaffected(self):
        # Back-to-back misses saturate the DRAM banks: prefetching
        # cannot create bandwidth, so execution time is unchanged.
        addrs = np.arange(2000) * 64 + (1 << 22)
        base = run_stream(addrs, prefetch="none", gap=20)
        pf = run_stream(addrs, prefetch="nextline", gap=20)
        assert pf.exec_cycles == pytest.approx(base.exec_cycles, rel=0.05)

    def test_useful_prefetch_accounting(self):
        addrs = np.arange(2000) * 64
        pf = run_stream(addrs, prefetch="nextline", gap=600)
        core = pf.cores[0]
        assert core.prefetches_useful > 0
        assert core.prefetches_useful <= core.prefetches_issued

    def test_random_stream_not_helped_much(self):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 24, 1500) * 64
        base = run_stream(addrs, prefetch="none")
        pf = run_stream(addrs, prefetch="nextline")
        # Within 25%: useless prefetches must not wreck performance
        # (they only use spare MSHRs).
        assert pf.exec_cycles < base.exec_cycles * 1.25

    def test_fill_does_not_pollute_demand_stats(self):
        addrs = np.arange(1000) * 64
        pf = run_stream(addrs, prefetch="nextline", gap=600)
        core = pf.cores[0]
        assert core.l1_hits + core.l1_misses == core.mem_ops
