"""Tests for the characterization pipeline (APS step 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterize import characterize, fit_g_exponent
from repro.core import C2BoundOptimizer, MachineParameters
from repro.errors import InvalidParameterError
from repro.sim import SimulatedChip
from repro.workloads import TiledMatMul, parsec_like


class TestCharacterize:
    @pytest.fixture(scope="class")
    def report(self):
        return characterize(parsec_like("ocean", n_ops=6000),
                            SimulatedChip(n_cores=2), seed=3)

    def test_profile_fields_populated(self, report):
        p = report.profile
        assert p.name == "ocean"
        assert 0.0 < p.f_mem < 1.0
        assert p.concurrency >= 1.0
        assert p.ic0 > 0
        assert p.base_working_set_kib > 0

    def test_f_mem_close_to_declared(self, report):
        declared = parsec_like("ocean").characteristics().f_mem
        assert report.profile.f_mem == pytest.approx(declared, rel=0.2)

    def test_working_set_measured(self, report):
        # Ocean's declared working set is 8 MiB; the measured footprint
        # of a finite stream is smaller but substantial.
        assert report.working_set_kib > 64.0

    def test_mean_statistics(self, report):
        assert report.mean_concurrency >= 1.0
        assert report.mean_camat > 0

    def test_profile_feeds_optimizer(self, report):
        res = C2BoundOptimizer(report.profile,
                               MachineParameters()).optimize(n_max=64)
        assert res.best.n >= 1

    def test_g_override(self):
        from repro.laws.gfunction import PowerLawG
        report = characterize(parsec_like("blackscholes", n_ops=2000),
                              SimulatedChip(n_cores=1),
                              g=PowerLawG(1.5))
        assert report.profile.g.exponent == 1.5

    def test_kernel_characterization(self):
        report = characterize(TiledMatMul(n=16, tile=4),
                              SimulatedChip(n_cores=2))
        # TMM declares g = N^{3/2}.
        assert report.profile.g.exponent == pytest.approx(1.5)


class TestFitG:
    def test_recovers_power_law(self):
        # W = M^{1.5} exactly.
        g = fit_g_exponent((100.0, 1000.0), (400.0, 8000.0))
        assert g.exponent == pytest.approx(1.5)

    def test_linear(self):
        g = fit_g_exponent((10.0, 50.0), (20.0, 100.0))
        assert g.exponent == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            fit_g_exponent((10.0, 50.0), (10.0, 100.0))
        with pytest.raises(InvalidParameterError):
            fit_g_exponent((10.0, 100.0), (20.0, 50.0))  # work shrank
        with pytest.raises(InvalidParameterError):
            fit_g_exponent((0.0, 1.0), (1.0, 2.0))

    def test_matches_tmm_complexities(self):
        # Memory 3n^2, work 2n^3 at n = 100 and n = 200.
        def mem(n):
            return 3.0 * n * n

        def work(n):
            return 2.0 * n ** 3

        g = fit_g_exponent((mem(100), work(100)), (mem(200), work(200)))
        assert g.exponent == pytest.approx(1.5)
