"""The repo must pass its own linter, and the CLI surfaces must work."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.cli
from repro.analysis import DEFAULT_RULES, lint_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.reporters import REPORT_SCHEMA


@pytest.fixture(scope="module")
def src_dir(repo_root: Path) -> Path:
    return repo_root / "src"


def test_repo_lints_clean(src_dir: Path) -> None:
    result = lint_paths([src_dir])
    assert result.diagnostics == [], "\n".join(
        d.render() for d in result.diagnostics)
    assert result.files_checked > 50


def test_repo_lints_clean_with_flow(src_dir: Path) -> None:
    # The interprocedural C2L2xx rules included (the CI configuration).
    result = lint_paths([src_dir], flow=True)
    assert result.diagnostics == [], "\n".join(
        d.render() for d in result.diagnostics)


def test_lint_cli_exits_zero_on_repo(src_dir: Path, capsys) -> None:
    # The CLI default includes --flow, so this exercises the C2L2xx
    # rules against the real tree as well.
    assert lint_main([str(src_dir)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_c2bound_lint_subcommand_delegates(src_dir: Path, capsys) -> None:
    assert repro.cli.main(["lint", str(src_dir)]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_report_schema(src_dir: Path, capsys) -> None:
    assert lint_main([str(src_dir), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == REPORT_SCHEMA
    assert doc["summary"]["error"] == 0
    assert doc["summary"]["warning"] == 0
    assert doc["files_checked"] > 50
    assert doc["diagnostics"] == []


def test_list_rules_names_every_code(capsys) -> None:
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in DEFAULT_RULES:
        assert rule.code in out


def test_unknown_rule_is_usage_error(src_dir: Path, capsys) -> None:
    assert lint_main([str(src_dir), "--rules", "C2L999"]) == 2
    assert "C2L999" in capsys.readouterr().err


def test_missing_target_is_usage_error(tmp_path: Path, capsys) -> None:
    assert lint_main([str(tmp_path / "nope")]) == 2
