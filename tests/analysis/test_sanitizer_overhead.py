"""Overhead guard for the runtime concurrency sanitizer.

The contract (module docstring of :mod:`repro.analysis.sanitizer`):
disabled, the per-write cost is one cached boolean test — unmeasurable
next to the file I/O it gates.  Like ``tests/obs/test_stream_overhead
.py``, the bound is enforced on the per-operation cost of the added
code itself (a buffered ``put``, a legal ownership check) with a
generous absolute ceiling, not on a ratio of two noisy end-to-end
timings.  The *semantic* half of the guarantee — arming is read once
at construction, never per write — is pinned in ``test_sanitizer.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.sanitizer import ENV_FLAG, ENV_LOG, check_shard_write
from repro.sim.cache_store import SimCacheStore, shard_of_key


def _k(prefix: str, fill: str = "7") -> str:
    return prefix + fill * (64 - len(prefix))


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    monkeypatch.delenv(ENV_LOG, raising=False)


def test_disabled_buffered_put_stays_microseconds(tmp_path):
    # The sanitizer adds zero code to the buffered put path (its check
    # sits in _persist); a regression that leaks per-put work — an env
    # read, a log probe — would blow this ceiling immediately.
    keys = [_k(f"{i % 256:02x}", f"{i % 10:d}") for i in range(2000)]
    best = float("inf")
    for _ in range(3):
        store = SimCacheStore(tmp_path / "cache", write_behind=10 ** 9,
                              memory_entries=4096)
        t0 = time.perf_counter()
        for key in keys:
            store.put(key, 1.0)
        best = min(best, (time.perf_counter() - t0) / len(keys))
    assert best < 50e-6, f"buffered put took {best * 1e6:.1f}us"


def test_armed_legal_check_stays_microseconds():
    # Armed but legal (the common case in a sanitized run): the
    # ownership test itself must stay far below the disk write it
    # precedes.
    store = SimCacheStore.__new__(SimCacheStore)
    store.owned_shards = frozenset(range(64))
    key = _k("03")
    shard = shard_of_key(key)
    reps = 2000
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _i in range(reps):
            check_shard_write(store, key, shard)
        best = min(best, (time.perf_counter() - t0) / reps)
    assert best < 50e-6, f"legal check took {best * 1e6:.1f}us"
