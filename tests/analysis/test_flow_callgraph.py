"""Call-graph construction: aliased imports, re-exports, decorators,
method calls through ``self``, annotation- and attribute-based typing.

One fixture package exercises every resolution path the flow rules lean
on; the assertions pin resolved *edges* (what the rules consume), not
resolver internals.
"""

from __future__ import annotations

import pytest

PKG = {
    "pkg/__init__.py": "",
    "pkg/util.py": '''\
    """Leaf helpers the rest of the fixture package calls into."""


    def helper():
        return 1


    def deco(fn):
        return fn


    class Base:
        def shared(self):
            return helper()


    class Tool(Base):
        def __init__(self):
            self.count = 0

        def run(self):
            return self.shared()
    ''',
    "pkg/api/__init__.py": "from pkg.util import helper as exported\n",
    "pkg/sub/__init__.py": "",
    "pkg/sub/mod.py": '''\
    from ..util import helper as up


    def climb():
        return up()
    ''',
    "pkg/core.py": '''\
    import json

    import pkg.util as u
    from pkg.api import exported

    from . import util
    from .util import Tool, deco


    @deco
    def decorated():
        return util.helper()


    def via_alias():
        return u.helper()


    def via_export():
        return exported()


    def calls_decorated():
        return decorated()


    def opaque(x):
        return json.dumps(x)


    class Engine:
        def __init__(self, tool: "Tool | None" = None):
            self.tool = tool if tool is not None else Tool()

        def tick(self):
            return self.tool.run()

        def poke(self, t: Tool):
            return t.shared()
    ''',
}


@pytest.fixture
def flow(flow_tree):
    _, analysis = flow_tree(PKG)
    return analysis


def test_module_functions_and_methods_indexed(flow):
    quals = set(flow.graph.functions)
    assert {"pkg.util.helper", "pkg.core.decorated", "pkg.util.Tool.run",
            "pkg.core.Engine.tick"} <= quals


def test_relative_import_of_module_resolves(flow):
    # `from . import util` + `util.helper()` inside pkg/core.py
    assert flow.edges["pkg.core.decorated"] == {"pkg.util.helper"}


def test_aliased_absolute_import_resolves(flow):
    # `import pkg.util as u` + `u.helper()`
    assert flow.edges["pkg.core.via_alias"] == {"pkg.util.helper"}


def test_two_level_relative_import_resolves(flow):
    # `from ..util import helper as up` inside pkg/sub/mod.py
    assert flow.graph.modules["pkg.sub.mod"].imports["up"] == \
        "pkg.util.helper"
    assert flow.edges["pkg.sub.mod.climb"] == {"pkg.util.helper"}


def test_package_reexport_resolves(flow):
    # pkg/api/__init__.py re-exports helper under a new name
    assert flow.graph.resolve_export("pkg.api.exported") == \
        "pkg.util.helper"
    assert flow.edges["pkg.core.via_export"] == {"pkg.util.helper"}


def test_decorated_function_keeps_def_site_identity(flow):
    assert "pkg.core.decorated" in flow.graph.functions
    assert flow.edges["pkg.core.calls_decorated"] == {"pkg.core.decorated"}


def test_self_method_call_walks_bases(flow):
    # Tool.run calls self.shared(), defined on Base
    assert flow.edges["pkg.util.Tool.run"] == {"pkg.util.Base.shared"}


def test_attr_type_inferred_through_conditional_ctor(flow):
    # `self.tool = tool if tool is not None else Tool()` with a
    # `Tool | None` parameter annotation: both arms agree.
    engine = flow.graph.classes["pkg.core.Engine"]
    assert engine.attr_types["tool"] == "pkg.util.Tool"
    assert flow.edges["pkg.core.Engine.tick"] == {"pkg.util.Tool.run"}


def test_constructor_call_edges_to_init(flow):
    assert "pkg.util.Tool.__init__" in flow.edges["pkg.core.Engine.__init__"]


def test_annotated_param_method_call_resolves(flow):
    # poke(t: Tool) → t.shared() lands on the base-class method
    assert flow.edges["pkg.core.Engine.poke"] == {"pkg.util.Base.shared"}


def test_unresolvable_call_adds_no_edge(flow):
    # Under-approximation contract: stdlib calls produce no guessed edge.
    assert flow.edges["pkg.core.opaque"] == set()
    assert "json.dumps" in flow.summaries["pkg.core.opaque"].unresolved
