"""C2L001: wall clocks and global/unseeded RNG in deterministic paths."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


def messages(result):
    return " | ".join(d.message for d in result.diagnostics)


def test_wall_clock_flagged(lint_tree):
    result = lint_tree(
        {"sim/a.py": "import time\nT = time.time()\n"}, rules=["C2L001"])
    assert codes(result) == ["C2L001"]


def test_from_import_clock_flagged(lint_tree):
    result = lint_tree(
        {"camat/a.py": "from time import time\nT = time()\n"},
        rules=["C2L001"])
    assert codes(result) == ["C2L001"]


def test_datetime_now_flagged(lint_tree):
    result = lint_tree(
        {"dse/a.py": "import datetime\nT = datetime.datetime.now()\n"},
        rules=["C2L001"])
    assert codes(result) == ["C2L001"]


def test_numpy_global_rng_flagged(lint_tree):
    result = lint_tree(
        {"dse/a.py": "import numpy as np\nX = np.random.rand(4)\n"},
        rules=["C2L001"])
    assert codes(result) == ["C2L001"]
    assert "module-level RNG state" in messages(result)


def test_numpy_seed_call_flagged(lint_tree):
    result = lint_tree(
        {"sim/a.py": "import numpy as np\nnp.random.seed(0)\n"},
        rules=["C2L001"])
    assert codes(result) == ["C2L001"]


def test_unseeded_default_rng_flagged(lint_tree):
    result = lint_tree(
        {"dse/a.py": "import numpy as np\nRNG = np.random.default_rng()\n"},
        rules=["C2L001"])
    assert codes(result) == ["C2L001"]
    assert "unseeded" in messages(result)


def test_stdlib_random_flagged(lint_tree):
    result = lint_tree(
        {"sim/a.py": "import random\nX = random.randint(0, 9)\n"},
        rules=["C2L001"])
    assert codes(result) == ["C2L001"]


def test_unseeded_stdlib_random_instance_flagged(lint_tree):
    result = lint_tree(
        {"sim/a.py": "import random\nR = random.Random()\n"},
        rules=["C2L001"])
    assert codes(result) == ["C2L001"]


def test_seeded_idioms_allowed(lint_tree):
    source = """\
    import random
    import time

    import numpy as np


    def run(seed):
        rng = np.random.default_rng(seed)
        rng2 = np.random.default_rng(seed=seed)
        r = random.Random(1234)
        t0 = time.perf_counter()
        return rng, rng2, r, t0
    """
    result = lint_tree({"dse/a.py": source}, rules=["C2L001"])
    assert codes(result) == []


def test_out_of_scope_modules_ignored(lint_tree):
    # The obs layer legitimately reads wall clocks for trace timestamps.
    result = lint_tree(
        {"obs/a.py": "import time\nT = time.time()\n"}, rules=["C2L001"])
    assert codes(result) == []
