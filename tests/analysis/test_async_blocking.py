"""C2L205: no blocking calls inside coroutine bodies of the service."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


def messages(result):
    return " | ".join(d.message for d in result.diagnostics)


def test_time_sleep_in_coroutine_flagged(lint_tree):
    source = """\
    import time


    async def handler():
        time.sleep(0.1)
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == ["C2L205"]
    assert "run_in_executor" in messages(result)


def test_open_and_aliased_import_flagged(lint_tree):
    source = """\
    from time import sleep as snooze


    async def handler():
        snooze(1)
        with open("x") as fh:
            fh.read()
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == ["C2L205", "C2L205"]


def test_future_result_wait_flagged(lint_tree):
    source = """\
    async def handler(pool):
        fut = pool.submit(len, "x")
        return fut.result()
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == ["C2L205"]
    assert "pool future" in messages(result)


def test_pathlib_io_flagged(lint_tree):
    source = """\
    from pathlib import Path


    async def handler(path: Path):
        path.parent.mkdir(parents=True, exist_ok=True)
        return path.read_text()
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == ["C2L205", "C2L205"]


def test_subprocess_and_os_flagged(lint_tree):
    source = """\
    import os
    import subprocess


    async def handler():
        subprocess.run(["true"])
        os.replace("a", "b")
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == ["C2L205", "C2L205"]


def test_sync_function_not_flagged(lint_tree):
    source = """\
    import time
    from pathlib import Path


    def helper(path: Path):
        time.sleep(0.1)
        return path.read_text()
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == []


def test_nested_sync_def_is_executor_domain(lint_tree):
    source = """\
    import asyncio


    async def handler(path):
        def blocking_read():
            with open(path) as fh:
                return fh.read()

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, blocking_read)
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == []


def test_nested_lambda_exempt(lint_tree):
    source = """\
    async def handler(loop, path):
        return await loop.run_in_executor(
            None, lambda: open(path).read())
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == []


def test_nested_async_def_still_checked(lint_tree):
    source = """\
    import time


    async def outer():
        async def inner():
            time.sleep(1)
        await inner()
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == ["C2L205"]


def test_str_replace_not_flagged(lint_tree):
    # .replace/.open are deliberately outside the method blocklist:
    # str.replace would drown the signal in false positives.
    source = """\
    async def handler(name: str):
        return name.replace("-", "_")
    """
    result = lint_tree({"service/a.py": source}, rules=["C2L205"])
    assert codes(result) == []


def test_out_of_scope_module_ignored(lint_tree):
    source = """\
    import time


    async def handler():
        time.sleep(1.0)
    """
    result = lint_tree({"dse/a.py": source}, rules=["C2L205"])
    assert codes(result) == []


def test_src_tree_is_clean(repo_root):
    from repro.analysis import lint_paths

    result = lint_paths([repo_root / "src"], rules=["C2L205"])
    assert codes(result) == []
