"""Runtime concurrency sanitizer: arming, finding records, and the
store/fabric integration path.

The acceptance scenario lives here: a foreign-shard entry smuggled
directly into the write-behind buffer (bypassing ``put``'s ownership
gate) must surface as a ``foreign-shard-write`` finding naming the
shard and the worker slot.
"""

from __future__ import annotations

import json
import pickle
from types import SimpleNamespace

import pytest

from repro.analysis.sanitizer import (ENV_FLAG, ENV_LOG, SANITIZE_SCHEMA,
                                      check_shard_write, load_findings,
                                      record_finding, sanitize_enabled,
                                      sanitize_log_path)
from repro.obs import get_registry
from repro.sim.cache_store import SimCacheStore, shard_of_key


def _k(prefix: str, fill: str = "7") -> str:
    return prefix + fill * (64 - len(prefix))


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Isolate every test from the session's sanitizer environment
    (``pytest --sanitize`` arms it globally)."""
    monkeypatch.delenv(ENV_FLAG, raising=False)
    monkeypatch.delenv(ENV_LOG, raising=False)


# ---- environment parsing ----------------------------------------------------


def test_disabled_by_default():
    assert sanitize_enabled() is False
    assert sanitize_log_path() is None


@pytest.mark.parametrize("value,armed", [
    ("1", True), ("yes", True), ("0", False), ("", False),
])
def test_env_flag_parsing(monkeypatch, value, armed):
    monkeypatch.setenv(ENV_FLAG, value)
    assert sanitize_enabled() is armed


# ---- record_finding ---------------------------------------------------------


def test_record_finding_counts_and_logs(monkeypatch, tmp_path):
    log = tmp_path / "findings.jsonl"
    monkeypatch.setenv(ENV_LOG, str(log))
    counter = get_registry().counter("analysis.sanitize.findings")
    before = counter.value
    record = record_finding("foreign-shard-write", shard=3, key="abc")
    assert counter.value == before + 1
    assert record["schema"] == SANITIZE_SCHEMA
    assert record["kind"] == "foreign-shard-write"
    [line] = log.read_text().splitlines()
    assert json.loads(line) == record


def test_record_finding_without_log_still_counts():
    counter = get_registry().counter("analysis.sanitize.findings")
    before = counter.value
    record_finding("foreign-shard-write", shard=1)
    assert counter.value == before + 1


def test_record_finding_swallows_log_errors(monkeypatch, tmp_path):
    # An unwritable log (here: a directory) must not raise — the
    # sanitizer observes, it never crashes the observed code.
    monkeypatch.setenv(ENV_LOG, str(tmp_path))
    record_finding("foreign-shard-write", shard=1)


def test_load_findings_missing_file_is_empty(tmp_path):
    assert load_findings(tmp_path / "nope.jsonl") == []


# ---- check_shard_write ------------------------------------------------------


def _stub_store(owned):
    return SimpleNamespace(owned_shards=owned, root="/cache",
                           sanitize_slot=4)


def test_check_passes_unrestricted_and_owned_writes():
    assert check_shard_write(_stub_store(None), _k("03"), 3) is None
    assert check_shard_write(_stub_store(frozenset({3})),
                             _k("03"), 3) is None


def test_check_flags_foreign_write():
    finding = check_shard_write(_stub_store(frozenset({1, 2})),
                                _k("ff"), 255)
    assert finding is not None
    assert finding["kind"] == "foreign-shard-write"
    assert finding["shard"] == 255
    assert finding["owned_shards"] == [1, 2]
    assert finding["slot"] == 4
    assert finding["store_root"] == "/cache"


# ---- store integration ------------------------------------------------------


@pytest.fixture
def armed(monkeypatch, tmp_path):
    log = tmp_path / "findings.jsonl"
    monkeypatch.setenv(ENV_FLAG, "1")
    monkeypatch.setenv(ENV_LOG, str(log))
    return log


def test_denied_put_produces_no_finding(armed, tmp_path):
    # put() refuses foreign shards before the choke point, so the legal
    # path never trips the sanitizer.
    owned_key, foreign_key = _k("03"), _k("ff")
    store = SimCacheStore(tmp_path / "cache", write_behind=8,
                          owned_shards=frozenset({shard_of_key(owned_key)}))
    store.put(owned_key, 1.0)
    store.put(foreign_key, 2.0)
    store.flush()
    assert store.denied == 1
    assert load_findings(armed) == []


def test_injected_foreign_write_is_detected_with_shard_and_slot(
        armed, tmp_path):
    owned_key, foreign_key = _k("03"), _k("ff")
    store = SimCacheStore(tmp_path / "cache", write_behind=8,
                          owned_shards=frozenset({shard_of_key(owned_key)}))
    store.sanitize_slot = 7
    # Smuggle a foreign entry past put()'s ownership gate, the way a
    # scoping regression would.
    store._pending[foreign_key] = (2.0, {})
    store.flush()
    [finding] = load_findings(armed)
    assert finding["kind"] == "foreign-shard-write"
    assert finding["shard"] == shard_of_key(foreign_key) == 255
    assert finding["slot"] == 7
    assert finding["key"] == foreign_key
    assert finding["owned_shards"] == [shard_of_key(owned_key)]
    assert finding["schema"] == SANITIZE_SCHEMA


def test_pickle_roundtrip_keeps_slot_and_rearms(armed, tmp_path,
                                                monkeypatch):
    store = SimCacheStore(tmp_path / "cache",
                          owned_shards=frozenset({3}))
    store.sanitize_slot = 5
    clone = pickle.loads(pickle.dumps(store))
    assert clone.sanitize_slot == 5
    assert clone._sanitize is True
    # Unpickling re-reads the environment (workers inherit it), so a
    # disarmed process yields a disarmed clone.
    monkeypatch.delenv(ENV_FLAG)
    cold = pickle.loads(pickle.dumps(store))
    assert cold.sanitize_slot == 5
    assert cold._sanitize is False


def test_arming_is_read_at_construction(monkeypatch, tmp_path):
    # A store built disarmed stays disarmed: no per-write env reads.
    foreign_key = _k("ff")
    store = SimCacheStore(tmp_path / "cache", write_behind=8,
                          owned_shards=frozenset({3}))
    assert store._sanitize is False
    log = tmp_path / "late.jsonl"
    monkeypatch.setenv(ENV_FLAG, "1")
    monkeypatch.setenv(ENV_LOG, str(log))
    store._pending[foreign_key] = (2.0, {})
    store.flush()
    assert load_findings(log) == []


def test_fabric_stamps_slot_on_scoped_stores(armed, tmp_path):
    from repro.dse.fabric import FabricEvaluator, owned_shards_of

    inner = SimpleNamespace(cache=SimCacheStore(tmp_path / "cache"),
                            evaluate=lambda config: 0.0)
    fabric = FabricEvaluator(inner, workers=2, write_behind=4)
    view = fabric._slot_evaluator(1)
    assert view.cache.sanitize_slot == 1
    assert view.cache.owned_shards == owned_shards_of(1, fabric.workers)
    assert view.cache._sanitize is True
