"""SARIF output: document shape, level mapping, region clamping."""

from __future__ import annotations

import json

from repro.analysis.cli import main
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import LintResult
from repro.analysis.reporters import SARIF_VERSION, render_sarif

BAD_CLOCK = """\
import time


def now():
    return time.time()
"""


def _result():
    return LintResult(diagnostics=[
        Diagnostic(path="sim/a.py", line=5, col=4, code="C2L001",
                   severity=Severity.ERROR, message="bad clock"),
        Diagnostic(path="sim/b.py", line=0, col=0, code="C2L000",
                   severity=Severity.ERROR, message="file unreadable"),
        Diagnostic(path="sim/c.py", line=3, col=0, code="C2L104",
                   severity=Severity.WARNING, message="unpicklable"),
    ], files_checked=3)


def test_sarif_document_shape():
    doc = json.loads(render_sarif(_result()))
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "c2bound-lint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == \
        ["C2L000", "C2L001", "C2L104"]
    assert len(run["results"]) == 3


def test_sarif_level_mapping_and_locations():
    results = json.loads(render_sarif(_result()))["runs"][0]["results"]
    by_rule = {r["ruleId"]: r for r in results}
    assert by_rule["C2L001"]["level"] == "error"
    assert by_rule["C2L104"]["level"] == "warning"
    location = by_rule["C2L001"]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "sim/a.py"
    assert location["region"] == {"startLine": 5, "startColumn": 5}


def test_sarif_clamps_file_level_findings_to_line_one():
    # C2L000 findings sit at line 0; SARIF requires startLine >= 1.
    results = json.loads(render_sarif(_result()))["runs"][0]["results"]
    unreadable = next(r for r in results if r["ruleId"] == "C2L000")
    region = unreadable["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 1


def test_cli_reporter_sarif_emits_parseable_json(tmp_path, capsys):
    target = tmp_path / "sim"
    target.mkdir()
    (target / "clock.py").write_text(BAD_CLOCK)
    code = main([str(tmp_path), "--root", str(tmp_path),
                 "--rules", "C2L001", "--reporter", "sarif"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"][0]["ruleId"] == "C2L001"
