"""C2L004: pool-crossing callables must be module-level."""

from __future__ import annotations

HEADER = "from concurrent.futures import ProcessPoolExecutor\n\n\n"


def codes(result):
    return [d.code for d in result.diagnostics]


def messages(result):
    return " | ".join(d.message for d in result.diagnostics)


def test_lambda_submission_flagged(lint_tree):
    source = HEADER + (
        "def run(pool, xs):\n"
        "    return [pool.submit(lambda x: x + 1, x) for x in xs]\n")
    result = lint_tree({"dse/a.py": source}, rules=["C2L004"])
    assert codes(result) == ["C2L004"]
    assert "lambda" in messages(result)


def test_nested_def_submission_flagged(lint_tree):
    source = HEADER + (
        "def run(pool, xs):\n"
        "    def work(x):\n"
        "        return x + 1\n"
        "    return [pool.submit(work, x) for x in xs]\n")
    result = lint_tree({"dse/a.py": source}, rules=["C2L004"])
    assert codes(result) == ["C2L004"]
    assert "closure" in messages(result)


def test_module_level_function_allowed(lint_tree):
    source = HEADER + (
        "def work(x):\n"
        "    return x + 1\n\n\n"
        "def run(pool, xs):\n"
        "    return [pool.submit(work, x) for x in xs]\n")
    result = lint_tree({"dse/a.py": source}, rules=["C2L004"])
    assert codes(result) == []


def test_pool_map_with_lambda_flagged(lint_tree):
    source = HEADER + (
        "def run(pool, xs):\n"
        "    return list(pool.map(lambda x: x * 2, xs))\n")
    result = lint_tree({"dse/a.py": source}, rules=["C2L004"])
    assert codes(result) == ["C2L004"]


def test_files_without_pools_are_ignored(lint_tree):
    # .map on arbitrary objects is not a pool submission unless the
    # module touches concurrent.futures/multiprocessing.
    source = "def run(frame):\n    return frame.map(lambda x: x * 2)\n"
    result = lint_tree({"dse/a.py": source}, rules=["C2L004"])
    assert codes(result) == []
