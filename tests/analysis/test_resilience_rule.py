"""C2L006: injectable sleeps and deterministic jitter in retry paths."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


def messages(result):
    return " | ".join(d.message for d in result.diagnostics)


def test_direct_sleep_flagged_in_resilience(lint_tree):
    result = lint_tree(
        {"resilience/a.py": "import time\ntime.sleep(1.0)\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]
    assert "injectable hook" in messages(result)


def test_direct_sleep_flagged_in_dse(lint_tree):
    result = lint_tree(
        {"dse/a.py": "import time\ntime.sleep(0.1)\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]


def test_from_import_sleep_flagged(lint_tree):
    result = lint_tree(
        {"resilience/a.py": "from time import sleep\nsleep(2)\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]


def test_asyncio_sleep_flagged(lint_tree):
    result = lint_tree(
        {"dse/a.py":
         "import asyncio\n\n\nasync def f():\n    await asyncio.sleep(1)\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]


def test_default_parameter_reference_allowed(lint_tree):
    source = """\
    import time
    from typing import Callable


    def retry(sleep: Callable[[float], None] = time.sleep) -> None:
        sleep(0.5)
    """
    result = lint_tree({"resilience/a.py": source}, rules=["C2L006"])
    assert codes(result) == []


def test_injected_hook_call_allowed(lint_tree):
    source = """\
    class Waiter:
        def __init__(self, sleep):
            self._sleep = sleep

        def wait(self, s):
            self._sleep(s)
    """
    result = lint_tree({"resilience/a.py": source}, rules=["C2L006"])
    assert codes(result) == []


def test_global_stdlib_rng_flagged_in_resilience(lint_tree):
    result = lint_tree(
        {"resilience/a.py": "import random\nJ = random.random()\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]
    assert "deterministic_unit" in messages(result)


def test_unseeded_random_instance_flagged(lint_tree):
    result = lint_tree(
        {"resilience/a.py": "import random\nR = random.Random()\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]


def test_unseeded_default_rng_flagged(lint_tree):
    result = lint_tree(
        {"resilience/a.py":
         "import numpy as np\nRNG = np.random.default_rng()\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]


def test_numpy_global_state_flagged(lint_tree):
    result = lint_tree(
        {"resilience/a.py": "import numpy as np\nX = np.random.rand()\n"},
        rules=["C2L006"])
    assert codes(result) == ["C2L006"]


def test_rng_in_dse_left_to_c2l001(lint_tree):
    # Inside dse/, RNG misuse is C2L001's finding; C2L006 stays silent
    # so one offense yields one diagnostic.
    files = {"dse/a.py": "import random\nX = random.random()\n"}
    assert codes(lint_tree(files, rules=["C2L006"])) == []
    both = lint_tree(files, rules=["C2L001", "C2L006"])
    assert codes(both) == ["C2L001"]


def test_seeded_idioms_allowed(lint_tree):
    source = """\
    import random

    import numpy as np


    def jitter(seed, attempt):
        rng = np.random.default_rng(seed)
        r = random.Random(seed)
        return rng.uniform() + r.random()
    """
    result = lint_tree({"resilience/a.py": source}, rules=["C2L006"])
    assert codes(result) == []


def test_out_of_scope_module_ignored(lint_tree):
    result = lint_tree(
        {"sim/a.py": "import time\ntime.sleep(1.0)\n"}, rules=["C2L006"])
    assert codes(result) == []


def test_src_tree_is_clean(repo_root):
    from repro.analysis import lint_paths

    result = lint_paths([repo_root / "src"], rules=["C2L006"])
    assert codes(result) == []
