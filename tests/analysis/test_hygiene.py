"""C2L101/C2L102/C2L103: bare except, mutable defaults, missing __all__."""

from __future__ import annotations

from repro.analysis import Severity


def codes(result):
    return [d.code for d in result.diagnostics]


def test_bare_except_flagged(lint_tree):
    source = "def f():\n    try:\n        g()\n    except:\n        pass\n"
    result = lint_tree({"pkg/a.py": source}, rules=["C2L101"])
    assert codes(result) == ["C2L101"]


def test_typed_except_allowed(lint_tree):
    source = ("def f():\n    try:\n        g()\n"
              "    except (OSError, ValueError):\n        pass\n")
    result = lint_tree({"pkg/a.py": source}, rules=["C2L101"])
    assert codes(result) == []


def test_mutable_default_literal_flagged(lint_tree):
    source = "def f(xs=[]):\n    return xs\n"
    result = lint_tree({"pkg/a.py": source}, rules=["C2L102"])
    assert codes(result) == ["C2L102"]


def test_mutable_default_constructor_flagged(lint_tree):
    source = "def f(*, table=dict()):\n    return table\n"
    result = lint_tree({"pkg/a.py": source}, rules=["C2L102"])
    assert codes(result) == ["C2L102"]


def test_none_default_allowed(lint_tree):
    source = "def f(xs=None, n=3, name='x'):\n    return xs, n, name\n"
    result = lint_tree({"pkg/a.py": source}, rules=["C2L102"])
    assert codes(result) == []


def test_missing_all_flagged_as_warning(lint_tree):
    source = "def api():\n    return 1\n"
    result = lint_tree({"pkg/a.py": source}, rules=["C2L103"])
    assert codes(result) == ["C2L103"]
    assert result.diagnostics[0].severity is Severity.WARNING


def test_declared_all_allowed(lint_tree):
    source = "__all__ = ['api']\n\n\ndef api():\n    return 1\n"
    result = lint_tree({"pkg/a.py": source}, rules=["C2L103"])
    assert codes(result) == []


def test_private_only_module_allowed(lint_tree):
    source = "def _helper():\n    return 1\n"
    result = lint_tree({"pkg/a.py": source}, rules=["C2L103"])
    assert codes(result) == []


def test_main_module_exempt(lint_tree):
    source = "def main():\n    return 0\n"
    result = lint_tree({"pkg/__main__.py": source}, rules=["C2L103"])
    assert codes(result) == []
