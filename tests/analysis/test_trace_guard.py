"""C2L005: AccessTrace columns are immutable outside their owner."""

from __future__ import annotations


def codes(result):
    return [d.code for d in result.diagnostics]


def test_direct_column_assignment_flagged(lint_tree):
    source = "def bad(trace):\n    trace.starts = None\n"
    result = lint_tree({"camat/a.py": source}, rules=["C2L005"])
    assert codes(result) == ["C2L005"]


def test_subscript_column_write_flagged(lint_tree):
    source = "def bad(trace):\n    trace.hit_ends[0] = 7\n"
    result = lint_tree({"camat/a.py": source}, rules=["C2L005"])
    assert codes(result) == ["C2L005"]


def test_augmented_column_write_flagged(lint_tree):
    source = "def bad(trace):\n    trace.miss_penalties += 1\n"
    result = lint_tree({"camat/a.py": source}, rules=["C2L005"])
    assert codes(result) == ["C2L005"]


def test_self_owned_columns_allowed(lint_tree):
    source = (
        "class Recorder:\n"
        "    def __init__(self, n):\n"
        "        self.starts = [0] * n\n"
        "    def record(self, i, t):\n"
        "        self.starts[i] = t\n")
    result = lint_tree({"sim/a.py": source}, rules=["C2L005"])
    assert codes(result) == []


def test_defining_module_is_exempt(lint_tree):
    source = "def _init(trace, starts):\n    trace.starts = starts\n"
    result = lint_tree({"camat/trace.py": source}, rules=["C2L005"])
    assert codes(result) == []


def test_unrelated_attributes_allowed(lint_tree):
    source = "def ok(obj):\n    obj.start = 3\n    obj.begins = []\n"
    result = lint_tree({"camat/a.py": source}, rules=["C2L005"])
    assert codes(result) == []
