"""The C2L2xx interprocedural rules: bad fixtures, clean fixtures, and
seeded mutations of the real tree.

Each rule gets a minimal fixture package that violates exactly its
invariant plus a clean counterpart; the mutation tests then re-lint the
actual ``src/`` tree with one regression spliced in, proving the rules
fire on the real fabric/simulator code and not just on toy layouts.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintEngine
from repro.analysis.rules import make_rules
from repro.analysis.source import load_project


def codes(result):
    return [d.code for d in result.diagnostics]


# ---- C2L201: single-writer discipline ---------------------------------------

STORE_MODULE = '''\
class SimCacheStore:
    def __init__(self):
        self._mem = {}

    def scoped(self, **kwargs):
        return self

    def put(self, key, cost):
        self._mem[key] = cost

    def flush(self):
        return 0
'''

BAD_RUNNER = '''\
from concurrent.futures import ProcessPoolExecutor

from fab.store import SimCacheStore


def _work(evaluator, items):
    evaluator.cache.put("k", 1.0)
    return items


def _slot_view(evaluator):
    evaluator.cache = evaluator.cache.scoped(write_behind=4)
    return evaluator


def run(pool, evaluator, items):
    return pool.submit(_work, _slot_view(evaluator), items)
'''

GOOD_RUNNER = '''\
from concurrent.futures import ProcessPoolExecutor

from fab.store import SimCacheStore


def _work(evaluator, items):
    return [evaluator.run(c) for c in items]


def _slot_view(evaluator):
    evaluator.cache = evaluator.cache.scoped(
        owned_shards=frozenset({0}), write_behind=4)
    return evaluator


def run(pool, evaluator, items):
    return pool.submit(_work, _slot_view(evaluator), items)
'''


def test_c2l201_flags_unscoped_views_and_worker_writes(lint_tree):
    result = lint_tree({"fab/__init__.py": "",
                        "fab/store.py": STORE_MODULE,
                        "fab/runner.py": BAD_RUNNER},
                       rules=["C2L201"])
    assert codes(result) == ["C2L201"] * 3
    messages = " | ".join(d.message for d in result.diagnostics)
    assert ".scoped() without owned_shards=" in messages
    assert "cache assigned without owned_shards scoping" in messages
    assert "direct .put() in pool-worker code" in messages
    assert "_work runs inside a worker" in messages


def test_c2l201_clean_on_scoped_views(lint_tree):
    result = lint_tree({"fab/__init__.py": "",
                        "fab/store.py": STORE_MODULE,
                        "fab/runner.py": GOOD_RUNNER},
                       rules=["C2L201"])
    assert codes(result) == []


def test_c2l201_ignores_modules_without_a_store(lint_tree):
    # Same submit shape, but the module never touches a SimCacheStore:
    # the rule's scope test must keep it out.
    runner = BAD_RUNNER.replace("from fab.store import SimCacheStore\n", "")
    result = lint_tree({"fab/__init__.py": "", "fab/runner.py": runner},
                       rules=["C2L201"])
    assert codes(result) == []


# ---- C2L202: cross-boundary escape ------------------------------------------

BAD_JOBS = '''\
from concurrent.futures import ProcessPoolExecutor

SHARED = {}


def work(x):
    return x


def tally(x):
    global SHARED
    SHARED["x"] = x
    return x


class Runner:
    def evaluate(self, x):
        return x

    def launch(self, pool):
        pool.submit(work, lambda: 2)
        pool.submit(self.evaluate, 1)
        pool.submit(work, SHARED)
        pool.submit(tally, 3)
'''

GOOD_JOBS = '''\
from concurrent.futures import ProcessPoolExecutor

_TRACER = None


def work(x):
    return x


def get_tracer():
    global _TRACER
    if _TRACER is None:
        _TRACER = object()
    return _TRACER


def launch(pool, payload):
    pool.submit(work, payload)
    pool.submit(get_tracer)
'''


def test_c2l202_flags_every_escape_kind(lint_tree):
    result = lint_tree({"esc/__init__.py": "", "esc/jobs.py": BAD_JOBS},
                       rules=["C2L202"])
    assert codes(result) == ["C2L202"] * 4
    messages = " | ".join(d.message for d in result.diagnostics)
    assert "lambda crosses the pool boundary" in messages
    assert "bound method Runner.evaluate crosses the pool boundary" \
        in messages
    assert "mutable module global 'SHARED' crosses the pool boundary" \
        in messages
    assert "module global 'SHARED' written in pool-worker code" in messages


def test_c2l202_allows_plain_args_and_singleton_init(lint_tree):
    # get_tracer() writes _TRACER, but the lazy-singleton idiom
    # (get_* prefix + private global) is exempt.
    result = lint_tree({"esc/__init__.py": "", "esc/jobs.py": GOOD_JOBS},
                       rules=["C2L202"])
    assert codes(result) == []


# ---- C2L203: hot-path purity ------------------------------------------------

BAD_CORE = '''\
TICKS = 0


class CoreModel:
    def advance(self, horizon):
        self._bump()
        return self._step(horizon)

    def _step(self, horizon):
        self._lock.acquire()
        log(horizon)
        return horizon

    def _bump(self):
        global TICKS
        TICKS += 1


def log(value):
    print(value)
'''

GOOD_CORE = '''\
class CoreModel:
    def advance(self, horizon):
        return self._step(horizon)

    def _step(self, horizon):
        return horizon * 2
'''


def test_c2l203_flags_impurity_reachable_from_hot_roots(lint_tree):
    result = lint_tree({"hot/__init__.py": "", "hot/sim/__init__.py": "",
                        "hot/sim/core.py": BAD_CORE},
                       rules=["C2L203"])
    assert codes(result) == ["C2L203"] * 3
    messages = " | ".join(d.message for d in result.diagnostics)
    assert "writes module global 'TICKS'" in messages
    assert "performs I/O: print()" in messages
    assert "takes a lock: .acquire()" in messages
    # Every diagnostic names the hot root the offender is reachable from.
    assert all("reachable from hot.sim.core.CoreModel.advance" in d.message
               for d in result.diagnostics)


def test_c2l203_clean_on_pure_hot_path(lint_tree):
    result = lint_tree({"hot/__init__.py": "", "hot/sim/__init__.py": "",
                        "hot/sim/core.py": GOOD_CORE},
                       rules=["C2L203"])
    assert codes(result) == []


def test_c2l203_ignores_same_code_off_the_hot_roots(lint_tree):
    # An identically impure class that is not a hot root stays silent.
    source = BAD_CORE.replace("class CoreModel:", "class Helper:")
    result = lint_tree({"hot/__init__.py": "", "hot/sim/__init__.py": "",
                        "hot/sim/core.py": source},
                       rules=["C2L203"])
    assert codes(result) == []


# ---- C2L204: front-tier hit discipline --------------------------------------

BAD_TIERS_DIRECT = '''\
from collections import OrderedDict


class _Span:
    def span(self, name):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def get_tracer():
    return _Span()


class TieredStore:
    def __init__(self):
        self._mem = OrderedDict()

    def get(self, key):
        mem = self._mem
        if key in mem:
            with get_tracer().span("hit"):
                return mem[key]
        return None
'''

BAD_TIERS_TRANSITIVE = '''\
from collections import OrderedDict


class TieredStore:
    def __init__(self):
        self._mem = OrderedDict()

    def get(self, key):
        if key in self._mem:
            self._note(key)
            return self._mem[key]
        return None

    def _note(self, key):
        with open("/tmp/x", "a") as fh:
            fh.write(key)
'''

GOOD_TIERS = '''\
from collections import OrderedDict


class TieredStore:
    def __init__(self):
        self._mem = OrderedDict()

    def get(self, key):
        mem = self._mem
        if key in mem:
            mem.move_to_end(key)
            return mem[key]
        with open(key) as fh:  # the miss path may touch disk
            return fh.read()
'''


def test_c2l204_flags_span_in_hit_branch(lint_tree):
    result = lint_tree({"tiers/__init__.py": "",
                        "tiers/store.py": BAD_TIERS_DIRECT},
                       rules=["C2L204"])
    assert codes(result) == ["C2L204"]
    assert "tracing span inside the front-tier hit branch" in \
        result.diagnostics[0].message


def test_c2l204_flags_transitive_io_from_hit_branch(lint_tree):
    result = lint_tree({"tiers/__init__.py": "",
                        "tiers/store.py": BAD_TIERS_TRANSITIVE},
                       rules=["C2L204"])
    assert codes(result) == ["C2L204"]
    message = result.diagnostics[0].message
    assert "reaches disk I/O (open())" in message
    assert "_note" in message


def test_c2l204_hit_branch_check_is_branch_local(lint_tree):
    # I/O on the miss path is legal; only the membership-guarded hit
    # branch is constrained.
    result = lint_tree({"tiers/__init__.py": "",
                        "tiers/store.py": GOOD_TIERS},
                       rules=["C2L204"])
    assert codes(result) == []


# ---- seeded mutations of the real tree --------------------------------------


def _mutated_lint(repo_root, rel_suffix, anchor, replacement):
    """Re-lint ``src/`` with one regression spliced into a real file."""
    project = load_project([repo_root / "src"], root=repo_root)
    source = next(s for s in project.files
                  if s.path.as_posix().endswith(rel_suffix))
    assert anchor in source.text, \
        f"mutation anchor no longer present in {rel_suffix}"
    source.text = source.text.replace(anchor, replacement, 1)
    source.tree = ast.parse(source.text)
    return LintEngine(make_rules(None, flow=True)).run_project(project)


def _findings(result, code):
    return [d for d in result.diagnostics if d.code == code]


def test_mutation_unscoped_slot_store_fires_c2l201(repo_root):
    result = _mutated_lint(
        repo_root, "repro/dse/fabric.py",
        "                owned_shards=owned_shards_of(slot, self.workers),"
        "\n", "")
    found = _findings(result, "C2L201")
    assert found, codes(result)
    assert any("_slot_evaluator" in d.message
               and "fabric.py" in d.path for d in found)


def test_mutation_lambda_in_submit_fires_c2l202(repo_root):
    result = _mutated_lint(
        repo_root, "repro/dse/fabric.py",
        "                                  [configs[i] for i in indices])",
        "                                  [configs[i] for i in indices],"
        " (lambda: None))")
    found = _findings(result, "C2L202")
    assert found, codes(result)
    assert any("lambda crosses the pool boundary" in d.message
               for d in found)


def test_mutation_print_in_core_step_fires_c2l203(repo_root):
    result = _mutated_lint(
        repo_root, "repro/sim/core.py",
        "        self._next = j + 1\n        idx = self._instr_list[j]",
        "        self._next = j + 1\n        print(j)\n"
        "        idx = self._instr_list[j]")
    found = _findings(result, "C2L203")
    assert found, codes(result)
    assert any("performs I/O: print()" in d.message
               and "core.py" in d.path for d in found)


def test_mutation_span_in_front_hit_fires_c2l204(repo_root):
    result = _mutated_lint(
        repo_root, "repro/sim/cache_store.py",
        "            mem.move_to_end(key)\n            self.hits += 1",
        "            get_tracer().span(\"sim.cache.hit\")\n"
        "            mem.move_to_end(key)\n            self.hits += 1")
    found = _findings(result, "C2L204")
    assert found, codes(result)
    assert any("tracing span inside the front-tier hit branch" in d.message
               and "cache_store.py" in d.path for d in found)


def test_mutation_span_in_remember_fires_c2l204_transitively(repo_root):
    # The span lands in _remember, which the pending-promotion hit
    # branch of get() calls — the rule must walk the call edge.
    result = _mutated_lint(
        repo_root, "repro/sim/cache_store.py",
        "    def _remember(self, key: str, cost: float) -> None:\n"
        "        mem = self._mem",
        "    def _remember(self, key: str, cost: float) -> None:\n"
        "        get_tracer().span(\"sim.cache.remember\")\n"
        "        mem = self._mem")
    found = _findings(result, "C2L204")
    assert found, codes(result)
    assert any("reaches a tracing span" in d.message
               and "_remember" in d.message for d in found)
