"""Fixtures for the static-analysis tests.

``lint_tree`` writes a throwaway file tree and lints it with a chosen
rule subset, so each rule's good/bad fixtures stay small and isolated
from the other rules (a fixture triggering C2L001 should not also have
to satisfy C2L103).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import LintResult, lint_paths
from repro.analysis.flow import get_flow
from repro.analysis.source import load_project


@pytest.fixture
def lint_tree(tmp_path):
    """``run(files, rules=[...])`` → LintResult over a temp tree."""

    def run(files: "dict[str, str]", *, rules=None,
            catalog: "str | None" = None) -> LintResult:
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        catalog_path = tmp_path / catalog if catalog else None
        return lint_paths([tmp_path], rules=rules, root=tmp_path,
                          catalog=catalog_path)

    run.root = tmp_path
    return run


@pytest.fixture
def flow_tree(tmp_path):
    """``build(files)`` → (Project, FlowAnalysis) over a temp tree."""

    def build(files: "dict[str, str]"):
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        project = load_project([tmp_path], root=tmp_path)
        return project, get_flow(project)

    build.root = tmp_path
    return build


@pytest.fixture(scope="session")
def repo_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parents[2]
