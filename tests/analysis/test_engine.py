"""Engine behavior: suppressions, syntax errors, ordering, exit codes."""

from __future__ import annotations

import pytest

from repro.analysis import Severity, lint_paths
from repro.analysis.reporters import render_json, render_text
from repro.errors import AnalysisError

BAD_CLOCK = """\
import time


def now():
    return time.time(){suffix}
"""


def codes(result):
    return [d.code for d in result.diagnostics]


def test_finding_reported(lint_tree):
    result = lint_tree({"sim/clock.py": BAD_CLOCK.format(suffix="")},
                       rules=["C2L001"])
    assert codes(result) == ["C2L001"]
    diag = result.diagnostics[0]
    assert diag.line == 5 and "time.time" in diag.message
    assert result.exit_code() == 1


def test_line_suppression(lint_tree):
    source = BAD_CLOCK.format(suffix="  # c2lint: disable=C2L001")
    result = lint_tree({"sim/clock.py": source}, rules=["C2L001"])
    assert codes(result) == []
    assert result.suppressed == 1
    assert result.exit_code() == 0


def test_disable_all_suppression(lint_tree):
    source = BAD_CLOCK.format(suffix="  # c2lint: disable=all")
    result = lint_tree({"sim/clock.py": source}, rules=["C2L001"])
    assert codes(result) == [] and result.suppressed == 1


def test_file_wide_suppression(lint_tree):
    source = "# c2lint: disable-file=C2L001\n" + BAD_CLOCK.format(suffix="")
    result = lint_tree({"sim/clock.py": source}, rules=["C2L001"])
    assert codes(result) == [] and result.suppressed == 1


def test_suppression_is_per_rule(lint_tree):
    # A C2L999 suppression must not hide a C2L001 finding.
    source = BAD_CLOCK.format(suffix="  # c2lint: disable=C2L999")
    result = lint_tree({"sim/clock.py": source}, rules=["C2L001"])
    assert codes(result) == ["C2L001"]


def test_syntax_error_is_a_finding_not_a_crash(lint_tree):
    result = lint_tree({"sim/broken.py": "def f(:\n"}, rules=["C2L001"])
    assert codes(result) == ["C2L000"]
    assert result.diagnostics[0].severity is Severity.ERROR


def test_unreadable_file_names_the_os_error(tmp_path, monkeypatch):
    # chmod tricks don't work for root, so deny the read directly.
    from pathlib import Path

    target = tmp_path / "sim" / "locked.py"
    target.parent.mkdir(parents=True)
    target.write_text("X = 1\n")
    (tmp_path / "sim" / "ok.py").write_text("Y = 2\n")
    real_read_text = Path.read_text

    def deny(self, *args, **kwargs):
        if self == target:
            raise PermissionError(13, "Permission denied")
        return real_read_text(self, *args, **kwargs)

    monkeypatch.setattr(Path, "read_text", deny)
    result = lint_paths([tmp_path], rules=["C2L001"], root=tmp_path)
    [diag] = result.diagnostics
    assert diag.code == "C2L000"
    assert diag.severity is Severity.ERROR
    assert diag.path == "sim/locked.py"
    assert diag.line == 0 and diag.col == 0
    assert "file unreadable (PermissionError)" in diag.message
    assert "Permission denied" in diag.message
    # The rest of the tree is still checked.
    assert result.files_checked == 2


def test_diagnostics_sorted_by_location(lint_tree):
    source = "import time\n\n\ndef f():\n    a = time.time()\n    b = time.time()\n    return a, b\n"
    result = lint_tree({"sim/a.py": source, "sim/b.py": source},
                       rules=["C2L001"])
    locations = [(d.path, d.line) for d in result.diagnostics]
    assert locations == sorted(locations)


def test_reporters_render(lint_tree):
    import json

    result = lint_tree({"sim/clock.py": BAD_CLOCK.format(suffix="")},
                       rules=["C2L001"])
    text = render_text(result)
    assert "sim/clock.py:5" in text and "C2L001" in text
    doc = json.loads(render_json(result))
    assert doc["schema"] == "c2bound.lint/1"
    assert doc["summary"]["error"] == 1
    assert doc["diagnostics"][0]["code"] == "C2L001"


def test_clean_run_summary(lint_tree):
    result = lint_tree({"sim/ok.py": "X = 1\n"}, rules=["C2L001"])
    assert result.diagnostics == []
    assert "clean" in render_text(result)


def test_unknown_rule_rejected(tmp_path):
    (tmp_path / "x.py").write_text("X = 1\n")
    with pytest.raises(AnalysisError, match="unknown rule"):
        lint_paths([tmp_path], rules=["C2L777"], root=tmp_path)


def test_missing_target_rejected(tmp_path):
    with pytest.raises(AnalysisError, match="does not exist"):
        lint_paths([tmp_path / "nope"], root=tmp_path)


def test_severity_parse():
    assert Severity.parse("ERROR") is Severity.ERROR
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")
