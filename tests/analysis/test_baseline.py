"""Finding baselines: write/load/apply semantics and the CLI flags."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (BASELINE_SCHEMA, apply_baseline,
                                     load_baseline, write_baseline)
from repro.analysis.cli import main
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import LintResult
from repro.errors import AnalysisError

BAD_CLOCK = """\
import time


def now():
    return time.time()
"""


def _diag(path="sim/a.py", line=5, code="C2L001",
          message="non-deterministic call") -> Diagnostic:
    return Diagnostic(path=path, line=line, col=4, code=code,
                      severity=Severity.ERROR, message=message)


def test_write_then_load_roundtrips(tmp_path):
    result = LintResult(diagnostics=[_diag(), _diag(line=9)])
    path = tmp_path / "base.json"
    assert write_baseline(result, path) == 2
    doc = json.loads(path.read_text())
    assert doc["schema"] == BASELINE_SCHEMA
    counts = load_baseline(path)
    assert counts[("sim/a.py", "C2L001", "non-deterministic call")] == 2


def test_apply_is_line_insensitive(tmp_path):
    path = tmp_path / "base.json"
    write_baseline(LintResult(diagnostics=[_diag(line=5)]), path)
    # The same finding drifted to another line: still baselined.
    shifted = LintResult(diagnostics=[_diag(line=42)])
    filtered, matched = apply_baseline(shifted, load_baseline(path))
    assert matched == 1
    assert filtered.diagnostics == []


def test_apply_is_a_multiset(tmp_path):
    path = tmp_path / "base.json"
    write_baseline(LintResult(diagnostics=[_diag()]), path)
    # Two identical findings against a baseline of one: one survives.
    doubled = LintResult(diagnostics=[_diag(line=5), _diag(line=9)])
    filtered, matched = apply_baseline(doubled, load_baseline(path))
    assert matched == 1
    assert len(filtered.diagnostics) == 1


def test_apply_keeps_new_findings(tmp_path):
    path = tmp_path / "base.json"
    write_baseline(LintResult(diagnostics=[_diag()]), path)
    mixed = LintResult(diagnostics=[_diag(), _diag(code="C2L101",
                                                   message="other")])
    filtered, matched = apply_baseline(mixed, load_baseline(path))
    assert matched == 1
    assert [d.code for d in filtered.diagnostics] == ["C2L101"]


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(AnalysisError, match="cannot read baseline"):
        load_baseline(tmp_path / "nope.json")


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps({"schema": "something/9", "findings": []}))
    with pytest.raises(AnalysisError, match="unexpected schema"):
        load_baseline(path)


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "base.json"
    path.write_text("{not json")
    with pytest.raises(AnalysisError, match="not valid JSON"):
        load_baseline(path)


# ---- CLI --------------------------------------------------------------------


@pytest.fixture
def dirty_tree(tmp_path):
    target = tmp_path / "sim"
    target.mkdir()
    (target / "clock.py").write_text(BAD_CLOCK)
    return tmp_path


def _cli(dirty_tree, *extra):
    return main([str(dirty_tree), "--root", str(dirty_tree),
                 "--rules", "C2L001", "--no-flow", *extra])


def test_cli_baseline_workflow(dirty_tree, tmp_path, capsys):
    base = tmp_path / "findings.json"
    assert _cli(dirty_tree) == 1
    assert _cli(dirty_tree, "--write-baseline", str(base)) == 0
    assert "baseline with 1 finding(s)" in capsys.readouterr().out
    # Baselined: the same findings no longer fail the run.
    assert _cli(dirty_tree, "--baseline", str(base)) == 0
    assert "1 baselined finding(s) suppressed" in capsys.readouterr().err
    # A new finding still fails, and is the only one reported.
    (dirty_tree / "sim" / "fresh.py").write_text(BAD_CLOCK)
    assert _cli(dirty_tree, "--baseline", str(base)) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out and "clock.py" not in out


def test_cli_bad_baseline_is_a_usage_error(dirty_tree, tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert _cli(dirty_tree, "--baseline", str(missing)) == 2
    assert "cannot read baseline" in capsys.readouterr().err
