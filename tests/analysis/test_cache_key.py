"""C2L002: cache-key completeness against the FINGERPRINT_SCHEMA manifest."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.sim import cache_store

GOOD_CONFIG = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class ChipConfig:
    n_cores: int = 4
    size_kib: float = 32.0
"""

GOOD_STORE = """\
import hashlib
from dataclasses import fields

SIM_MODEL_VERSION = "1"

FINGERPRINT_SCHEMA = {
    "ChipConfig": ("n_cores", "size_kib"),
}

SHARD_PREFIX_LEN = 2
SHARD_COUNT = 256


def fingerprint(obj):
    return sorted(str(f.name) for f in fields(obj))


def sim_cache_key(obj):
    return hashlib.sha256(repr(fingerprint(obj)).encode()).hexdigest()


def shard_of_key(key):
    return int(key[:SHARD_PREFIX_LEN], 16)


class SimCacheStore:
    def path_for(self, key):
        return key[:SHARD_PREFIX_LEN] + "/" + key + ".json"
"""

GOOD_EVALUATE = """\
def canonical_key(config):
    return tuple(sorted(config.items()))
"""


def codes(result):
    return [d.code for d in result.diagnostics]


def messages(result):
    return " | ".join(d.message for d in result.diagnostics)


def test_aligned_schema_is_clean(lint_tree):
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": GOOD_STORE,
         "dse/evaluate.py": GOOD_EVALUATE},
        rules=["C2L002"])
    assert codes(result) == []


def test_new_field_drift_detected(lint_tree):
    drifted = GOOD_CONFIG.replace(
        "size_kib: float = 32.0",
        "size_kib: float = 32.0\n    voltage: float = 1.0")
    result = lint_tree(
        {"sim/config.py": drifted, "sim/cache_store.py": GOOD_STORE},
        rules=["C2L002"])
    assert codes(result) == ["C2L002"]
    assert "voltage" in messages(result)
    assert "SIM_MODEL_VERSION" in messages(result)


def test_new_dataclass_drift_detected(lint_tree):
    drifted = GOOD_CONFIG + (
        "\n\n@dataclass(frozen=True)\nclass NoCConfig:\n    hops: int = 2\n")
    result = lint_tree(
        {"sim/config.py": drifted, "sim/cache_store.py": GOOD_STORE},
        rules=["C2L002"])
    assert codes(result) == ["C2L002"]
    assert "NoCConfig" in messages(result)


def test_stale_schema_field_detected(lint_tree):
    stale = GOOD_STORE.replace('("n_cores", "size_kib")',
                               '("n_cores", "size_kib", "ghost")')
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": stale},
        rules=["C2L002"])
    assert codes(result) == ["C2L002"]
    assert "ghost" in messages(result)


def test_missing_schema_detected(lint_tree):
    no_schema = GOOD_STORE.replace("FINGERPRINT_SCHEMA", "OTHER_NAME")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": no_schema},
        rules=["C2L002"])
    assert "must declare a FINGERPRINT_SCHEMA" in messages(result)


def test_computed_model_version_detected(lint_tree):
    computed = GOOD_STORE.replace('SIM_MODEL_VERSION = "1"',
                                  'SIM_MODEL_VERSION = str(1)')
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": computed},
        rules=["C2L002"])
    assert "literal string" in messages(result)


def test_fingerprint_losing_fields_walk_detected(lint_tree):
    broken = GOOD_STORE.replace(
        "return sorted(str(f.name) for f in fields(obj))",
        "return sorted(obj.__dict__)")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": broken},
        rules=["C2L002"])
    assert "dataclasses.fields" in messages(result)


def test_unsorted_canonical_key_detected(lint_tree):
    unsorted = GOOD_EVALUATE.replace("sorted(config.items())",
                                     "config.items()")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": GOOD_STORE,
         "dse/evaluate.py": unsorted},
        rules=["C2L002"])
    assert "canonical_key" in messages(result)


def test_computed_shard_prefix_detected(lint_tree):
    computed = GOOD_STORE.replace("SHARD_PREFIX_LEN = 2",
                                  "SHARD_PREFIX_LEN = 1 + 1")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": computed},
        rules=["C2L002"])
    assert "SHARD_PREFIX_LEN must be a literal int" in messages(result)


def test_shard_count_prefix_mismatch_detected(lint_tree):
    drifted = GOOD_STORE.replace("SHARD_COUNT = 256", "SHARD_COUNT = 64")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": drifted},
        rules=["C2L002"])
    assert "16 ** 2" in messages(result)


def test_shard_of_key_hardcoded_width_detected(lint_tree):
    magic = GOOD_STORE.replace("int(key[:SHARD_PREFIX_LEN], 16)",
                               "int(key[:2], 16)")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": magic},
        rules=["C2L002"])
    assert "no longer references SHARD_PREFIX_LEN" in messages(result)


def test_shard_of_key_non_hex_parse_detected(lint_tree):
    broken = GOOD_STORE.replace("int(key[:SHARD_PREFIX_LEN], 16)",
                                "hash(key[:SHARD_PREFIX_LEN])")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": broken},
        rules=["C2L002"])
    assert "int(..., 16)" in messages(result)


def test_non_hex_cache_key_detected(lint_tree):
    non_hex = GOOD_STORE.replace(
        "hashlib.sha256(repr(fingerprint(obj)).encode()).hexdigest()",
        "str(hash(repr(fingerprint(obj))))")
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": non_hex},
        rules=["C2L002"])
    assert "sha256" in messages(result)


def test_path_for_magic_width_detected(lint_tree):
    magic = GOOD_STORE.replace(
        'key[:SHARD_PREFIX_LEN] + "/" + key + ".json"',
        'key[:2] + "/" + key + ".json"')
    result = lint_tree(
        {"sim/config.py": GOOD_CONFIG, "sim/cache_store.py": magic},
        rules=["C2L002"])
    assert "path_for() must slice" in messages(result)


def test_runtime_shard_constants_consistent():
    assert cache_store.SHARD_COUNT == 16 ** cache_store.SHARD_PREFIX_LEN


def test_partial_tree_skips_cleanly(lint_tree):
    # Linting a tree without the cache modules must not fabricate findings.
    result = lint_tree({"pkg/misc.py": "X = 1\n"}, rules=["C2L002"])
    assert codes(result) == []


# ----- runtime twin -------------------------------------------------------

def test_runtime_schema_verifies_against_live_dataclasses():
    cache_store.verify_fingerprint_schema()


def test_runtime_schema_detects_drift(monkeypatch):
    drifted = dict(cache_store.FINGERPRINT_SCHEMA)
    drifted["SimulatedChip"] = drifted["SimulatedChip"][:-1]  # drop "noc"
    monkeypatch.setattr(cache_store, "FINGERPRINT_SCHEMA", drifted)
    with pytest.raises(InvalidParameterError, match="noc"):
        cache_store.verify_fingerprint_schema()
