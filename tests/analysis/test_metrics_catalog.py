"""C2L003: metric literals in code vs the documented catalog."""

from __future__ import annotations

from repro.analysis.rules.metrics_catalog import catalog_metric_names

CATALOG = """\
# Observability

## Metric catalog

| Metric | Meaning |
| --- | --- |
| `dse.evaluations` | fresh evaluations |
| `dse.evaluations{method=aps\\|ann}` | the same, per method |
| `fig12.{aps,ann}_sims` | bar heights |
| `sim.runs` | completed runs |

## Span catalog

`sim.run` spans are not metrics.
"""

CODE_OK = """\
from repro.obs import get_registry

registry = get_registry()
registry.counter("dse.evaluations").inc()
registry.counter("dse.evaluations", method="aps").inc()
registry.gauge("fig12.aps_sims").set(1)
registry.gauge("fig12.ann_sims").set(2)


def publish(name, value):
    registry.counter(f"sim.{name}").inc(value)
"""


def codes(result):
    return [d.code for d in result.diagnostics]


def messages(result):
    return " | ".join(d.message for d in result.diagnostics)


def test_catalog_extraction_expands_and_strips():
    names = catalog_metric_names(CATALOG)
    assert "dse.evaluations" in names
    assert "fig12.aps_sims" in names and "fig12.ann_sims" in names
    assert "sim.runs" in names
    # Span-catalog names are out of section, dotted-or-not.
    assert "sim.run" not in names


def test_matching_code_and_catalog_is_clean(lint_tree):
    result = lint_tree(
        {"obs/code.py": CODE_OK, "docs/OBSERVABILITY.md": CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert codes(result) == []


def test_undocumented_metric_flagged(lint_tree):
    code = CODE_OK + 'registry.counter("dse.rogue_metric").inc()\n'
    result = lint_tree(
        {"obs/code.py": code, "docs/OBSERVABILITY.md": CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert codes(result) == ["C2L003"]
    assert "dse.rogue_metric" in messages(result)
    assert result.diagnostics[0].path.endswith("code.py")


def test_documented_but_unpublished_metric_flagged(lint_tree):
    catalog = CATALOG.replace(
        "| `sim.runs` | completed runs |",
        "| `sim.runs` | completed runs |\n| `dse.phantom` | gone |")
    result = lint_tree(
        {"obs/code.py": CODE_OK, "docs/OBSERVABILITY.md": catalog},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert codes(result) == ["C2L003"]
    assert "dse.phantom" in messages(result)
    assert result.diagnostics[0].path.endswith("OBSERVABILITY.md")


def test_dynamic_prefix_covers_documented_namespace(lint_tree):
    # `sim.runs` has no literal call site, but f"sim.{name}" publishes
    # the namespace dynamically — documented names under it are fine.
    result = lint_tree(
        {"obs/code.py": CODE_OK, "docs/OBSERVABILITY.md": CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert codes(result) == []


def test_metric_keyword_literal_is_checked(lint_tree):
    code = 'def note(**kw):\n    pass\n\n\nnote(metric="dse.unknown", value=1)\n'
    result = lint_tree(
        {"obs/code.py": code, "docs/OBSERVABILITY.md": CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert "dse.unknown" in messages(result)


def test_no_catalog_no_findings(lint_tree):
    result = lint_tree({"obs/code.py": CODE_OK}, rules=["C2L003"])
    assert codes(result) == []


# ---------------------------------------------------------------------------
# Profiler anchors: PROFILE_SCHEMA / PROFILE_BUCKETS vs the bucket catalog


BUCKET_CATALOG = CATALOG + """
The profile artifact is tagged `c2bound.profile/1`.

## Profile bucket catalog

| Bucket | Span names |
| --- | --- |
| `simulation` | `sim.run` |
| `framework` | catch-all |
"""

PROFILE_OK = '''\
PROFILE_SCHEMA = "c2bound.profile/1"
PROFILE_BUCKETS = {
    "simulation": ("sim.run",),
    "framework": (),
}
'''


def test_catalog_bucket_names_scope_and_shape():
    from repro.analysis.rules.metrics_catalog import catalog_bucket_names
    names = catalog_bucket_names(BUCKET_CATALOG)
    assert set(names) == {"simulation", "framework"}
    # Dotted tokens in the section are span prefixes, not buckets;
    # metric-catalog names are out of section entirely.
    assert "sim.run" not in names
    assert "dse.evaluations" not in names


def test_matching_profile_anchors_are_clean(lint_tree):
    result = lint_tree(
        {"obs/code.py": CODE_OK,
         "obs/profile.py": PROFILE_OK,
         "docs/OBSERVABILITY.md": BUCKET_CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert codes(result) == []


def test_undocumented_schema_flagged(lint_tree):
    catalog = BUCKET_CATALOG.replace("`c2bound.profile/1`", "(no tag)")
    result = lint_tree(
        {"obs/code.py": CODE_OK,
         "obs/profile.py": PROFILE_OK,
         "docs/OBSERVABILITY.md": catalog},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert codes(result) == ["C2L003"]
    assert "c2bound.profile/1" in messages(result)


def test_non_literal_schema_flagged(lint_tree):
    code = PROFILE_OK.replace(
        'PROFILE_SCHEMA = "c2bound.profile/1"',
        'PROFILE_SCHEMA = "c2bound.profile/" + "1"')
    result = lint_tree(
        {"obs/code.py": CODE_OK,
         "obs/profile.py": code,
         "docs/OBSERVABILITY.md": BUCKET_CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert "literal string" in messages(result)


def test_undocumented_bucket_flagged(lint_tree):
    code = PROFILE_OK.replace(
        '"framework": (),',
        '"framework": (),\n    "mystery": ("x.",),')
    result = lint_tree(
        {"obs/code.py": CODE_OK,
         "obs/profile.py": code,
         "docs/OBSERVABILITY.md": BUCKET_CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert "mystery" in messages(result)
    assert result.diagnostics[0].path.endswith("profile.py")


def test_phantom_documented_bucket_flagged(lint_tree):
    catalog = BUCKET_CATALOG + "| `phantom` | vanished |\n"
    result = lint_tree(
        {"obs/code.py": CODE_OK,
         "obs/profile.py": PROFILE_OK,
         "docs/OBSERVABILITY.md": catalog},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert "phantom" in messages(result)
    assert result.diagnostics[0].path.endswith("OBSERVABILITY.md")


def test_missing_buckets_literal_flagged(lint_tree):
    result = lint_tree(
        {"obs/code.py": CODE_OK,
         "obs/profile.py": 'PROFILE_SCHEMA = "c2bound.profile/1"\n',
         "docs/OBSERVABILITY.md": BUCKET_CATALOG},
        rules=["C2L003"], catalog="docs/OBSERVABILITY.md")
    assert "PROFILE_BUCKETS" in messages(result)


def test_real_tree_profile_anchors_are_clean(lint_tree, repo_root):
    # The shipped profile module against the shipped catalog.
    from repro.analysis import lint_paths
    src = repo_root / "src"
    result = lint_paths([src / "repro" / "obs" / "profile.py"],
                        rules=["C2L003"], root=repo_root,
                        catalog=repo_root / "docs" / "OBSERVABILITY.md")
    assert [d for d in result.diagnostics
            if "bucket" in d.message or "profile" in d.message] == []
