"""Cross-module consistency invariants.

The model's pieces were derived from one another in the paper; these
tests assert the library preserves those derivations across package
boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camat import AMATParameters, CAMATParameters
from repro.core.objective import objective_jd
from repro.laws import PowerLawG, sun_ni_speedup
from repro.metrics import apc_from_camat


class TestSpeedupObjectiveDuality:
    @given(f_seq=st.floats(0.01, 0.99), n=st.integers(1, 2000),
           b=st.floats(0.0, 1.5))
    @settings(max_examples=200, deadline=None)
    def test_jd_ratio_is_sun_ni_speedup(self, f_seq, n, b):
        # At fixed per-instruction cost, Eq. 10's J_D(1)/J_D(N) is
        # exactly Sun-Ni's speedup (Eq. 4): the objective *is* the law.
        g = PowerLawG(b)
        jd1 = objective_jd(1e6, 1.0, 0.3, 5.0, f_seq, g, 1)
        jdn = objective_jd(1e6, 1.0, 0.3, 5.0, f_seq, g, n)
        # J_D is the scaled problem's time; speedup compares the scaled
        # problem run serially vs in parallel:
        #   T_serial(N) = IC0 * q * (f_seq + g(N)(1-f_seq))
        q = 1.0 + 0.3 * 5.0
        t_serial = 1e6 * q * (f_seq + float(g(float(n))) * (1 - f_seq))
        assert t_serial / jdn == pytest.approx(
            float(sun_ni_speedup(f_seq, float(n), g)), rel=1e-9)

    def test_amdahl_floor_in_objective(self):
        # g = 1: J_D(N->inf) / J_D(1) -> f_seq (Amdahl's limit).
        g = PowerLawG(0.0)
        jd1 = objective_jd(1e6, 1.0, 0.3, 5.0, 0.2, g, 1)
        jd_inf = objective_jd(1e6, 1.0, 0.3, 5.0, 0.2, g, 10 ** 9)
        assert jd_inf / jd1 == pytest.approx(0.2, rel=1e-6)


class TestEq1Eq2Duality:
    @given(h=st.floats(1.0, 10.0), mr=st.floats(0.0, 1.0),
           amp=st.floats(0.0, 500.0))
    @settings(max_examples=200, deadline=None)
    def test_sequential_camat_equals_amat(self, h, mr, amp):
        amat = AMATParameters(h, mr, amp)
        camat = CAMATParameters.sequential(amat)
        assert camat.value == pytest.approx(amat.value)

    @given(h=st.floats(1.0, 10.0), c=st.floats(1.0, 32.0),
           pmr=st.floats(0.0, 1.0), pamp=st.floats(0.0, 500.0))
    @settings(max_examples=200, deadline=None)
    def test_apc_camat_inverse(self, h, c, pmr, pamp):
        value = CAMATParameters(h, c, pmr, pamp, c).value
        assert apc_from_camat(value) == pytest.approx(1.0 / value)


class TestWorkingSetReuseDuality:
    @given(st.lists(st.integers(0, 30), min_size=2, max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_footprint_equals_compulsory_misses(self, lines):
        # The total footprint (working set over the whole stream) equals
        # the number of compulsory accesses in the reuse profile.
        from repro.capacity.reuse import reuse_profile
        from repro.capacity.workingset import working_set_size
        addrs = np.array(lines) * 64
        profile = reuse_profile(addrs)
        assert profile.compulsory == working_set_size(addrs // 64)

    @given(st.lists(st.integers(0, 20), min_size=2, max_size=80),
           st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_reuse_miss_rate_bounded_by_cold_rate(self, lines, cap):
        from repro.capacity.reuse import reuse_profile
        addrs = np.array(lines) * 64
        profile = reuse_profile(addrs)
        mr = profile.miss_rate(cap * 64 / 1024.0)
        assert profile.compulsory / profile.accesses <= mr <= 1.0
