"""Tests for multi-application core allocation and cache partitioning."""

from __future__ import annotations

import pytest

from repro.alloc import allocate_cores, partition_cache
from repro.capacity.missrate import PowerLawMissRate
from repro.core.params import ApplicationProfile, MachineParameters
from repro.errors import InvalidParameterError
from repro.experiments.fig07_allocation import FIG7_APPS
from repro.laws.gfunction import PowerLawG


@pytest.fixture(scope="module")
def machine():
    return MachineParameters()


class TestCoreAllocation:
    def test_fig7_ordering(self, machine):
        apps = FIG7_APPS()
        res = allocate_cores(apps, machine, 64)
        seq_heavy, parallel, middle = res.cores
        assert seq_heavy < middle < parallel
        assert sum(res.cores) <= 64

    def test_all_cores_used_when_beneficial(self, machine):
        apps = [ApplicationProfile(name=f"a{i}", f_seq=0.01, f_mem=0.3,
                                   concurrency=4.0, g=PowerLawG(1.0))
                for i in range(2)]
        res = allocate_cores(apps, machine, 32)
        assert sum(res.cores) == 32

    def test_identical_apps_near_even_split(self, machine):
        apps = [ApplicationProfile(name=f"a{i}", f_seq=0.05, f_mem=0.3,
                                   concurrency=4.0) for i in range(4)]
        res = allocate_cores(apps, machine, 64)
        assert max(res.cores) - min(res.cores) <= 1

    def test_min_per_app_respected(self, machine):
        apps = FIG7_APPS()
        res = allocate_cores(apps, machine, 64, min_per_app=5)
        assert all(c >= 5 for c in res.cores)

    def test_infeasible_floor_rejected(self, machine):
        with pytest.raises(InvalidParameterError):
            allocate_cores(FIG7_APPS(), machine, 2, min_per_app=1)

    def test_empty_apps_rejected(self, machine):
        with pytest.raises(InvalidParameterError):
            allocate_cores([], machine, 8)

    def test_total_utility_sums(self, machine):
        res = allocate_cores(FIG7_APPS(), machine, 32)
        assert res.total_utility == pytest.approx(sum(res.utilities))

    def test_throughput_utility_mode(self, machine):
        res = allocate_cores(FIG7_APPS(), machine, 32,
                             utility_kind="throughput")
        assert sum(res.cores) <= 32

    def test_invalid_utility_kind(self, machine):
        with pytest.raises(InvalidParameterError):
            allocate_cores(FIG7_APPS(), machine, 32, utility_kind="magic")


class TestCachePartitioning:
    def curves(self):
        return [
            PowerLawMissRate(base_miss_rate=0.2, base_capacity_kib=64.0),
            PowerLawMissRate(base_miss_rate=0.02, base_capacity_kib=64.0),
        ]

    def test_cache_hungry_app_gets_more(self):
        res = partition_cache(self.curves(), [1.0, 1.0],
                              total_kib=1024.0, n_ways=16)
        assert res.ways[0] > res.ways[1]
        assert sum(res.ways) == 16

    def test_intensity_weighting(self):
        curves = [PowerLawMissRate(), PowerLawMissRate()]
        res = partition_cache(curves, [10.0, 1.0],
                              total_kib=1024.0, n_ways=16)
        assert res.ways[0] > res.ways[1]

    def test_capacities_sum_to_total(self):
        res = partition_cache(self.curves(), [1.0, 1.0],
                              total_kib=1024.0, n_ways=8)
        assert sum(res.capacities_kib) == pytest.approx(1024.0)

    def test_greedy_beats_even_split(self):
        curves = self.curves()
        res = partition_cache(curves, [1.0, 1.0], 1024.0, 16)
        even = sum(w * float(c.miss_rate(512.0))
                   for c, w in zip(curves, [1.0, 1.0]))
        assert res.miss_traffic <= even + 1e-12

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            partition_cache([], [], 100.0, 4)
        with pytest.raises(InvalidParameterError):
            partition_cache(self.curves(), [1.0], 100.0, 4)
        with pytest.raises(InvalidParameterError):
            partition_cache(self.curves(), [1.0, -1.0], 100.0, 4)
        with pytest.raises(InvalidParameterError):
            partition_cache(self.curves(), [1.0, 1.0], 100.0, 1)
