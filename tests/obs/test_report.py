"""Run analysis: discovery, report building, HTML, diff, tail."""

from __future__ import annotations

import json
from html.parser import HTMLParser

import pytest

from repro.obs.report import (
    REPORT_SCHEMA,
    build_report,
    cli_main,
    diff_runs,
    discover_run,
    render_html,
)

_VOID = {"meta", "line", "circle", "polyline", "br", "img", "input"}


def _trace_events():
    return [
        {"type": "run", "schema": "c2bound.trace/1", "name": "t",
         "ts": 100.0, "attrs": {}},
        {"type": "span", "name": "sim.run", "id": 3, "parent": 2,
         "ts": 100.5, "dur_s": 2.0, "attrs": {"cores": 2}},
        {"type": "span", "name": "dse.batch", "id": 2, "parent": 1,
         "ts": 100.2, "dur_s": 2.5,
         "attrs": {"size": 10, "fresh": 8, "cached": 2}},
        {"type": "event", "name": "resilience.chunk_lost", "ts": 103.0,
         "span": 1, "attrs": {"chunk": 0, "reason": "timeout"}},
        {"type": "span", "name": "dse.batch", "id": 4, "parent": 1,
         "ts": 103.0, "dur_s": 1.0,
         "attrs": {"size": 10, "fresh": 2, "cached": 8}},
        {"type": "span", "name": "experiment.fig12", "id": 1,
         "parent": None, "ts": 100.0, "dur_s": 5.0, "attrs": {}},
    ]


def _make_run(root, *, out_name="runA", csv_text="a,b\n1,2\n",
              fresh=10, wall=5.0):
    root.mkdir(parents=True, exist_ok=True)
    manifest = {
        "schema": "c2bound.manifest/1",
        "experiment": "fig12",
        "run_id": f"id-{out_name}",
        "argv": ["fig12", "--out", out_name],
        "config": {"workload": "fluidanimate", "n_ops": 8000,
                   "out": out_name, "resume": out_name == "runB"},
        "seed": None,
        "package_version": "1.0.0",
        "git_sha": "deadbeef",
        "started_at": 100.0,
        "wall_time_s": wall,
        "metrics": {},
    }
    metrics = {
        "counters": {"dse.evaluations": fresh,
                     "dse.evaluations{method=aps}": fresh // 2,
                     "dse.evaluations{method=ann}": fresh - fresh // 2,
                     "dse.evaluations_cached": 10,
                     "sim.cache.hits": 3 if out_name == "runB" else 0},
        "gauges": {"dse.ann.cv_error": 0.05},
        "histograms": {"dse.batch_seconds":
                       {"count": 2, "sum": wall, "min": 0.1,
                        "max": wall, "mean": wall / 2}},
    }
    (root / "manifest_fig12.json").write_text(json.dumps(manifest))
    (root / "metrics.json").write_text(json.dumps(metrics))
    (root / "trace.jsonl").write_text(
        "".join(json.dumps(e) + "\n" for e in _trace_events()))
    (root / "fig12.csv").write_text(csv_text)
    # Distractors that content-sniffing must not misidentify.
    (root / "notes.json").write_text(json.dumps({"hello": 1}))
    return root


class _Balance(HTMLParser):
    def __init__(self):
        super().__init__()
        self.stack = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID:  # self-closed SVG marks surface as start+end
            return
        assert self.stack and self.stack[-1] == tag, (
            f"unbalanced </{tag}>, stack {self.stack[-3:]}")
        self.stack.pop()


class TestDiscovery:
    def test_artifacts_found_by_content(self, tmp_path):
        run = discover_run(_make_run(tmp_path / "runA"))
        assert run.manifest_path.name == "manifest_fig12.json"
        assert run.metrics_path.name == "metrics.json"
        assert run.trace_path.name == "trace.jsonl"
        assert [p.name for p in run.csvs] == ["fig12.csv"]
        assert run.experiment == "fig12"

    def test_metrics_fall_back_to_manifest(self, tmp_path):
        root = _make_run(tmp_path / "runA")
        (root / "metrics.json").unlink()
        manifest = json.loads((root / "manifest_fig12.json").read_text())
        manifest["metrics"] = {"counters": {"dse.evaluations": 7},
                               "gauges": {}, "histograms": {}}
        (root / "manifest_fig12.json").write_text(json.dumps(manifest))
        run = discover_run(root)
        assert run.metrics_path is None
        assert run.metrics["counters"]["dse.evaluations"] == 7

    def test_empty_dir(self, tmp_path):
        run = discover_run(tmp_path)
        assert run.manifest is None and run.trace_path is None
        assert run.csvs == []


class TestBuildReport:
    def test_report_document(self, tmp_path):
        report = build_report(_make_run(tmp_path / "runA"))
        assert report["schema"] == REPORT_SCHEMA
        assert report["experiment"] == "fig12"
        assert report["wall_time_s"] == 5.0
        assert report["evaluations"]["fresh"] == 10
        assert report["evaluations"]["by_method"] == {"aps": 5, "ann": 5}
        # Profile: experiment root of 5s fully covers the trace window.
        profile = report["profile"]
        assert profile["coverage"] == pytest.approx(1.0)
        assert profile["buckets"]["simulation"]["seconds"] == (
            pytest.approx(2.0 + 2.5 - 2.0 + 1.0))  # sim.run + batch self
        # Curve: 8/10 then 10/20 cumulative cached share... (fresh first)
        assert [p["evaluations"] for p in report["cache_curve"]] == [10, 20]
        assert report["cache_curve"][-1]["hit_rate"] == pytest.approx(0.5)
        # Timeline carries the resilience event with run-relative time.
        assert len(report["timeline"]) == 1
        entry = report["timeline"][0]
        assert entry["name"] == "resilience.chunk_lost"
        assert entry["t_rel_s"] == pytest.approx(3.0)
        assert entry["attrs"]["reason"] == "timeout"

    def test_report_without_trace(self, tmp_path):
        root = _make_run(tmp_path / "runA")
        (root / "trace.jsonl").unlink()
        report = build_report(root)
        assert report["profile"] is None
        assert report["cache_curve"] == []
        assert report["evaluations"]["fresh"] == 10


class TestRenderHtml:
    def test_self_contained_and_balanced(self, tmp_path):
        page = render_html(build_report(_make_run(tmp_path / "runA")))
        parser = _Balance()
        parser.feed(page)
        assert parser.stack == []
        for fragment in ("Wall-clock attribution",
                         "Evaluation-cache hit rate",
                         "Retry / fault timeline",
                         "resilience.chunk_lost",
                         "simulation", "viz-root",
                         "prefers-color-scheme: dark"):
            assert fragment in page, fragment
        # Self-contained: no external fetches.
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page

    def test_render_without_trace(self, tmp_path):
        root = _make_run(tmp_path / "runA")
        (root / "trace.jsonl").unlink()
        page = render_html(build_report(root))
        assert "No trace found" in page


class TestDiff:
    def test_resumed_twin_is_bit_identical(self, tmp_path):
        a = _make_run(tmp_path / "runA", out_name="runA", wall=5.0)
        b = _make_run(tmp_path / "runB", out_name="runB", wall=3.0)
        diff = diff_runs(a, b)
        assert diff["verdict"] == "bit_identical"
        assert diff["config"]["identical"] is True
        # The invocation differences are visible, just not identity.
        assert "out" in diff["config"]["invocation_differing"]
        assert "resume" in diff["config"]["invocation_differing"]
        # Volatile counters differ and surface as deltas only.
        assert "sim.cache.hits" in diff["metrics"]["deltas"]["counters"]
        assert diff["metrics"]["mismatches"] == []
        assert diff["outputs"]["all_identical"]
        assert diff["wall_time"]["delta_s"] == pytest.approx(-2.0)

    def test_perturbed_csv_fails_identity(self, tmp_path):
        a = _make_run(tmp_path / "runA")
        b = _make_run(tmp_path / "runB", csv_text="a,b\n1,999\n")
        diff = diff_runs(a, b)
        assert diff["verdict"] == "different"
        assert diff["outputs"]["differing"] == ["fig12.csv"]

    def test_deterministic_counter_mismatch_fails_identity(self, tmp_path):
        a = _make_run(tmp_path / "runA", fresh=10)
        b = _make_run(tmp_path / "runB", fresh=12)
        diff = diff_runs(a, b)
        assert diff["verdict"] == "different"
        assert "dse.evaluations" in diff["metrics"]["mismatches"]

    def test_histogram_compared_on_count_only(self, tmp_path):
        # Same counts, different sums (wall-clock): still identical.
        a = _make_run(tmp_path / "runA", wall=5.0)
        b = _make_run(tmp_path / "runB", wall=9.0)
        diff = diff_runs(a, b)
        assert diff["verdict"] == "bit_identical"

    def test_profile_bucket_deltas_present(self, tmp_path):
        a = _make_run(tmp_path / "runA")
        b = _make_run(tmp_path / "runB")
        diff = diff_runs(a, b)
        assert set(diff["profile"]["buckets"]) == {
            "simulation", "cache_io", "ipc", "queue_wait",
            "retry_backoff", "search", "framework"}


class TestCli:
    def test_report_command_writes_artifacts(self, tmp_path, capsys):
        root = _make_run(tmp_path / "runA")
        assert cli_main(["report", str(root), "--flame"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock attribution" in out
        assert (root / "report.json").exists()
        assert (root / "report.html").exists()
        report = json.loads((root / "report.json").read_text())
        assert report["schema"] == REPORT_SCHEMA

    def test_report_command_out_dir(self, tmp_path):
        root = _make_run(tmp_path / "runA")
        out = tmp_path / "elsewhere"
        assert cli_main(["report", str(root), "--out", str(out),
                         "--quiet"]) == 0
        assert (out / "report.html").exists()
        assert not (root / "report.html").exists()

    def test_report_command_bad_dir(self, tmp_path):
        assert cli_main(["report", str(tmp_path / "nope")]) == 2

    def test_diff_command_exit_codes(self, tmp_path, capsys):
        a = _make_run(tmp_path / "runA")
        b = _make_run(tmp_path / "runB")
        c = _make_run(tmp_path / "runC", csv_text="a,b\n9,9\n")
        json_out = tmp_path / "diff.json"
        assert cli_main(["diff", str(a), str(b),
                         "--json", str(json_out)]) == 0
        assert "bit_identical" in capsys.readouterr().out
        assert json.loads(json_out.read_text())["kind"] == "diff"
        assert cli_main(["diff", str(a), str(c), "--quiet"]) == 1
        assert cli_main(["diff", str(a), str(tmp_path / "nope")]) == 2

    def test_tail_once(self, tmp_path, capsys):
        root = _make_run(tmp_path / "runA")
        assert cli_main(["tail", str(root / "trace.jsonl"),
                         "--once"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out, "tail printed nothing"
        assert "evals=20" in out[-1]
        assert "experiment.fig12" in out[-1]

    def test_tail_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert cli_main(["tail", str(path), "--once"]) == 1
        assert "no events" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert cli_main(["frobnicate"]) == 2
        assert cli_main([]) == 2
