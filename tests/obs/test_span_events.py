"""Span nesting, the JSONL round trip, and the schema validator."""

from __future__ import annotations

import json

from repro.obs import (
    SCHEMA_VERSION,
    JsonlWriter,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    read_jsonl,
    validate_event,
    validate_trace_file,
)
from repro.obs.span import _NULL_SPAN


class TestSpanNesting:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        s = tracer.span("anything", attr=1)
        assert s is _NULL_SPAN
        assert tracer.span("other") is s
        with s:
            s.set_attr(ignored=True)  # must not raise
        assert tracer.aggregates == {}

    def test_parent_child_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(enabled=True, sink=JsonlWriter(path))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        tracer.close()
        events = [e for e in read_jsonl(path) if e["type"] == "span"]
        # Spans are emitted at exit: the two inners first, then outer.
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        outer = by_name["outer"][0]
        assert outer["parent"] is None
        for inner in by_name["inner"]:
            assert inner["parent"] == outer["id"]
            assert inner["dur_s"] >= 0.0

    def test_aggregates_count_and_accumulate(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("work"):
                pass
        assert tracer.aggregates["work"][0] == 3
        assert tracer.aggregates["work"][1] >= 0.0
        table = tracer.timing_table()
        assert table is not None
        assert table.column("span") == ["work"]
        assert table.column("count") == [3]

    def test_timing_table_empty_is_none(self):
        assert Tracer(enabled=True).timing_table() is None

    def test_exception_tagged_and_propagated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(enabled=True, sink=JsonlWriter(path))
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        tracer.close()
        spans = [e for e in read_jsonl(path) if e["type"] == "span"]
        assert spans[0]["attrs"]["error"] == "ValueError"

    def test_configure_and_disable_global(self, tmp_path):
        tracer = configure_tracing(tmp_path / "g.jsonl")
        assert get_tracer() is tracer
        with get_tracer().span("s"):
            get_tracer().event("marker", k=1)
        disable_tracing()
        assert get_tracer().enabled is False
        problems = validate_trace_file(tmp_path / "g.jsonl")
        assert problems == []


class TestEventSchema:
    def test_round_trip_validates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(enabled=True, sink=JsonlWriter(path, run_name="test"))
        with tracer.span("a", n=2):
            tracer.event("point", detail="d")
        tracer.close()
        events = read_jsonl(path)
        assert events[0]["type"] == "run"
        assert events[0]["schema"] == SCHEMA_VERSION
        assert all(validate_event(e) == [] for e in events)
        assert validate_trace_file(path) == []
        point = [e for e in events if e["type"] == "event"][0]
        assert point["attrs"] == {"detail": "d"}
        assert isinstance(point["span"], int)

    def test_validator_flags_problems(self, tmp_path):
        assert validate_event({"type": "span"})  # missing fields
        assert validate_event([1, 2])  # not an object
        assert validate_event({"type": "nope"})
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps(
            {"type": "span", "name": "s", "id": 0, "parent": 99,
             "ts": 0.0, "dur_s": 0.0, "attrs": {}}) + "\n")
        problems = validate_trace_file(bad)
        assert any("run" in p for p in problems)  # no header
        assert any("parent" in p for p in problems)  # dangling parent

    def test_empty_trace_invalid(self, tmp_path):
        empty = tmp_path / "e.jsonl"
        empty.write_text("")
        assert validate_trace_file(empty)

    def test_module_validator_cli(self, tmp_path, capsys):
        from repro.obs.events import main
        path = tmp_path / "t.jsonl"
        with JsonlWriter(path):
            pass
        assert main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main([]) == 2
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        assert main([str(bad)]) == 1
