"""No-op-overhead guard: disabled instrumentation must stay near-free.

The simulator's hot loop keeps plain-int counters and publishes them to
the registry once per run; tracing spans collapse to a shared null
object when disabled (the default).  These tests bound the cost of that
per-run instrumentation at well under 5% of a small ``CMPSimulator``
run, so the acceptance criterion holds with a wide margin rather than a
flaky ratio of two noisy timings.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs import MetricsRegistry, Tracer, get_tracer
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import parsec_like

#: Representative of the batch CMPSimulator._publish_metrics publishes
#: (per-layer hit/miss/MSHR/DRAM counters) — same order of magnitude.
_STATS = {f"sim.overhead_probe.{i}": float(i + 1) for i in range(30)}


def _time_small_sim_run() -> float:
    """Best-of-3 wall time of a small simulation (instrumented as shipped)."""
    rng = np.random.default_rng(5)
    wl = parsec_like("blackscholes", n_ops=2000)
    sim = CMPSimulator(SimulatedChip(n_cores=2))
    best = float("inf")
    for _ in range(3):
        streams = wl.streams(2, np.random.default_rng(5))
        t0 = time.perf_counter()
        sim.run(streams)
        best = min(best, time.perf_counter() - t0)
    del rng
    return best


def _time_per_run_instrumentation(reps: int = 200) -> float:
    """Mean cost of one run's worth of instrumentation when disabled:
    one (null) span plus one batch publication of the stats dict."""
    tracer = get_tracer()
    assert not tracer.enabled
    registry = MetricsRegistry()
    t0 = time.perf_counter()
    for _ in range(reps):
        with tracer.span("sim.run", cores=2, smt=1, coherent=True):
            pass
        for name, value in _STATS.items():
            registry.counter(name).inc(value)
    return (time.perf_counter() - t0) / reps


class TestNoOpOverhead:
    def test_disabled_instrumentation_under_5_percent_of_small_run(self):
        t_run = _time_small_sim_run()
        t_instr = _time_per_run_instrumentation()
        # Instrumentation fires once per run, so its share of the run's
        # wall time is t_instr / t_run.  Demand < 5% as per the issue;
        # in practice this is ~0.1% and the margin absorbs CI noise.
        assert t_instr < 0.05 * t_run, (
            f"per-run instrumentation {t_instr * 1e6:.1f}us is >=5% of a "
            f"small sim run ({t_run * 1e3:.1f}ms)")

    def test_disabled_span_is_cheap_and_allocation_free(self):
        tracer = Tracer(enabled=False)
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("x", a=1, b=2):
                pass
        per_call = (time.perf_counter() - t0) / n
        # A generous ceiling (~50x the observed cost) to stay CI-proof.
        assert per_call < 50e-6
        assert tracer.aggregates == {}

    def test_default_tracer_is_disabled(self):
        assert get_tracer().enabled is False

    @pytest.mark.parametrize("reps", [1])
    def test_probe_registry_isolated(self, reps):
        # The micro-benchmark must not pollute the process registry.
        from repro.obs import get_registry
        _time_per_run_instrumentation(reps=reps)
        snap = get_registry().snapshot()["counters"]
        assert not any(k.startswith("sim.overhead_probe.") for k in snap)
