"""Streaming trace consumption: torn-tail healing and live aggregates.

The load-bearing property: an append-only writer can only tear the
*final* line of a trace, and :class:`~repro.obs.stream.TraceReader`
must be indistinguishable from a one-shot read of the finished file no
matter how the bytes dribbled in — byte-by-byte, in adversarial chunk
sizes, with polls interleaved anywhere.  Hypothesis drives the chunk
schedule.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.obs.stream import (
    EventBus,
    MetricFold,
    ProgressAggregator,
    SpanRollup,
    TraceReader,
    follow,
)


def _line(obj: dict) -> bytes:
    return json.dumps(obj).encode() + b"\n"


def _trace_bytes(events: "list[dict]") -> bytes:
    return b"".join(_line(e) for e in events)


def _events(n: int) -> "list[dict]":
    out = [{"type": "run", "schema": "c2bound.trace/1", "name": "t",
            "ts": 0.0, "attrs": {}}]
    for i in range(n):
        out.append({"type": "span", "name": "sim.run", "id": i + 1,
                    "parent": None, "ts": float(i), "dur_s": 0.5,
                    "attrs": {"i": i}})
    return out


# ---------------------------------------------------------------------------
# TraceReader


class TestTraceReader:
    def test_missing_file_yields_nothing(self, tmp_path):
        reader = TraceReader(tmp_path / "absent.jsonl")
        assert reader.poll() == []
        assert reader.read_all() == []

    def test_one_shot_read(self, tmp_path):
        events = _events(5)
        path = tmp_path / "t.jsonl"
        path.write_bytes(_trace_bytes(events))
        assert TraceReader(path).read_all() == events

    def test_torn_tail_is_invisible_until_completed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = _events(2)
        payload = _trace_bytes(events)
        # Everything but the final newline: the last line is torn.
        path.write_bytes(payload[:-1])
        reader = TraceReader(path)
        assert reader.read_all() == events[:-1]
        # Writer completes the line -> exactly the missing event.
        path.write_bytes(payload)
        assert reader.read_all() == [events[-1]]
        assert reader.read_all() == []

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=1, max_value=8))
    def test_any_chunk_schedule_equals_one_shot_read(
            self, tmp_path_factory, data, n):
        """Adversarial byte-dribble == one-shot read, never partial JSON."""
        events = _events(n)
        payload = _trace_bytes(events)
        # A random partition of the payload into append chunks
        # (including 1-byte chunks that tear every line repeatedly).
        cuts = sorted(data.draw(st.sets(
            st.integers(min_value=1, max_value=len(payload) - 1),
            max_size=24)))
        bounds = [0, *cuts, len(payload)]
        path = tmp_path_factory.mktemp("stream") / "t.jsonl"
        reader = TraceReader(path)
        seen: "list[dict]" = []
        with path.open("ab") as fh:
            for lo, hi in zip(bounds, bounds[1:]):
                fh.write(payload[lo:hi])
                fh.flush()
                batch = reader.read_all()
                # No partial JSON can ever surface: everything yielded
                # is one of the written events, in order.
                seen.extend(batch)
        seen.extend(reader.read_all())
        assert seen == events

    @settings(max_examples=20, deadline=None)
    @given(budget=st.integers(min_value=1, max_value=64))
    def test_max_bytes_budget_still_yields_everything(
            self, tmp_path_factory, budget):
        events = _events(6)
        path = tmp_path_factory.mktemp("budget") / "t.jsonl"
        path.write_bytes(_trace_bytes(events))
        reader = TraceReader(path, max_bytes=budget)
        assert reader.read_all() == events

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            TraceReader(tmp_path / "t.jsonl", max_bytes=0)

    def test_truncation_resets_to_fresh_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        first = _events(3)
        path.write_bytes(_trace_bytes(first))
        reader = TraceReader(path)
        assert reader.read_all() == first
        # The file is replaced by a shorter, different trace.
        second = _events(1)
        path.write_bytes(_trace_bytes(second))
        assert reader.read_all() == second

    def test_corrupt_complete_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"type": "run"}\nnot json at all\n')
        reader = TraceReader(path)
        with pytest.raises(ObservabilityError, match="corrupt complete"):
            reader.read_all()

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"[1, 2, 3]\n")
        with pytest.raises(ObservabilityError, match="not an object"):
            TraceReader(path).poll()


# ---------------------------------------------------------------------------
# EventBus


class TestEventBus:
    def test_type_and_prefix_filters(self):
        bus = EventBus()
        spans, sims, everything = [], [], []
        bus.subscribe(spans.append, types=("span",))
        bus.subscribe(sims.append, prefixes=("sim.",))
        bus.subscribe(everything.append)
        bus.publish({"type": "run", "name": "t"})
        bus.publish({"type": "span", "name": "sim.run"})
        bus.publish({"type": "span", "name": "dse.batch"})
        bus.publish({"type": "event", "name": "sim.cache.miss"})
        assert [e["name"] for e in spans] == ["sim.run", "dse.batch"]
        assert [e["name"] for e in sims] == ["sim.run", "sim.cache.miss"]
        assert len(everything) == 4

    def test_handle_method_objects_subscribe_directly(self):
        bus = EventBus()
        rollup = SpanRollup()
        bus.subscribe(rollup, types=("span",))
        bus.publish({"type": "span", "name": "sim.run", "id": 1,
                     "parent": None, "ts": 0.0, "dur_s": 1.0})
        assert rollup.spans == 1
        bus.unsubscribe(rollup)
        bus.publish({"type": "span", "name": "sim.run", "id": 2,
                     "parent": None, "ts": 1.0, "dur_s": 1.0})
        assert rollup.spans == 1

    def test_pump_drains_reader(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(_trace_bytes(_events(3)))
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        assert bus.pump(TraceReader(path)) == 4  # run header + 3 spans
        assert len(got) == 4


# ---------------------------------------------------------------------------
# SpanRollup


def _span(name, sid, parent, ts, dur, **attrs):
    return {"type": "span", "name": name, "id": sid, "parent": parent,
            "ts": ts, "dur_s": dur, "attrs": attrs}


class TestSpanRollup:
    def test_known_tree_self_times_and_edges(self):
        # root(10) -> a(4) -> b(1);  root -> a(2)   [exit order: leaves first]
        rollup = SpanRollup()
        for event in [
            _span("b", 3, 2, 1.0, 1.0),
            _span("a", 2, 1, 0.5, 4.0),
            _span("a", 4, 1, 5.0, 2.0),
            _span("root", 1, None, 0.0, 10.0),
        ]:
            rollup.handle(event)
        self_s = rollup.self_seconds()
        assert self_s["b"] == pytest.approx(1.0)
        assert self_s["a"] == pytest.approx(5.0)      # 4-1 + 2
        assert self_s["root"] == pytest.approx(4.0)   # 10 - (4+2)
        # Sum of self-times == root duration: nothing double-counted.
        assert sum(self_s.values()) == pytest.approx(10.0)
        assert rollup.children_of(None) == [("root", 1, 10.0)]
        assert rollup.children_of("root") == [("a", 2, 6.0)]
        assert rollup.children_of("a") == [("b", 1, 1.0)]
        assert rollup.window_s == pytest.approx(10.0)

    def test_pending_memory_is_retired_on_parent_arrival(self):
        rollup = SpanRollup()
        rollup.handle(_span("child", 2, 1, 0.0, 1.0))
        assert len(rollup._pending) == 1
        rollup.handle(_span("parent", 1, None, 0.0, 2.0))
        assert rollup._pending == {}

    def test_concurrent_children_clamp_self_time_at_zero(self):
        # Parallel children sum past the parent's duration (wall-clock
        # overlap): self-time clamps at zero instead of going negative.
        rollup = SpanRollup()
        rollup.handle(_span("c", 2, 1, 0.0, 3.0))
        rollup.handle(_span("c", 3, 1, 0.0, 3.0))
        rollup.handle(_span("p", 1, None, 0.0, 4.0))
        assert rollup.self_seconds()["p"] == 0.0

    def test_snapshot_shape(self):
        rollup = SpanRollup()
        rollup.handle(_span("x", 1, None, 0.0, 1.5))
        rollup.handle({"type": "event", "name": "mark", "ts": 0.5,
                       "span": 1, "attrs": {}})
        snap = rollup.snapshot()
        assert snap["spans"] == 1 and snap["events"] == 1
        assert snap["names"]["x"] == {"count": 1, "total_s": 1.5,
                                      "self_s": 1.5}


class TestMetricFold:
    def test_folds_numeric_attrs_only(self):
        fold = MetricFold()
        for value in (3, 1.0, 2):
            fold.handle({"type": "span", "name": "dse.batch",
                         "attrs": {"size": value, "label": "x",
                                   "flag": True}})
        snap = fold.snapshot()
        assert snap == {"dse.batch.size":
                        {"count": 3, "sum": 6.0, "min": 1.0, "max": 3}}


# ---------------------------------------------------------------------------
# ProgressAggregator + follow


class TestProgress:
    def test_batches_fold_into_progress(self):
        progress = ProgressAggregator()
        progress.handle({"type": "run", "name": "sweep", "ts": 0.0,
                         "schema": "c2bound.trace/1", "attrs": {}})
        progress.handle(_span("dse.batch", 1, None, 1.0, 2.0,
                              size=10, fresh=8, cached=2))
        progress.handle(_span("dse.batch", 2, None, 4.0, 1.0,
                              size=5, fresh=5, cached=0))
        assert progress.fresh == 13 and progress.cached == 2
        assert progress.evaluations == 15
        assert progress.elapsed_s == pytest.approx(5.0)
        assert progress.rate == pytest.approx(3.0)
        assert not progress.done
        progress.handle(_span("experiment.fig12", 9, None, 0.0, 5.0))
        assert progress.done
        line = progress.format_line()
        assert "evals=15" in line and "experiment.fig12" in line

    def test_follow_stops_on_idle_timeout(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(_trace_bytes(_events(2)))
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        slept = []
        total = follow(path, bus=bus, interval_s=0.1, idle_timeout_s=0.3,
                       sleep=slept.append)
        assert total == 3
        assert len(seen) == 3
        assert slept  # idled through the timeout, never blocked for real

    def test_follow_until_predicate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(_trace_bytes(_events(1)))
        bus = EventBus()
        progress = ProgressAggregator()
        bus.subscribe(progress)
        total = follow(path, bus=bus, interval_s=0.0,
                       until=lambda: progress.batches >= 0,
                       sleep=lambda _s: None)
        assert total == 2
