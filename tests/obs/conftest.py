"""Fixtures for the observability tests: isolated registry/tracer."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, disable_tracing, set_registry


@pytest.fixture
def fresh_registry() -> MetricsRegistry:
    """Swap in a private process-wide registry for the test's duration."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@pytest.fixture(autouse=True)
def _restore_tracer():
    """Leave the global tracer disabled after every test."""
    yield
    disable_tracing()
