"""Run-manifest contents, determinism, and serialization."""

from __future__ import annotations

import json

from repro.obs import (
    MANIFEST_SCHEMA,
    VOLATILE_KEYS,
    RunManifest,
    package_version,
    stable_view,
)


def _make(seed: int = 7) -> dict:
    manifest = RunManifest(
        "fig12", config={"values_per_param": 10}, seed=seed,
        argv=["fig12", "--trace", "t.jsonl"])
    return manifest.finish(metrics={"counters": {"dse.evaluations": 1024}})


class TestManifest:
    def test_required_keys_present(self):
        data = _make()
        for key in ("schema", "experiment", "argv", "config", "seed",
                    "package_version", "git_sha", "started_at",
                    "wall_time_s", "metrics"):
            assert key in data
        assert data["schema"] == MANIFEST_SCHEMA
        assert data["experiment"] == "fig12"
        assert data["seed"] == 7
        assert data["wall_time_s"] >= 0.0
        assert data["package_version"] == package_version()
        assert data["metrics"]["counters"]["dse.evaluations"] == 1024

    def test_stable_view_deterministic_under_fixed_seed(self):
        # Two runs of the same configuration and seed agree on every
        # non-volatile field, regardless of clock or checkout state.
        a, b = _make(seed=42), _make(seed=42)
        assert stable_view(a) == stable_view(b)
        for key in VOLATILE_KEYS:
            assert key not in stable_view(a)

    def test_stable_view_distinguishes_configs(self):
        assert stable_view(_make(seed=1)) != stable_view(_make(seed=2))

    def test_config_copied_not_aliased(self):
        config = {"k": 1}
        manifest = RunManifest("x", config=config)
        config["k"] = 2
        assert manifest.finish()["config"] == {"k": 1}

    def test_write_round_trips_as_json(self, tmp_path):
        manifest = RunManifest("fig1", seed=0)
        path = manifest.write(tmp_path / "sub" / "manifest.json",
                              metrics={"gauges": {}})
        data = json.loads(path.read_text())
        assert data["experiment"] == "fig1"
        assert data["metrics"] == {"gauges": {}}
