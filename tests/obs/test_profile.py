"""Wall-clock attribution profiler: buckets, coverage, rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs.profile import (
    PROFILE_BUCKETS,
    PROFILE_SCHEMA,
    bucket_for,
    build_profile,
    format_profile,
    profile_trace,
    render_flame,
    write_profile,
)
from repro.obs.stream import SpanRollup


def _span(name, sid, parent, ts, dur, **attrs):
    return {"type": "span", "name": name, "id": sid, "parent": parent,
            "ts": ts, "dur_s": dur, "attrs": attrs}


def _rollup(events):
    rollup = SpanRollup()
    for event in events:
        rollup.handle(event)
    return rollup


class TestBucketFor:
    @pytest.mark.parametrize("name,bucket", [
        ("sim.run", "simulation"),
        ("dse.chunk.execute", "simulation"),
        ("dse.batch", "simulation"),
        ("sim.cache.lookup", "cache_io"),
        ("sim.cache.store", "cache_io"),
        ("dse.chunk.ipc", "ipc"),
        ("dse.chunk.queue_wait", "queue_wait"),
        ("resilience.backoff", "retry_backoff"),
        ("dse.ann.round", "search"),
        ("dse.aps.analytic", "search"),
        ("dse.ga.search", "search"),
        ("dse.rsm.search", "search"),
        ("dse.brute.sweep", "search"),
        ("experiment.fig12", "framework"),
        ("sim.runner", "framework"),   # exact match, not a prefix
    ])
    def test_known_names(self, name, bucket):
        assert bucket_for(name) == bucket

    def test_every_bucket_reachable_or_catchall(self):
        assert set(PROFILE_BUCKETS) == {
            "simulation", "cache_io", "ipc", "queue_wait",
            "retry_backoff", "search", "framework"}
        assert PROFILE_BUCKETS["framework"] == ()


class TestBuildProfile:
    def test_buckets_sum_to_attributed_and_coverage(self):
        # root experiment(10) holds sim.run(6) and sim.cache.lookup(1).
        rollup = _rollup([
            _span("sim.run", 2, 1, 1.0, 6.0),
            _span("sim.cache.lookup", 3, 1, 7.0, 1.0),
            _span("experiment.fig12", 1, None, 0.0, 10.0),
        ])
        profile = build_profile(rollup, trace="t.jsonl")
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["trace"] == "t.jsonl"
        bucket_s = {b: slot["seconds"]
                    for b, slot in profile["buckets"].items()}
        assert bucket_s["simulation"] == pytest.approx(6.0)
        assert bucket_s["cache_io"] == pytest.approx(1.0)
        assert bucket_s["framework"] == pytest.approx(3.0)
        assert sum(bucket_s.values()) == pytest.approx(
            profile["attributed_s"])
        # Self-time attribution: attributed == root duration == window.
        assert profile["attributed_s"] == pytest.approx(10.0)
        assert profile["coverage"] == pytest.approx(1.0)
        assert profile["untraced_s"] == pytest.approx(0.0)
        shares = [slot["share"] for slot in profile["buckets"].values()]
        assert sum(shares) == pytest.approx(1.0)

    def test_gap_in_instrumentation_lowers_coverage(self):
        # Two roots 4s apart with 1s of work each: half the window
        # is unexplained.
        rollup = _rollup([
            _span("experiment.a", 1, None, 0.0, 1.0),
            _span("experiment.b", 2, None, 3.0, 1.0),
        ])
        profile = build_profile(rollup)
        assert profile["window_s"] == pytest.approx(4.0)
        assert profile["coverage"] == pytest.approx(0.5)
        assert profile["untraced_s"] == pytest.approx(2.0)

    def test_empty_rollup(self):
        profile = build_profile(SpanRollup())
        assert profile["coverage"] == 0.0
        assert profile["attributed_s"] == 0.0

    def test_roundtrip_via_trace_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"type": "run", "schema": "c2bound.trace/1", "name": "t",
             "ts": 0.0, "attrs": {}},
            _span("sim.run", 2, 1, 0.0, 2.0),
            _span("experiment.x", 1, None, 0.0, 2.0),
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        profile, rollup = profile_trace(path)
        assert profile["spans_seen"] == 2
        assert profile["buckets"]["simulation"]["seconds"] == (
            pytest.approx(2.0))
        out = write_profile(profile, tmp_path / "sub" / "profile.json")
        again = json.loads(out.read_text())
        assert again["schema"] == PROFILE_SCHEMA
        assert again["buckets"]["simulation"]["seconds"] == (
            pytest.approx(2.0))
        # The rollup comes back usable for flame rendering.
        assert "experiment.x" in render_flame(rollup)


class TestRendering:
    def test_format_profile_shows_nonempty_buckets(self):
        rollup = _rollup([
            _span("sim.run", 2, 1, 0.0, 3.0),
            _span("experiment.x", 1, None, 0.0, 4.0),
        ])
        text = format_profile(build_profile(rollup))
        assert "simulation" in text and "framework" in text
        assert "queue_wait" not in text    # empty buckets are elided
        assert "coverage" in text

    def test_render_flame_tree_shape(self):
        rollup = _rollup([
            _span("sim.run", 2, 1, 0.0, 3.0),
            _span("sim.run", 3, 1, 3.0, 1.0),
            _span("experiment.x", 1, None, 0.0, 5.0),
        ])
        flame = render_flame(rollup)
        lines = flame.splitlines()
        assert lines[0].startswith("[")
        assert "experiment.x" in lines[0]
        assert lines[1].startswith("  [")      # child indented
        assert "sim.run" in lines[1] and "×2" in lines[1]

    def test_render_flame_empty(self):
        assert render_flame(SpanRollup()) == "(no spans)"
