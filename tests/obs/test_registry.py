"""Registry semantics: counters, gauges, histograms, labels, reset."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, get_registry, set_registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        ctr = reg.counter("dse.evaluations")
        assert ctr.value == 0
        ctr.inc()
        ctr.inc(41)
        assert ctr.value == 42

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("dse.evaluations", method="aps")
        b = reg.counter("dse.evaluations", method="ann")
        plain = reg.counter("dse.evaluations")
        a.inc(3)
        b.inc(5)
        assert plain.value == 0
        snap = reg.snapshot()["counters"]
        assert snap["dse.evaluations{method=aps}"] == 3
        assert snap["dse.evaluations{method=ann}"] == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("x").inc(-1)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")
        with pytest.raises(ObservabilityError):
            reg.histogram("x")


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("dse.ann.cv_error")
        g.set(0.2)
        g.set(0.05)
        assert reg.get("dse.ann.cv_error") == 0.05


class TestHistogram:
    def test_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("solver.newton.residual")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0

    def test_sample_bound_keeps_exact_aggregates(self):
        from repro.obs import Histogram
        h = Histogram("h", {}, max_samples=4)
        for v in range(10):
            h.observe(float(v))
        assert h.count == 10
        assert h.total == 45.0
        assert h.max == 9.0

    def test_empty_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()["histograms"]["h"]
        assert snap == {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": 0.0}

    def test_percentile_domain(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("h").percentile(101)


class TestRegistry:
    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        # Cached metric objects must survive a reset (callers hold refs).
        reg = MetricsRegistry()
        ctr = reg.counter("c")
        ctr.inc(7)
        hist = reg.histogram("h")
        hist.observe(1.0)
        reg.reset()
        assert ctr.value == 0
        assert hist.count == 0
        ctr.inc()
        assert reg.snapshot()["counters"]["c"] == 1

    def test_get_unknown_returns_none(self):
        assert MetricsRegistry().get("nope") is None

    def test_write_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("sim.runs").inc(3)
        path = reg.write_json(tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["counters"]["sim.runs"] == 3

    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_registry_type_checked(self):
        with pytest.raises(ObservabilityError):
            set_registry(object())  # type: ignore[arg-type]
