"""Overhead guard for the profiler's streaming instrumentation.

The wall-clock attribution spans (``dse.chunk.*``, ``sim.cache.*``,
``resilience.backoff``) fire with tracing *enabled*, so they cannot
hide behind the null span.  The contract (docs/OBSERVABILITY.md):
they must add **< 3%** to a traced batched sweep.  Like
``test_overhead.py``, the bound is enforced on the per-unit cost of
the instrumentation itself — one chunk's three ``record_span`` calls
against one chunk's worth of simulation — rather than on a ratio of
two noisy end-to-end timings.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import Tracer, get_tracer
from repro.obs.events import JsonlWriter
from repro.sim import CMPSimulator, SimulatedChip
from repro.workloads import parsec_like


def _time_small_chunk() -> float:
    """Best-of-3 wall time of one chunk's worth of simulation."""
    wl = parsec_like("blackscholes", n_ops=2000)
    sim = CMPSimulator(SimulatedChip(n_cores=2))
    best = float("inf")
    for _ in range(3):
        streams = wl.streams(2, np.random.default_rng(5))
        t0 = time.perf_counter()
        sim.run(streams)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_per_chunk_instrumentation(path, reps: int = 300) -> float:
    """Mean cost of one chunk's streaming instrumentation, enabled.

    Per chunk the batch engine records three externally-timed spans
    (queue_wait / execute / ipc) into a live JSONL sink — the exact
    hot-path work `_record_chunk_timing` adds.
    """
    tracer = Tracer(enabled=True, sink=JsonlWriter(path))
    t0 = time.perf_counter()
    for i in range(reps):
        tracer.record_span("dse.chunk.queue_wait", 0.001, chunk=i, size=8)
        tracer.record_span("dse.chunk.execute", 0.1, chunk=i, size=8)
        tracer.record_span("dse.chunk.ipc", 0.002, chunk=i, size=8)
    per_chunk = (time.perf_counter() - t0) / reps
    tracer.close()
    return per_chunk


class TestStreamingOverhead:
    def test_enabled_chunk_spans_under_3_percent_of_chunk(self, tmp_path):
        t_chunk = _time_small_chunk()
        t_instr = _time_per_chunk_instrumentation(tmp_path / "t.jsonl")
        # One chunk simulates far more than a single small run (its
        # whole slice of the sweep), so holding three record_span
        # calls under 3% of even ONE small run is a conservative bar.
        assert t_instr < 0.03 * t_chunk, (
            f"per-chunk streaming instrumentation {t_instr * 1e6:.1f}us "
            f">= 3% of one small sim run ({t_chunk * 1e3:.2f}ms)")

    def test_record_span_noop_when_disabled(self, tmp_path):
        tracer = Tracer(enabled=False)
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            tracer.record_span("dse.chunk.execute", 0.1, chunk=0, size=8)
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 50e-6
        assert tracer.aggregates == {}

    def test_probe_does_not_touch_global_tracer(self, tmp_path):
        before = get_tracer()
        _time_per_chunk_instrumentation(tmp_path / "probe.jsonl", reps=3)
        assert get_tracer() is before
        assert get_tracer().enabled is False
