"""Smoke tests: the fast example scripts must run to completion.

The slower examples (full DSE, SimPoint) are exercised implicitly by
the experiment tests; here we guarantee the documented entry points
don't rot.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "concurrency_schedule.py",
    "multi_app_scheduling.py",
    "energy_aware_design.py",
    "speedup_laws.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_all_examples_exist():
    expected = {
        "quickstart.py", "design_space_exploration.py",
        "multi_app_scheduling.py", "memory_bounded_scaling.py",
        "camat_analysis.py", "concurrency_schedule.py",
        "energy_aware_design.py", "phase_adaptive_reconfiguration.py",
        "simpoint_acceleration.py", "speedup_laws.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present


def test_cli_characterize(capsys):
    from repro.cli import main
    assert main(["characterize", "--workload", "blackscholes",
                 "--n-ops", "2000"]) == 0
    out = capsys.readouterr().out
    assert "f_mem" in out
    assert "concurrency" in out


def test_cli_characterize_unknown_workload(capsys):
    from repro.cli import main
    assert main(["characterize", "--workload", "crysis"]) == 2
