"""SimCacheStore corruption handling: detect, count, quarantine, recover."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cli import main
from repro.resilience import corrupt_cache_entries
from repro.sim.cache_store import SimCacheStore


def _key(i: int) -> str:
    return hashlib.sha256(f"entry-{i}".encode()).hexdigest()


@pytest.fixture
def store(tmp_path) -> SimCacheStore:
    store = SimCacheStore(tmp_path / "cache", memory_entries=2)
    for i in range(6):
        store.put(_key(i), float(i) + 0.5)
    return store


class TestQuarantine:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "wrong_type"])
    def test_corrupt_entry_is_a_counted_miss(self, store, fresh_registry,
                                             mode):
        cold = SimCacheStore(store.root, memory_entries=2)  # empty LRU front
        [victim] = corrupt_cache_entries(store.root, seed=2,
                                         fraction=0.01, mode=mode)
        key = victim.stem
        assert cold.get(key) is None
        assert cold.corrupt == 1 and cold.misses == 1 and cold.hits == 0
        counters = fresh_registry.snapshot()["counters"]
        assert counters["sim.cache.corrupt"] == 1
        # The damaged file moved aside; the miss is now a plain miss.
        assert not victim.exists()
        assert (cold.quarantine_dir() / victim.name).exists()
        assert cold.get(key) is None
        assert cold.corrupt == 1

    def test_rewrite_after_quarantine_recovers(self, store):
        cold = SimCacheStore(store.root, memory_entries=2)
        [victim] = corrupt_cache_entries(store.root, seed=2, fraction=0.01)
        key = victim.stem
        assert cold.get(key) is None
        cold.put(key, 9.25)
        assert cold.get(key) == 9.25
        assert cold.stats()["quarantined"] == 1

    def test_missing_cost_field_is_corruption(self, store):
        cold = SimCacheStore(store.root, memory_entries=2)
        path = store.path_for(_key(0))
        path.write_text(json.dumps({"model_version": "x"}))
        assert cold.get(_key(0)) is None
        assert cold.corrupt == 1

    def test_memory_front_untouched_by_disk_corruption(self, store):
        # Key 5 is in this instance's LRU front; damaging its file
        # doesn't affect in-memory hits.
        store.path_for(_key(5)).write_bytes(b"\x00garbage")
        assert store.get(_key(5)) == 5.5
        assert store.corrupt == 0

    def test_stats_and_quarantined_count(self, store, tmp_path):
        cold = SimCacheStore(store.root)
        picked = corrupt_cache_entries(store.root, seed=7, fraction=0.5)
        for path in picked:
            assert cold.get(path.stem) is None
        stats = cold.stats()
        assert stats["corrupt"] == len(picked) == 3
        assert stats["quarantined"] == 3
        assert stats["entries"] == 6 - 3

    def test_pickled_clone_starts_clean(self, store):
        import pickle

        clone = pickle.loads(pickle.dumps(store))
        assert clone.corrupt == 0
        assert clone.get(_key(1)) == 1.5


class TestCacheStatsCLI:
    def test_stats_surfaces_corruption(self, store, capsys):
        cold = SimCacheStore(store.root)
        [victim] = corrupt_cache_entries(store.root, seed=2, fraction=0.01)
        cold.get(victim.stem)

        assert main(["cache", "stats", "--sim-cache",
                     str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "corrupt" in out and "quarantined" in out
