"""Checkpoint journals: exact round-trips, crash tolerance, resume wiring."""

from __future__ import annotations

import json
import math

import pytest

from repro.dse.evaluate import BudgetedEvaluator, canonical_key
from repro.errors import CheckpointError
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    CheckpointJournal,
    checkpoint_hash,
    get_checkpoint_defaults,
    journal_for_method,
    load_journal,
    read_journal_headers,
    set_checkpoint_defaults,
)

AWKWARD_COSTS = [0.1 + 0.2, 1e-17, 3.141592653589793, 2.0 ** -1074,
                 math.inf, 123456789.000000001]


def _key(i: int, cost: float) -> tuple:
    return canonical_key({"a0": 0.1 * i, "n": i, "tag": f"p{i}"})


class TestJournalRoundTrip:
    def test_exact_float_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal.create(path, method="aps") as journal:
            for i, cost in enumerate(AWKWARD_COSTS):
                journal.append_eval(_key(i, cost), cost)
        header, evals, states = load_journal(path)
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["method"] == "aps"
        assert states == []
        assert [k for k, _ in evals] == [
            _key(i, c) for i, c in enumerate(AWKWARD_COSTS)]
        for (_, got), expected in zip(evals, AWKWARD_COSTS):
            # Bit-exact: repr round-trips IEEE-754 doubles.
            assert got == expected and type(got) is float

    def test_key_types_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        key = canonical_key({"f": 0.30000000000000004, "i": 7,
                             "s": "name", "b": True})
        with CheckpointJournal.create(path) as journal:
            journal.append_eval(key, 1.0)
        _, evals, _ = load_journal(path)
        restored = evals[0][0]
        assert restored == key
        assert [type(v) for _, v in restored] == [type(v) for _, v in key]

    def test_batch_append_and_state_records_keep_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal.create(path, method="ga") as journal:
            journal.append_eval(_key(0, 1.0), 1.0)
            journal.append_state("generation", {"gen": 1})
            journal.append_evals([(_key(1, 2.0), 2.0), (_key(2, 3.0), 3.0)])
        header, evals, states = load_journal(path)
        assert len(evals) == 3 and len(states) == 1
        assert states[0]["tag"] == "generation"
        # The on-disk record order interleaves exactly as written.
        lines = [json.loads(l) for l in
                 path.read_text().splitlines()][1:]
        assert [r["type"] for r in lines] == [
            "eval", "state", "eval", "eval"]

    def test_checkpoint_hash(self, tmp_path):
        path = tmp_path / "j.jsonl"
        assert checkpoint_hash(path) is None
        CheckpointJournal.create(path).close()
        digest = checkpoint_hash(path)
        assert isinstance(digest, str) and len(digest) == 64


class TestCrashTolerance:
    def _journal_with_tail(self, tmp_path, tail: str):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal.create(path, method="aps") as journal:
            journal.append_eval(_key(0, 1.5), 1.5)
            journal.append_eval(_key(1, 2.5), 2.5)
        with open(path, "a") as handle:
            handle.write(tail)
        return path

    def test_torn_tail_is_healed(self, tmp_path, fresh_registry):
        path = self._journal_with_tail(
            tmp_path, '{"type": "eval", "k": [["a0", "f", "0.')
        journal, evals, _ = CheckpointJournal.open_resume(path, method="aps")
        journal.close()
        assert [c for _, c in evals] == [1.5, 2.5]
        # The torn line is gone from disk and was counted.
        assert "0.\n" not in path.read_text()
        assert fresh_registry.snapshot()["counters"][
            "resilience.checkpoint.torn_tail"] == 1
        # The healed journal loads cleanly.
        _, evals2, _ = load_journal(path)
        assert evals2 == evals

    def test_corrupt_middle_line_refuses_resume(self, tmp_path):
        path = self._journal_with_tail(tmp_path, "")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear a *middle* line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            CheckpointJournal.open_resume(path, method="aps")

    def test_method_mismatch_refuses_resume(self, tmp_path):
        path = self._journal_with_tail(tmp_path, "")
        with pytest.raises(CheckpointError):
            CheckpointJournal.open_resume(path, method="ga")

    def test_missing_file_resumes_as_fresh(self, tmp_path):
        journal, evals, states = CheckpointJournal.open_resume(
            tmp_path / "absent.jsonl", method="aps")
        journal.close()
        assert evals == [] and states == []

    def test_invalid_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "header", "schema": "bogus/9"}\n')
        with pytest.raises(CheckpointError):
            load_journal(path)


class TestHeadersAndDefaults:
    def test_read_journal_headers_skips_garbage(self, tmp_path):
        CheckpointJournal.create(tmp_path / "aps.jsonl", method="aps",
                                 run_id="runA").close()
        (tmp_path / "junk.jsonl").write_text("not json\n")
        (tmp_path / "other.txt").write_text("ignored\n")
        headers = read_journal_headers(tmp_path)
        assert [h["run_id"] for h in headers] == ["runA"]
        assert headers[0]["path"].endswith("aps.jsonl")

    def test_journal_for_method_off_by_default(self):
        assert get_checkpoint_defaults().directory is None
        assert journal_for_method("aps") is None

    def test_journal_for_method_claims_deterministic_names(self, tmp_path):
        set_checkpoint_defaults(directory=tmp_path, run_id="runX")
        j1, evals1 = journal_for_method("aps")
        j2, evals2 = journal_for_method("aps")
        j3, _ = journal_for_method(None)
        for j in (j1, j2, j3):
            j.close()
        assert j1.path.name == "aps.jsonl"
        assert j2.path.name == "aps-2.jsonl"
        assert j3.path.name == "search.jsonl"
        assert j1.header["run_id"] == "runX"
        # A new process (new defaults call) maps methods to the same
        # names — the property resume relies on.
        set_checkpoint_defaults(directory=tmp_path, resume=True)
        j1b, _ = journal_for_method("aps")
        j1b.close()
        assert j1b.path.name == "aps.jsonl"


class TestBudgetedEvaluatorIntegration:
    def test_journal_ledgers_only_fresh_charges(self, tmp_path, surrogate,
                                                configs):
        path = tmp_path / "j.jsonl"
        budget = BudgetedEvaluator(surrogate, method="brute",
                                   checkpoint=path)
        budget.evaluate_batch(configs)
        budget.evaluate_batch(configs)       # all cached: nothing appended
        budget.evaluate(configs[0])          # cached too
        budget.close()
        _, evals, _ = load_journal(path)
        assert len(evals) == budget.evaluations == len(configs)

    def test_resume_is_bit_identical_with_exact_counters(
            self, tmp_path, surrogate, configs, fresh_registry):
        path = tmp_path / "j.jsonl"
        fresh = BudgetedEvaluator(surrogate, method="brute",
                                  checkpoint=path)
        costs = fresh.evaluate_batch(configs)
        fresh.close()

        resumed = BudgetedEvaluator(surrogate, method="brute",
                                    checkpoint=path, resume=True)
        costs2 = resumed.evaluate_batch(configs)
        resumed.close()
        assert (costs == costs2).all()
        # Replayed restores count as the fresh charges they were: both
        # local counters match the uninterrupted run exactly.
        assert resumed.evaluations == fresh.evaluations
        assert resumed.evaluations_cached == fresh.evaluations_cached
        counters = fresh_registry.snapshot()["counters"]
        assert counters["resilience.checkpoint.restored"] == len(configs)
        # ... and nothing was re-journaled.
        _, evals, _ = load_journal(path)
        assert len(evals) == len(configs)

    def test_scalar_path_replays_identically(self, tmp_path, surrogate,
                                             configs):
        path = tmp_path / "j.jsonl"
        fresh = BudgetedEvaluator(surrogate, checkpoint=path)
        want = [fresh.evaluate(c) for c in configs[:6]]
        fresh.close()
        resumed = BudgetedEvaluator(surrogate, checkpoint=path, resume=True)
        got = [resumed.evaluate(c) for c in configs[:6]]
        resumed.close()
        assert got == want
        assert resumed.evaluations == len(want)
        assert resumed.evaluations_cached == 0

    def test_process_defaults_wire_every_search_evaluator(
            self, tmp_path, surrogate, configs):
        set_checkpoint_defaults(directory=tmp_path, run_id="runZ")
        budget = BudgetedEvaluator(surrogate, method="rsm")
        budget.evaluate_batch(configs[:5])
        budget.close()
        header, evals, _ = load_journal(tmp_path / "rsm.jsonl")
        assert header["run_id"] == "runZ"
        assert len(evals) == 5
