"""Sharded ledger: stable routing, union resume, per-shard crash healing."""

from __future__ import annotations

import math

import pytest

from repro.dse.evaluate import canonical_key
from repro.errors import CheckpointError
from repro.resilience import (
    DEFAULT_LEDGER_SHARDS,
    ShardedJournal,
    load_journal,
    read_journal_headers,
    set_checkpoint_defaults,
    shard_of_canonical_key,
)
from repro.resilience.checkpoint import CHECKPOINT_SCHEMA

AWKWARD_COSTS = [0.1 + 0.2, 1e-17, 3.141592653589793, 2.0 ** -1074,
                 math.inf, 123456789.000000001]


def _key(i: int) -> tuple:
    return canonical_key({"a0": 0.1 * i, "n": i, "tag": f"p{i}"})


class TestShardRouting:
    def test_deterministic_and_in_range(self):
        keys = [_key(i) for i in range(200)]
        shards = [shard_of_canonical_key(k) for k in keys]
        assert shards == [shard_of_canonical_key(k) for k in keys]
        assert all(0 <= s < DEFAULT_LEDGER_SHARDS for s in shards)
        # 200 keys over 16 shards: the hash actually fans out.
        assert len(set(shards)) > 1

    def test_float_exactness_distinguishes_keys(self):
        # Two keys whose floats differ only at the last ulp route (and
        # ledger) independently — repr-exact hashing, no rounding.
        a = canonical_key({"x": 0.1 + 0.2})
        b = canonical_key({"x": 0.3})
        assert a != b
        assert isinstance(shard_of_canonical_key(a), int)
        assert isinstance(shard_of_canonical_key(b), int)

    def test_respects_shard_count(self):
        key = _key(1)
        assert shard_of_canonical_key(key, 1) == 0
        for count in (2, 4, 16, 64):
            assert 0 <= shard_of_canonical_key(key, count) < count


class TestLedgerRoundTrip:
    def test_union_resume_with_exact_costs(self, tmp_path):
        directory = tmp_path / "ledger"
        with ShardedJournal.create(directory, method="aps",
                                   shard_count=4) as ledger:
            for i, cost in enumerate(AWKWARD_COSTS):
                ledger.append_eval(_key(i), cost)
            ledger.append_evals([(_key(10 + i), float(i)) for i in range(8)])
        resumed, evals = ShardedJournal.open_resume(directory, method="aps")
        resumed.close()
        assert resumed.shard_count == 4
        by_key = dict(evals)
        for i, cost in enumerate(AWKWARD_COSTS):
            got = by_key[_key(i)]
            assert got == cost and type(got) is float
        assert len(evals) == len(AWKWARD_COSTS) + 8

    def test_entries_land_on_their_routed_shard(self, tmp_path):
        directory = tmp_path / "ledger"
        with ShardedJournal.create(directory, method="ga",
                                   shard_count=4) as ledger:
            keys = [_key(i) for i in range(32)]
            ledger.append_evals([(k, 1.0) for k in keys])
        for path in sorted(directory.glob("shard-*.jsonl")):
            shard = int(path.stem.split("-", 1)[1], 16)
            header, evals, _states = load_journal(path)
            assert header["meta"] == {"shard": shard, "shard_count": 4}
            for key, _cost in evals:
                assert shard_of_canonical_key(key, 4) == shard

    def test_shard_files_are_ordinary_journals(self, tmp_path):
        directory = tmp_path / "ledger"
        with ShardedJournal.create(directory, method="aps",
                                   shard_count=2) as ledger:
            ledger.append_eval(_key(0), 1.5)
        headers = read_journal_headers(tmp_path)
        assert len(headers) == len(list(directory.glob("shard-*.jsonl")))
        assert all(h["schema"] == CHECKPOINT_SCHEMA for h in headers)
        assert all(h["method"] == "aps" for h in headers)

    def test_empty_directory_degenerates_to_create(self, tmp_path):
        ledger, evals = ShardedJournal.open_resume(tmp_path / "fresh",
                                                   method="aps")
        ledger.close()
        assert evals == []


class TestLedgerCrashTolerance:
    def _ledger_with_entries(self, tmp_path) -> "tuple":
        directory = tmp_path / "ledger"
        keys = [_key(i) for i in range(24)]
        with ShardedJournal.create(directory, method="aps",
                                   shard_count=4) as ledger:
            ledger.append_evals([(k, float(i)) for i, k in enumerate(keys)])
        return directory, keys

    def test_torn_tail_on_one_shard_heals_locally(self, tmp_path):
        directory, keys = self._ledger_with_entries(tmp_path)
        victim = sorted(directory.glob("shard-*.jsonl"))[0]
        intact = len(load_journal(victim)[1])
        with open(victim, "a") as handle:
            handle.write('{"type": "eval", "k": [["a0", "f", "0.')
        resumed, evals = ShardedJournal.open_resume(directory, method="aps")
        resumed.close()
        # Only the torn line is lost; every other shard is untouched.
        assert len(evals) == len(keys)
        assert len(load_journal(victim)[1]) == intact

    def test_method_mismatch_refuses_resume(self, tmp_path):
        directory, _keys = self._ledger_with_entries(tmp_path)
        with pytest.raises(CheckpointError):
            ShardedJournal.open_resume(directory, method="ga")

    def test_shard_count_mismatch_refuses_resume(self, tmp_path):
        directory, _keys = self._ledger_with_entries(tmp_path)
        with pytest.raises(CheckpointError):
            ShardedJournal.open_resume(directory, method="aps",
                                       shard_count=8)

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            ShardedJournal(tmp_path / "x", shard_count=0)


class TestDefaultsWiring:
    def test_sharded_defaults_route_budget_journaling(self, tmp_path,
                                                      surrogate, configs):
        from repro.dse.evaluate import BudgetedEvaluator
        sweep = configs[:12]
        set_checkpoint_defaults(directory=tmp_path, sharded=True,
                                ledger_shards=4)
        budget = BudgetedEvaluator(surrogate, method="aps")
        budget.evaluate_batch(sweep)
        budget.close()
        shard_files = list((tmp_path / "aps").glob("shard-*.jsonl"))
        assert shard_files

        # Resume through the same defaults restores the full union and
        # replays charges exactly-once.
        set_checkpoint_defaults(directory=tmp_path, resume=True,
                                sharded=True, ledger_shards=4)
        resumed = BudgetedEvaluator(surrogate, method="aps")
        costs = resumed.evaluate_batch(sweep)
        resumed.close()
        assert resumed.evaluations == budget.evaluations
        assert (costs == [surrogate.evaluate(c) for c in sweep]).all()
        # No double journaling after the resumed replay.
        _ledger, evals = ShardedJournal.open_resume(tmp_path / "aps",
                                                    method="aps")
        _ledger.close()
        keys = [k for k, _ in evals]
        assert len(keys) == len(set(keys)) == budget.evaluations
