"""Retry/backoff/deadline primitives: deterministic by construction."""

from __future__ import annotations

import pytest

from repro.errors import (
    EvaluationTimeoutError,
    FatalError,
    InvalidParameterError,
    RetryExhaustedError,
    TransientError,
    WorkerCrashError,
)
from repro.resilience import Deadline, RetryPolicy, deterministic_unit, retry_call


class TestDeterministicUnit:
    def test_range_and_stability(self):
        u = deterministic_unit("retry-jitter", 0, 1)
        assert 0.0 <= u < 1.0
        assert u == deterministic_unit("retry-jitter", 0, 1)

    def test_distinct_inputs_distinct_values(self):
        values = {deterministic_unit("j", seed, attempt)
                  for seed in range(4) for attempt in range(1, 5)}
        assert len(values) == 16


class TestRetryPolicy:
    def test_delay_schedule_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        assert [policy.delay(k) for k in (1, 2, 3, 4, 5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_and_reproducible(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25,
                             seed=7)
        delays = [policy.delay(k) for k in range(1, 20)]
        assert delays == [policy.delay(k) for k in range(1, 20)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1  # jitter actually de-synchronizes

    def test_with_seed_changes_schedule_only(self):
        policy = RetryPolicy(jitter=0.5)
        other = policy.with_seed(99)
        assert other.max_attempts == policy.max_attempts
        assert other.delay(1) != policy.delay(1)

    def test_retryable_follows_the_taxonomy(self):
        policy = RetryPolicy()
        assert policy.retryable(TransientError("x"))
        assert policy.retryable(WorkerCrashError("x"))
        assert policy.retryable(EvaluationTimeoutError("x"))
        assert not policy.retryable(FatalError("x"))
        assert not policy.retryable(RetryExhaustedError("x"))
        assert not policy.retryable(ValueError("outside the taxonomy"))

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0}, {"base_delay": -1.0}, {"multiplier": 0.5},
        {"jitter": 1.5}, {"max_delay": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(**kwargs)

    def test_delay_needs_positive_attempt(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy().delay(0)


class TestDeadline:
    def test_fake_clock(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert deadline.remaining() == 5.0
        assert not deadline.expired
        now[0] += 4.0
        assert deadline.elapsed() == 4.0
        assert deadline.remaining() == 1.0
        now[0] += 2.0
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Deadline(0.0)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self, fresh_registry):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("not yet")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0)
        assert retry_call(flaky, policy=policy,
                          sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert sleeps == [0.5, 1.0]  # the deterministic schedule
        counters = fresh_registry.snapshot()["counters"]
        assert counters["resilience.retries"] == 2
        assert counters.get("resilience.giveups", 0) == 0

    def test_exhaustion_raises_fatal_and_chains(self, fresh_registry):
        def always():
            raise TransientError("still broken")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as err:
            retry_call(always, policy=policy, sleep=lambda s: None,
                       what="doomed call")
        assert err.value.attempts == 2
        assert isinstance(err.value.last_error, TransientError)
        assert isinstance(err.value, FatalError)  # never retried again
        assert "doomed call" in str(err.value)
        assert fresh_registry.snapshot()["counters"][
            "resilience.giveups"] == 1

    def test_fatal_and_unknown_errors_propagate_immediately(self):
        def fatal():
            raise FatalError("no point")

        def unknown():
            raise ValueError("outside the taxonomy")

        with pytest.raises(FatalError):
            retry_call(fatal, sleep=lambda s: None)
        with pytest.raises(ValueError):
            retry_call(unknown, sleep=lambda s: None)

    def test_deadline_stops_retrying(self):
        now = [0.0]
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            now[0] += 10.0  # each attempt burns the whole budget
            raise TransientError("slow failure")

        deadline = Deadline(5.0, clock=lambda: now[0])
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            retry_call(flaky, policy=policy, sleep=lambda s: None,
                       deadline=deadline)
        assert calls["n"] == 1  # no second attempt after expiry

    def test_on_retry_hook_observes_the_schedule(self):
        seen: list[tuple[int, str]] = []

        def flaky():
            raise TransientError("again")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            retry_call(flaky, policy=policy, sleep=lambda s: None,
                       on_retry=lambda k, e: seen.append((k, str(e))))
        assert seen == [(1, "again"), (2, "again")]


class TestDeadlineAwareBackoff:
    """Backoff sleeps are clamped to the job's remaining deadline:
    retry_call gives up *before* a sleep that would outlive it."""

    def test_no_sleep_past_deadline(self, fresh_registry):
        now = [0.0]
        sleeps: list[float] = []

        def tick_sleep(s):
            sleeps.append(s)
            now[0] += s

        def flaky():
            now[0] += 1.0  # each attempt costs one second
            raise TransientError("busy")

        # 3.5 s budget, 2 s backoff: attempt(1s) + sleep(2s) + attempt(1s)
        # leaves 0.5 s < 2 s — the second sleep must never happen.
        deadline = Deadline(3.5, clock=lambda: now[0])
        policy = RetryPolicy(max_attempts=10, base_delay=2.0,
                             multiplier=1.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as err:
            retry_call(flaky, policy=policy, sleep=tick_sleep,
                       deadline=deadline)
        assert sleeps == [2.0]
        assert err.value.attempts == 2
        # Every recorded sleep fit inside the budget at the time it ran.
        assert now[0] <= 3.5 + 2.0  # attempts may spill, sleeps may not
        assert fresh_registry.snapshot()["counters"][
            "resilience.giveups"] == 1

    def test_gives_up_instead_of_first_sleep(self):
        now = [0.0]
        sleeps: list[float] = []

        def flaky():
            raise TransientError("busy")

        deadline = Deadline(1.0, clock=lambda: now[0])
        policy = RetryPolicy(max_attempts=5, base_delay=5.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as err:
            retry_call(flaky, policy=policy, sleep=sleeps.append,
                       deadline=deadline)
        assert sleeps == []  # 5 s backoff >= 1 s budget: never slept
        assert err.value.attempts == 1

    def test_unlimited_deadline_never_clamps(self):
        sleeps: list[float] = []

        def flaky():
            raise TransientError("busy")

        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            retry_call(flaky, policy=policy, sleep=sleeps.append,
                       deadline=Deadline(None))
        assert sleeps == [0.5, 1.0]

    def test_c2l006_requires_injected_sleep(self):
        # The clamp path must stay lint-clean: retry_call's module may
        # not call time.sleep directly (C2L006).
        from repro.analysis.engine import lint_paths

        result = lint_paths(["src/repro/resilience/policy.py"],
                            rules=["C2L006"])
        assert not result.diagnostics
