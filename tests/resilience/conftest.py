"""Fixtures for the resilience suite: evaluators, spaces, isolation.

Checkpoint defaults and the metrics registry are process-wide; the
autouse fixtures here guarantee every test starts with journaling off
and a private registry, so chaos tests cannot leak state into each
other (or into the rest of the suite).
"""

from __future__ import annotations

import pytest

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse.evaluate import SurrogateEvaluator
from repro.dse.space import DesignSpace, Parameter
from repro.laws.gfunction import PowerLawG
from repro.obs import MetricsRegistry, set_registry
from repro.resilience import set_checkpoint_defaults


@pytest.fixture(autouse=True)
def fresh_registry() -> MetricsRegistry:
    """Swap in a private process-wide registry for the test's duration."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@pytest.fixture(autouse=True)
def _no_checkpoint_defaults():
    """Every test starts (and ends) with process-wide journaling off."""
    set_checkpoint_defaults(directory=None)
    yield
    set_checkpoint_defaults(directory=None)


@pytest.fixture
def app() -> ApplicationProfile:
    return ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                              g=PowerLawG(1.0))


@pytest.fixture
def machine() -> MachineParameters:
    return MachineParameters(total_area=400.0, shared_area=40.0)


@pytest.fixture
def surrogate(app, machine) -> SurrogateEvaluator:
    return SurrogateEvaluator(app, machine)


@pytest.fixture
def small_space() -> DesignSpace:
    return DesignSpace([
        Parameter("a0", (0.25, 0.5, 1.0, 2.0)),
        Parameter("a1", (0.1, 0.25, 0.5, 1.0)),
        Parameter("a2", (0.5, 1.0, 2.0, 4.0)),
        Parameter("n", (2, 8, 32, 64)),
        Parameter("issue_width", (1, 2, 4, 8)),
        Parameter("rob_size", (32, 128, 512)),
    ])


@pytest.fixture
def configs(small_space) -> list:
    """A deterministic mixed batch: every 9th point of the space."""
    return [small_space.config_at(i)
            for i in range(0, small_space.size, 9)]
