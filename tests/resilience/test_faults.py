"""The fault-injection harness itself: deterministic, bounded, transparent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FatalError, InvalidParameterError, TransientError
from repro.resilience import (
    Fault,
    FaultInjector,
    FaultPlan,
    FaultyEvaluator,
    config_token,
    corrupt_cache_entries,
)
from repro.sim.cache_store import SimCacheStore


class TestConfigToken:
    def test_stable_and_order_insensitive(self):
        a = {"n": 8, "a0": 0.5, "issue_width": 2}
        b = {"issue_width": 2, "a0": 0.5, "n": 8}
        assert config_token(a) == config_token(b)
        assert len(config_token(a)) == 16

    def test_distinct_configs_distinct_tokens(self):
        assert config_token({"n": 8}) != config_token({"n": 16})


class TestFaultValidation:
    def test_unknown_kind(self):
        with pytest.raises(InvalidParameterError):
            Fault(kind="meteor", token="t")

    def test_bad_times(self):
        with pytest.raises(InvalidParameterError):
            Fault(kind="transient", token="t", times=0)

    def test_bad_delay(self):
        with pytest.raises(InvalidParameterError):
            Fault(kind="delay", token="t", delay_s=-1.0)


class TestFuses:
    def test_times_bounds_across_injectors(self, tmp_path):
        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="transient", token="t",
                                       times=2),))
        # Two injector instances share the on-disk fuses — the way a
        # rebuilt pool's fresh workers do.
        first, second = plan.injector(), plan.injector()
        with pytest.raises(TransientError):
            first.fire("t")
        with pytest.raises(TransientError):
            second.fire("t")
        first.fire("t")   # burned out: no-ops from here on
        second.fire("t")

    def test_unbounded_fault_always_fires(self, tmp_path):
        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="transient", token="t",
                                       times=None),))
        injector = plan.injector()
        for _ in range(5):
            with pytest.raises(TransientError):
                injector.fire("t")

    def test_worker_only_skips_the_parent(self, tmp_path):
        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="fatal", token="t",
                                       worker_only=True),))
        plan.injector().fire("t")  # we *are* the parent: nothing happens

    def test_delay_uses_the_injected_sleep(self, tmp_path):
        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="delay", token="t",
                                       delay_s=30.0),))
        slept: list[float] = []
        FaultInjector(plan, sleep=slept.append).fire("t")
        assert slept == [30.0]

    def test_fatal_raises(self, tmp_path):
        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="fatal", token="t"),))
        with pytest.raises(FatalError):
            plan.injector().fire("t")

    def test_unmatched_token_is_a_no_op(self, tmp_path):
        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="fatal", token="t"),))
        plan.injector().fire("someone-else")


class TestFaultyEvaluator:
    def test_transparent_when_no_fault_fires(self, tmp_path, surrogate,
                                             configs):
        plan = FaultPlan(seed=0, state_dir=str(tmp_path))
        faulty = FaultyEvaluator(surrogate, plan)
        want = surrogate.evaluate_batch(configs)
        got = faulty.evaluate_batch(configs)
        assert (got == want).all()
        assert faulty.evaluate(configs[0]) == float(want[0])
        assert faulty.is_feasible(configs[0])

    def test_fault_lands_on_its_own_configuration(self, tmp_path,
                                                  surrogate, configs):
        victim = configs[3]
        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="transient",
                                       token=config_token(victim)),))
        faulty = FaultyEvaluator(surrogate, plan)
        assert faulty.evaluate(configs[0]) == float(
            surrogate.evaluate(configs[0]))
        with pytest.raises(TransientError):
            faulty.evaluate(victim)
        # Fuse burned: the retry succeeds with the exact cost.
        assert faulty.evaluate(victim) == float(surrogate.evaluate(victim))

    def test_survives_pickling(self, tmp_path, surrogate, configs):
        import pickle

        plan = FaultPlan(seed=0, state_dir=str(tmp_path),
                         faults=(Fault(kind="transient",
                                       token=config_token(configs[0])),))
        clone = pickle.loads(pickle.dumps(FaultyEvaluator(surrogate, plan)))
        with pytest.raises(TransientError):
            clone.evaluate(configs[0])


def _seeded_store(root) -> SimCacheStore:
    import hashlib

    store = SimCacheStore(root)
    for i in range(8):
        key = hashlib.sha256(f"entry-{i}".encode()).hexdigest()
        store.put(key, float(i))
    return store


class TestCorruptCacheEntries:
    def test_deterministic_pick(self, tmp_path):
        _seeded_store(tmp_path / "cache")
        picked = corrupt_cache_entries(tmp_path / "cache", seed=11,
                                       fraction=0.5)
        # A second identical store corrupted with the same seed loses
        # the same entries.
        _seeded_store(tmp_path / "cache2")
        picked2 = corrupt_cache_entries(tmp_path / "cache2", seed=11,
                                        fraction=0.5)
        assert [p.name for p in picked] == [p.name for p in picked2]
        assert len(picked) == 4

    def test_counter_and_validation(self, tmp_path, fresh_registry):
        _seeded_store(tmp_path / "cache")
        picked = corrupt_cache_entries(tmp_path / "cache", seed=1,
                                       fraction=0.25, mode="garbage")
        assert fresh_registry.snapshot()["counters"][
            "resilience.faults.cache_corrupted"] == len(picked)
        with pytest.raises(InvalidParameterError):
            corrupt_cache_entries(tmp_path / "cache", seed=1, fraction=2.0)
        with pytest.raises(InvalidParameterError):
            corrupt_cache_entries(tmp_path / "cache", seed=1, mode="melt")

    def test_empty_store_is_a_no_op(self, tmp_path):
        assert corrupt_cache_entries(tmp_path, seed=0) == []

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "wrong_type"])
    def test_each_mode_defeats_json_parsing(self, tmp_path, mode):
        _seeded_store(tmp_path / "cache")
        picked = corrupt_cache_entries(tmp_path / "cache", seed=3,
                                       fraction=0.3, mode=mode)
        import json
        for path in picked:
            try:
                entry = json.loads(path.read_bytes())
                float(entry["cost"])
            except (ValueError, KeyError, TypeError):
                continue
            raise AssertionError(f"{mode} left {path} readable")
