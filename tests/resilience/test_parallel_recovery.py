"""ParallelEvaluator under injected faults: recovery must be invisible.

The contract under test is the ISSUE's acceptance criterion: a sweep
that loses workers, times out chunks, or sees transient failures must
hand back results bit-identical to a fault-free run, with exactly-once
budget charging on the wrapping ``BudgetedEvaluator``.
"""

from __future__ import annotations

import pytest

from repro.dse.batch import ParallelEvaluator
from repro.dse.evaluate import BudgetedEvaluator, batch_evaluate
from repro.errors import FatalError
from repro.resilience import (
    Fault,
    FaultPlan,
    FaultyEvaluator,
    RetryPolicy,
    config_token,
)

NO_JITTER = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)


@pytest.fixture
def sweep(configs):
    """A deterministic 48-point sweep: several chunks per round."""
    return configs[:48]


def _plan(tmp_path, *faults) -> FaultPlan:
    return FaultPlan(seed=5, state_dir=str(tmp_path / "fuse"),
                     faults=tuple(faults))


class TestWorkerCrashRecovery:
    def test_broken_pool_mid_sweep_is_bit_identical(
            self, tmp_path, surrogate, sweep, fresh_registry):
        want = batch_evaluate(surrogate, sweep)
        victim = sweep[17]
        plan = _plan(tmp_path, Fault(kind="crash",
                                     token=config_token(victim),
                                     worker_only=True))
        parallel = ParallelEvaluator(FaultyEvaluator(surrogate, plan),
                                     workers=2, chunk_size=8,
                                     retry_policy=NO_JITTER,
                                     sleep=lambda s: None)
        budget = BudgetedEvaluator(parallel)
        try:
            got = budget.evaluate_batch(sweep)
        finally:
            parallel.close()
        assert (got == want).all()
        # Exactly-once: every point charged once, none lost or doubled.
        assert budget.evaluations == len(sweep)
        assert budget.evaluations_cached == 0
        counters = fresh_registry.snapshot()["counters"]
        assert counters["dse.evaluations"] == len(sweep)
        assert counters["resilience.worker_crashes"] >= 1
        assert counters["resilience.pool_rebuilds"] >= 1

    def test_persistent_crasher_degrades_to_serial(
            self, tmp_path, surrogate, sweep, fresh_registry):
        want = batch_evaluate(surrogate, sweep)
        victim = sweep[9]
        # times=None: the chunk can never survive a pool attempt.
        plan = _plan(tmp_path, Fault(kind="crash",
                                     token=config_token(victim),
                                     times=None, worker_only=True))
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        parallel = ParallelEvaluator(FaultyEvaluator(surrogate, plan),
                                     workers=2, chunk_size=8,
                                     retry_policy=policy,
                                     sleep=lambda s: None)
        try:
            got = parallel.evaluate_batch(sweep)
        finally:
            parallel.close()
        assert (got == want).all()
        counters = fresh_registry.snapshot()["counters"]
        assert counters["resilience.serial_fallbacks"] >= 1
        assert counters["resilience.worker_crashes"] >= 2

    def test_close_survives_a_broken_pool(self, tmp_path, surrogate,
                                          sweep):
        parallel = ParallelEvaluator(surrogate, workers=2, chunk_size=8,
                                     retry_policy=NO_JITTER,
                                     sleep=lambda s: None)
        parallel.evaluate_batch(sweep)   # spin the pool up
        pool = parallel._pool
        assert pool is not None
        for proc in pool._processes.values():
            proc.terminate()
        parallel.close()                 # must not raise
        parallel.close()                 # idempotent


class TestTransientAndTimeout:
    def test_transient_chunk_retried_without_rebuild(
            self, tmp_path, surrogate, sweep, fresh_registry):
        want = batch_evaluate(surrogate, sweep)
        victim = sweep[5]
        plan = _plan(tmp_path, Fault(kind="transient",
                                     token=config_token(victim), times=2))
        sleeps: list[float] = []
        parallel = ParallelEvaluator(FaultyEvaluator(surrogate, plan),
                                     workers=2, chunk_size=8,
                                     retry_policy=NO_JITTER,
                                     sleep=sleeps.append)
        try:
            got = parallel.evaluate_batch(sweep)
        finally:
            parallel.close()
        assert (got == want).all()
        counters = fresh_registry.snapshot()["counters"]
        assert counters["resilience.retries"] == 2
        assert counters.get("resilience.pool_rebuilds", 0) == 0
        # Backoff follows the policy's deterministic schedule.
        assert sleeps == [NO_JITTER.delay(1), NO_JITTER.delay(2)]

    def test_chunk_timeout_recovers(self, tmp_path, surrogate, sweep,
                                    fresh_registry):
        want = batch_evaluate(surrogate, sweep)
        victim = sweep[3]
        plan = _plan(tmp_path, Fault(kind="delay",
                                     token=config_token(victim),
                                     delay_s=30.0))
        parallel = ParallelEvaluator(FaultyEvaluator(surrogate, plan),
                                     workers=2, chunk_size=8,
                                     chunk_timeout=1.0,
                                     retry_policy=NO_JITTER,
                                     sleep=lambda s: None)
        try:
            got = parallel.evaluate_batch(sweep)
        finally:
            parallel.close()
        assert (got == want).all()
        counters = fresh_registry.snapshot()["counters"]
        assert counters["resilience.chunk_timeouts"] >= 1
        assert counters["resilience.pool_rebuilds"] >= 1

    def test_fatal_fault_propagates(self, tmp_path, surrogate, sweep):
        plan = _plan(tmp_path, Fault(kind="fatal",
                                     token=config_token(sweep[0])))
        parallel = ParallelEvaluator(FaultyEvaluator(surrogate, plan),
                                     workers=2, chunk_size=8,
                                     retry_policy=NO_JITTER,
                                     sleep=lambda s: None)
        try:
            with pytest.raises(FatalError):
                parallel.evaluate_batch(sweep)
        finally:
            parallel.close()


class TestSerialPaths:
    def test_workers_1_batch_retries_inline(self, tmp_path, surrogate,
                                            sweep, fresh_registry):
        want = batch_evaluate(surrogate, sweep[:8])
        plan = _plan(tmp_path, Fault(kind="transient",
                                     token=config_token(sweep[2])))
        sleeps: list[float] = []
        parallel = ParallelEvaluator(FaultyEvaluator(surrogate, plan),
                                     workers=1, retry_policy=NO_JITTER,
                                     sleep=sleeps.append)
        got = parallel.evaluate_batch(sweep[:8])
        parallel.close()
        assert (got == want).all()
        assert sleeps == [NO_JITTER.delay(1)]
        assert fresh_registry.snapshot()["counters"][
            "resilience.retries"] == 1

    def test_scalar_evaluate_retries(self, tmp_path, surrogate, sweep):
        config = sweep[0]
        plan = _plan(tmp_path, Fault(kind="transient",
                                     token=config_token(config)))
        parallel = ParallelEvaluator(FaultyEvaluator(surrogate, plan),
                                     workers=1, retry_policy=NO_JITTER,
                                     sleep=lambda s: None)
        assert parallel.evaluate(config) == float(
            surrogate.evaluate(config))
        parallel.close()
