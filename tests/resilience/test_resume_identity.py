"""Kill-and-resume round trips: resumed searches are bit-identical.

Two interruption shapes are exercised end to end:

- a *torn* run — the journal is truncated mid-stream, as a crash
  between appends would leave it;
- a *killed* run — a child process hard-exits (``ExitAfter``, the
  deterministic SIGKILL stand-in) mid-sweep and the parent resumes from
  the journal the corpse left behind.

In both cases the resumed search must reproduce the uninterrupted
run's result AND its budget accounting exactly.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.cli import main
from repro.dse import SurrogateEvaluator, brute_force_search, genetic_search
from repro.obs import RunManifest, stable_view
from repro.resilience import (
    CRASH_EXIT_STATUS,
    load_journal,
    set_checkpoint_defaults,
)


class TestTornJournalResume:
    def test_ga_resume_matches_uninterrupted_run(self, tmp_path, app,
                                                 machine, surrogate,
                                                 small_space):
        kwargs = dict(population=8, generations=4, seed=4)
        baseline = genetic_search(small_space, surrogate, **kwargs)

        # A checkpointed run whose journal we then tear mid-stream.
        set_checkpoint_defaults(directory=tmp_path)
        genetic_search(small_space, SurrogateEvaluator(app, machine),
                       **kwargs)
        journal_path = tmp_path / "ga.jsonl"
        lines = journal_path.read_text().splitlines()
        assert len(lines) > 12  # header + enough evals to truncate
        journal_path.write_text("\n".join(lines[:11]) + "\n")

        set_checkpoint_defaults(directory=tmp_path, resume=True)
        resumed = genetic_search(small_space,
                                 SurrogateEvaluator(app, machine), **kwargs)
        assert resumed.best_config == baseline.best_config
        assert resumed.best_cost == baseline.best_cost
        # Replayed points count as the fresh charges they were, so the
        # budget matches the uninterrupted run exactly.
        assert resumed.evaluations == baseline.evaluations
        # The healed journal now ledgers the full run, duplicate-free.
        _, evals, _ = load_journal(journal_path)
        assert len(evals) == len({k for k, _ in evals})
        assert len(evals) == baseline.evaluations


_CHILD_SCRIPT = """\
import sys
from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse import SurrogateEvaluator, brute_force_search
from repro.dse.space import DesignSpace, Parameter
from repro.laws.gfunction import PowerLawG
from repro.resilience import ExitAfter, set_checkpoint_defaults

app = ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                         g=PowerLawG(1.0))
machine = MachineParameters(total_area=400.0, shared_area=40.0)
space = DesignSpace([
    Parameter("a0", (0.25, 0.5, 1.0, 2.0)),
    Parameter("a1", (0.1, 0.25, 0.5, 1.0)),
    Parameter("a2", (0.5, 1.0, 2.0, 4.0)),
    Parameter("n", (2, 8, 32, 64)),
    Parameter("issue_width", (1, 2, 4, 8)),
    Parameter("rob_size", (32, 128, 512)),
])
set_checkpoint_defaults(directory=sys.argv[1])
evaluator = ExitAfter(SurrogateEvaluator(app, machine), n=int(sys.argv[2]))
brute_force_search(space, evaluator, batch_size=64)
raise SystemExit("unreachable: ExitAfter must have killed the sweep")
"""


class TestKilledProcessResume:
    def test_child_killed_mid_sweep_then_resume_bit_identical(
            self, tmp_path, surrogate, small_space):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, str(tmp_path), "500"],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == CRASH_EXIT_STATUS, proc.stderr

        # The corpse left a usable partial journal behind.
        journal_path = tmp_path / "brute.jsonl"
        _, partial, _ = load_journal(journal_path)
        assert 0 < len(partial) < small_space.size

        baseline = brute_force_search(small_space, surrogate)
        set_checkpoint_defaults(directory=tmp_path, resume=True)
        resumed = brute_force_search(small_space, surrogate)
        assert resumed.best_config == baseline.best_config
        assert resumed.best_cost == baseline.best_cost
        assert resumed.evaluations == baseline.evaluations
        assert resumed.skipped_infeasible == baseline.skipped_infeasible
        _, evals, _ = load_journal(journal_path)
        assert len(evals) == baseline.evaluations


class TestCLIAndManifest:
    def test_resume_requires_checkpoint(self, capsys):
        assert main(["fig12", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_lineage_is_volatile_in_stable_view(self):
        a = RunManifest("exp", config={"x": 1}, run_id="runA")
        b = RunManifest("exp", config={"x": 1}, run_id="runB")
        b.set_lineage(resumed=True, parent_run_ids=["runA"])
        view_a, view_b = stable_view(a.finish()), stable_view(b.finish())
        for view in (view_a, view_b):
            for key in ("run_id", "lineage", "started_at", "wall_time_s",
                        "git_sha"):
                assert key not in view
        assert {k: v for k, v in view_a.items() if k != "metrics"} == \
               {k: v for k, v in view_b.items() if k != "metrics"}
        full = b.finish()
        assert full["run_id"] == "runB"
        assert full["lineage"]["parent_run_ids"] == ["runA"]
