"""The c2bound.jobs/1 registry: replay, torn tails, refusal to guess."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.resilience import JOBS_SCHEMA, JobRegistry, replay_registry


def submit(reg, job_id, seq, *, tenant="t", priority=5, spec=None):
    reg.append_submit(job_id=job_id, tenant=tenant, priority=priority,
                      seq=seq, spec=spec or {"kind": "sweep"})


class TestRoundTrip:
    def test_create_and_replay(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        reg = JobRegistry.create(path, meta={"port": 1})
        submit(reg, "a", 0)
        submit(reg, "b", 1)
        reg.append_done(job_id="a", status="done", charged=5,
                        result={"best_cost": "1.0"})
        reg.close()

        replay = replay_registry(path)
        assert [s["job"] for s in replay.submits] == ["a", "b"]
        assert [s["job"] for s in replay.pending] == ["b"]
        assert replay.terminal["a"]["charged"] == 5
        assert replay.next_seq == 2

    def test_cancel_is_terminal(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        reg = JobRegistry.create(path)
        submit(reg, "a", 0)
        reg.append_cancel(job_id="a")
        reg.close()
        replay = replay_registry(path)
        assert replay.pending == []
        assert replay.terminal["a"]["status"] == "cancelled"
        assert replay.terminal["a"]["charged"] == 0

    def test_open_resume_missing_file_creates(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        reg, replay = JobRegistry.open_resume(path)
        assert replay.submits == [] and replay.next_seq == 0
        submit(reg, "a", 0)
        reg.close()
        assert path.exists()

    def test_open_resume_appends_after_replay(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        reg = JobRegistry.create(path)
        submit(reg, "a", 0)
        reg.close()

        reg2, replay = JobRegistry.open_resume(path)
        assert replay.next_seq == 1
        submit(reg2, "b", replay.next_seq)
        reg2.close()
        final = replay_registry(path)
        assert [s["seq"] for s in final.submits] == [0, 1]

    def test_non_terminal_status_refused(self, tmp_path):
        reg = JobRegistry.create(tmp_path / "jobs.jsonl")
        with pytest.raises(CheckpointError):
            reg.append_done(job_id="a", status="running", charged=0,
                            result=None)
        reg.close()


class TestCrashSafety:
    def test_torn_tail_healed(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        reg = JobRegistry.create(path)
        submit(reg, "a", 0)
        submit(reg, "b", 1)
        reg.close()
        with open(path, "a") as fh:
            fh.write('{"type": "done", "job": "a", "stat')  # torn write

        reg2, replay = JobRegistry.open_resume(path)
        reg2.close()
        # The torn record is dropped: "a" is still pending…
        assert [s["job"] for s in replay.pending] == ["a", "b"]
        # …and the file itself was healed (every line parses now).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_corrupt_middle_refused(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        reg = JobRegistry.create(path)
        submit(reg, "a", 0)
        reg.close()
        text = path.read_text().splitlines()
        text.insert(1, "not json at all")
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(CheckpointError):
            replay_registry(path)

    def test_missing_header_refused(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"type": "submit", "job": "a", "seq": 0}\n')
        with pytest.raises(CheckpointError):
            replay_registry(path)

    def test_wrong_schema_refused(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "schema": "c2bound.checkpoint/1"}) + "\n")
        with pytest.raises(CheckpointError):
            replay_registry(path)

    def test_unknown_record_type_refused(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        reg = JobRegistry.create(path)
        reg.close()
        with open(path, "a") as fh:
            fh.write('{"type": "mystery"}\n')
        with pytest.raises(CheckpointError):
            replay_registry(path)

    def test_schema_constant(self):
        assert JOBS_SCHEMA == "c2bound.jobs/1"
