"""Hypothesis properties: exactly-once budgets, deterministic order.

The two service-level invariants the chaos gate relies on, checked
over *arbitrary* interleavings rather than the handful of scripted
ones in ``test_state.py``:

1. However submit / start / complete / fail / cancel / crash+restart
   interleave, each tenant is charged each job's evaluations **exactly
   once** — replay never double-charges and never forgets a settled
   charge.
2. Queue ordering is a pure function of ``(priority, seq)``: any
   offer permutation, with or without a mid-stream crash/restart,
   drains in the same order.  No wall-clock input exists to disagree.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AdmissionError
from repro.service import AdmissionQueue, JobRequest, QueueEntry, ServiceState

SPEC = {"kind": "sweep",
        "space": {"params": [{"name": "n", "values": [1]}]}}

TENANTS = ("alice", "bob", "carol")

# One abstract action per draw; indices are resolved modulo the live
# population at apply time so every generated program is valid.
ACTIONS = st.one_of(
    st.tuples(st.just("submit"), st.sampled_from(TENANTS),
              st.integers(0, 9)),
    st.tuples(st.just("start"), st.just(None), st.just(None)),
    st.tuples(st.just("complete"), st.integers(0, 50), st.integers(0, 7)),
    st.tuples(st.just("fail"), st.just(None), st.integers(0, 7)),
    st.tuples(st.just("cancel"), st.just(None), st.integers(0, 7)),
    st.tuples(st.just("crash"), st.just(None), st.just(None)),
)


class Driver:
    """Applies an abstract action program to a real ServiceState."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.state = ServiceState(root)
        self.running: "list[str]" = []
        self.queued: "list[str]" = []
        self.expected: "dict[str, int]" = {}

    def apply(self, action) -> None:
        kind, a, b = action
        getattr(self, kind)(a, b)

    def submit(self, tenant, priority) -> None:
        try:
            job = self.state.submit(JobRequest(
                tenant=tenant, priority=priority, deadline_s=None,
                spec=dict(SPEC)))
        except AdmissionError:
            return
        self.queued.append(job.job_id)

    def start(self, _a, _b) -> None:
        job = self.state.next_job()
        if job is not None:
            self.queued.remove(job.job_id)
            self.running.append(job.job_id)

    def complete(self, evaluations, index) -> None:
        if not self.running:
            return
        job_id = self.running.pop(index % len(self.running))
        job = self.state.jobs[job_id]
        self.state.complete(job_id, {"evaluations": evaluations})
        self.expected[job.tenant] = (self.expected.get(job.tenant, 0)
                                     + evaluations)

    def fail(self, _a, index) -> None:
        if not self.running:
            return
        job_id = self.running.pop(index % len(self.running))
        self.state.fail(job_id, error="boom")

    def cancel(self, _a, index) -> None:
        if not self.queued:
            return
        job_id = self.queued[index % len(self.queued)]
        if self.state.cancel(job_id):
            self.queued.remove(job_id)

    def crash(self, _a, _b) -> None:
        """SIGKILL analogue: drop all live state, replay the registry."""
        self.state.registry.close()
        self.state = ServiceState(self.root)
        # Whatever was running died with the process; replay re-queues
        # every non-terminal job.
        self.queued = [j.job_id for j in self.state.jobs.values()
                       if j.status == "queued"]
        self.running = []


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(ACTIONS, min_size=1, max_size=40))
def test_no_interleaving_double_charges(program):
    with tempfile.TemporaryDirectory() as tmp:
        driver = Driver(Path(tmp) / "state")
        for action in program:
            driver.apply(action)
        # A final crash/replay must not change a single charge…
        driver.crash(None, None)
        assert driver.state.accounts.charged == {
            t: n for t, n in driver.expected.items() if n}
        # …and draining the survivors to completion charges each of
        # them exactly once too.
        while True:
            driver.start(None, None)
            if not driver.running:
                break
            driver.complete(5, 0)
        driver.crash(None, None)
        assert driver.state.accounts.charged == {
            t: n for t, n in driver.expected.items() if n}
        driver.state.close()


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.permutations(list(range(12))),
       st.lists(st.tuples(st.integers(0, 9), st.sampled_from(TENANTS)),
                min_size=12, max_size=12))
def test_queue_order_is_pure_in_priority_and_seq(perm, meta):
    entries = [QueueEntry(priority=meta[i][0], seq=i, tenant=meta[i][1],
                          job_id=f"job-{i}") for i in range(12)]
    queue = AdmissionQueue(max_depth=64)
    for index in perm:
        queue.offer(entries[index])
    drained = []
    while True:
        entry = queue.pop_runnable(lambda tenant: True)
        if entry is None:
            break
        drained.append((entry.priority, entry.seq))
    assert drained == sorted((e.priority, e.seq) for e in entries)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.sampled_from(TENANTS), st.integers(0, 9)),
                min_size=1, max_size=12),
       st.integers(0, 11))
def test_restart_preserves_schedule(submissions, cut):
    """The drain order of a restarted server equals the uninterrupted
    drain order — scheduling depends on durable state only."""
    def drain(state, limit=None):
        order = []
        while limit is None or len(order) < limit:
            job = state.next_job()
            if job is None:
                break
            order.append(job.seq)
            state.complete(job.job_id, {"evaluations": 1})
        return order

    with tempfile.TemporaryDirectory() as tmp:
        one = ServiceState(Path(tmp) / "uninterrupted")
        two = ServiceState(Path(tmp) / "crashed")
        for tenant, priority in submissions:
            for state in (one, two):
                state.submit(JobRequest(tenant=tenant, priority=priority,
                                        deadline_s=None, spec=dict(SPEC)))
        baseline = drain(one)
        one.close()

        # Crash the twin after an arbitrary number of completions; the
        # revived instance must finish the exact same schedule.
        prefix = drain(two, limit=cut)
        two.registry.close()
        revived = ServiceState(Path(tmp) / "crashed")
        assert prefix + drain(revived) == baseline
        revived.close()
