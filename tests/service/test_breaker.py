"""Circuit breaker transitions under an injected clock."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.service import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_after_s=10.0,
                          clock=clock)


class TestTransitions:
    def test_starts_closed(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_at_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_decays_to_half_open(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()  # probe failed → straight back to OPEN
        assert breaker._state is BreakerState.OPEN
        assert breaker.trips == 2
        clock.now = 19.9
        assert not breaker.allow()  # reset timer restarted at re-trip
        clock.now = 20.0
        assert breaker.allow()

    def test_half_open_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        clock.now = 0.0  # closed state does not depend on the clock
        assert breaker.allow()


class TestValidation:
    def test_bad_threshold(self, clock):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(failure_threshold=0, clock=clock)

    def test_bad_reset(self, clock):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(reset_after_s=0.0, clock=clock)

    def test_snapshot(self, breaker):
        snap = breaker.snapshot()
        assert snap == {"state": "closed", "failures": 0, "trips": 0,
                        "failure_threshold": 3}
