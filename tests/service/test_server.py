"""End-to-end tests of the asyncio HTTP shell (no third-party client:
a minimal stream-based HTTP/1.1 helper drives the real server on an
ephemeral port)."""

from __future__ import annotations

import asyncio
import json

from repro.errors import WorkerCrashError
from repro.service import JobRequest, ServiceConfig, ServiceState, TenantQuota
from repro.service.server import JobServer

SPACE = {"params": [
    {"name": "a0", "values": [2, 4, 8]},
    {"name": "a1", "values": [1, 2]},
    {"name": "a2", "values": [1, 2]},
    {"name": "n", "values": [4, 8, 16]},
]}


def payload(tenant="alice", priority=5, deadline_s=None, evaluator=None):
    body = {"schema": "c2bound.job/1", "tenant": tenant,
            "priority": priority,
            "job": {"kind": "sweep", "space": SPACE}}
    if deadline_s is not None:
        body["deadline_s"] = deadline_s
    if evaluator is not None:
        body["job"]["evaluator"] = evaluator
    return body


async def http(port, method, path, body=None):
    """One request against 127.0.0.1:port → (status, headers, bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(body).encode() if body is not None else b""
    head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(data)}\r\nConnection: close\r\n\r\n")
    writer.write(head.encode() + data)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, payload_bytes = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload_bytes


async def wait_terminal(port, job_id, timeout=60.0):
    loop = asyncio.get_running_loop()
    end = loop.time() + timeout
    while loop.time() < end:
        _, _, raw = await http(port, "GET", f"/v1/jobs/{job_id}")
        doc = json.loads(raw)
        if doc["status"] not in ("queued", "running"):
            return doc
        await asyncio.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


def run_with_server(coro_fn, tmp_path, config=None, **server_kwargs):
    """Start a JobServer, run ``coro_fn(server)``, stop it."""
    async def main():
        state = ServiceState(tmp_path / "state", config)
        server = JobServer(state, port=0, **server_kwargs)
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.stop()
    return asyncio.run(main())


class TestRoutes:
    def test_health_ready_and_discovery(self, tmp_path):
        async def scenario(server):
            status, _, raw = await http(server.port, "GET", "/healthz")
            assert status == 200
            doc = json.loads(raw)
            assert doc["ok"] and "queue" in doc and "breaker" in doc
            status, _, raw = await http(server.port, "GET", "/readyz")
            assert status == 200 and json.loads(raw) == {"ready": True}
            disc = json.loads(
                (server.state.state_dir / "server.json").read_text())
            assert disc["port"] == server.port

        run_with_server(scenario, tmp_path)

    def test_submit_run_result_trace(self, tmp_path):
        async def scenario(server):
            status, _, raw = await http(server.port, "POST", "/v1/jobs",
                                        payload())
            assert status == 202
            job_id = json.loads(raw)["job_id"]
            doc = await wait_terminal(server.port, job_id)
            assert doc["status"] == "done"
            assert doc["charged"] == doc["result"]["evaluations"] > 0
            assert doc["result"]["degraded"] is False
            status, _, raw = await http(server.port, "GET",
                                        f"/v1/jobs/{job_id}/trace")
            assert status == 200
            lines = [json.loads(l) for l in raw.decode().splitlines()]
            assert lines[0]["type"] == "run"
            assert lines[-1]["type"] == "span"
            assert lines[-1]["attrs"]["status"] == "done"

        run_with_server(scenario, tmp_path)

    def test_rejections(self, tmp_path):
        async def scenario(server):
            status, _, _ = await http(server.port, "GET", "/nope")
            assert status == 404
            status, _, _ = await http(server.port, "DELETE", "/v1/jobs/x")
            assert status == 404
            status, _, raw = await http(server.port, "POST", "/v1/jobs",
                                        {"schema": "bogus"})
            assert status == 400
            status, _, _ = await http(server.port, "POST", "/v1/jobs",
                                      payload(priority=99))
            assert status == 400

        run_with_server(scenario, tmp_path)

    def test_backpressure_is_429_with_retry_after(self, tmp_path):
        config = ServiceConfig(max_depth=1)

        async def scenario(server):
            accepted, shed = [], []
            for _ in range(30):
                status, headers, raw = await http(
                    server.port, "POST", "/v1/jobs", payload(priority=9))
                if status == 202:
                    accepted.append(json.loads(raw)["job_id"])
                else:
                    assert status == 429
                    assert float(headers["retry-after"]) > 0
                    shed.append(json.loads(raw)["reason"])
            assert shed, "queue never filled — depth gate untested"
            # Every accepted job still completes.
            for job_id in accepted:
                doc = await wait_terminal(server.port, job_id)
                assert doc["status"] == "done"

        run_with_server(scenario, tmp_path, config=config)

    def test_cancel_queued_job(self, tmp_path):
        config = ServiceConfig(
            quotas={"alice": TenantQuota(max_concurrency=1,
                                         max_queued=16)})

        async def scenario(server):
            ids = []
            for _ in range(4):
                _, _, raw = await http(server.port, "POST", "/v1/jobs",
                                       payload())
                ids.append(json.loads(raw)["job_id"])
            status, _, raw = await http(server.port, "DELETE",
                                        f"/v1/jobs/{ids[-1]}")
            if status == 200:
                assert json.loads(raw)["status"] == "cancelled"
            else:
                assert status == 409  # it already started — legal race
            for job_id in ids[:-1]:
                await wait_terminal(server.port, job_id)

        run_with_server(scenario, tmp_path, config=config)

    def test_deadline_times_out(self, tmp_path):
        async def scenario(server):
            _, _, raw = await http(server.port, "POST", "/v1/jobs",
                                   payload(deadline_s=1e-6))
            doc = await wait_terminal(server.port, json.loads(raw)["job_id"])
            assert doc["status"] == "timeout"
            assert doc["charged"] == 0

        run_with_server(scenario, tmp_path)


class TestDegradation:
    def test_breaker_trips_and_degrades(self, tmp_path, monkeypatch):
        """Simulator jobs that keep crashing trip the breaker; once
        tripped, the tier serves analytic answers marked degraded."""
        from repro.dse.jobs import run_job as real_run_job

        def flaky_run_job(spec, **kwargs):
            if (spec.get("evaluator") or {}).get("type") == "simulator":
                if not kwargs.get("degraded"):
                    raise WorkerCrashError("simulated tier outage")
                clone = dict(spec)
                clone["evaluator"] = {"type": "surrogate"}
                result = real_run_job(clone, **kwargs)
                result["evaluator"] = "simulator"
                return result
            return real_run_job(spec, **kwargs)

        monkeypatch.setattr("repro.service.server.run_job", flaky_run_job)
        config = ServiceConfig(breaker_threshold=2, breaker_reset_s=3600.0)

        async def scenario(server):
            sim = {"type": "simulator", "cache": None}
            docs = []
            for _ in range(3):
                _, _, raw = await http(server.port, "POST", "/v1/jobs",
                                       payload(evaluator=sim))
                docs.append(await wait_terminal(
                    server.port, json.loads(raw)["job_id"]))
            # First failure: breaker still closed → surfaced as failed.
            assert docs[0]["status"] == "failed"
            # Second failure trips it → that very job degrades in place.
            assert docs[1]["status"] == "done"
            assert docs[1]["result"]["degraded"] is True
            # Breaker now open → straight to the ladder, tier untouched.
            assert docs[2]["status"] == "done"
            assert docs[2]["result"]["degraded"] is True
            assert server.state.breaker.trips == 1

        run_with_server(scenario, tmp_path, config=config)


class TestRestartRecovery:
    def test_inflight_jobs_resume_and_charge_once(self, tmp_path):
        """Submit three jobs, 'crash' before any run, restart: every
        job completes with the uninterrupted result and each tenant is
        charged exactly once."""
        from repro.dse.jobs import run_job

        state_dir = tmp_path / "state"
        crashed = ServiceState(state_dir)
        ids = [crashed.submit(JobRequest(
            tenant="alice" if i % 2 == 0 else "bob", priority=i % 3,
            deadline_s=None, spec={"kind": "sweep", "space": SPACE})
        ).job_id for i in range(3)]
        crashed.registry.close()  # SIGKILL analogue: nothing else runs

        expected = run_job({"kind": "sweep", "space": SPACE})

        async def scenario():
            state = ServiceState(state_dir)
            server = JobServer(state, port=0, max_running=2)
            await server.start()
            try:
                for job_id in ids:
                    doc = await wait_terminal(server.port, job_id)
                    assert doc["status"] == "done"
                    assert doc["resumed"] is True
                    assert doc["result"] == expected
                per_job = expected["evaluations"]
                assert state.accounts.charged["alice"] == 2 * per_job
                assert state.accounts.charged["bob"] == per_job
            finally:
                await server.stop()

        asyncio.run(scenario())
