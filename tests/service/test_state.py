"""ServiceState: the sync orchestration core, including crash recovery."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service import (
    JobRequest,
    ServiceConfig,
    ServiceState,
    TenantQuota,
)

SPEC = {"kind": "sweep",
        "space": {"params": [{"name": "n", "values": [1, 2]}]}}


def request(tenant="alice", priority=5, deadline_s=None):
    return JobRequest(tenant=tenant, priority=priority,
                      deadline_s=deadline_s, spec=dict(SPEC))


@pytest.fixture()
def state(tmp_path):
    service = ServiceState(tmp_path / "state")
    yield service
    service.close()


class TestLifecycle:
    def test_submit_to_done(self, state):
        job = state.submit(request())
        assert job.status == "queued"
        running = state.next_job()
        assert running.job_id == job.job_id
        assert running.status == "running"
        state.complete(job.job_id, {"evaluations": 4, "best_cost": "1.0"})
        assert job.status == "done"
        assert job.charged == 4
        assert state.accounts.charged["alice"] == 4

    def test_fail_and_timeout(self, state):
        job = state.submit(request())
        state.next_job()
        state.fail(job.job_id, status="timeout", error="deadline")
        assert job.status == "timeout"
        assert job.error == "deadline"
        assert state.accounts.charged.get("alice", 0) == 0
        with pytest.raises(ServiceError):
            state.fail("nope", error="x")

    def test_fail_rejects_non_failure_status(self, state):
        job = state.submit(request())
        state.next_job()
        with pytest.raises(ServiceError):
            state.fail(job.job_id, status="done")

    def test_cancel_queued_only(self, state):
        job = state.submit(request())
        assert state.cancel(job.job_id)
        assert job.status == "cancelled"
        assert not state.cancel(job.job_id)
        job2 = state.submit(request())
        state.next_job()
        assert not state.cancel(job2.job_id)  # already running

    def test_deadline_threaded_into_spec(self, state):
        job = state.submit(request(deadline_s=4.0))
        assert job.deadline_s == 4.0
        assert job.spec["deadline_s"] == 4.0

    def test_public_document(self, state):
        job = state.submit(request())
        doc = job.public()
        assert doc["status"] == "queued"
        assert doc["job_id"] == job.job_id
        assert "result" not in doc


class TestAdmission:
    def test_queue_backpressure(self, tmp_path):
        config = ServiceConfig(max_depth=1)
        state = ServiceState(tmp_path / "s", config)
        state.submit(request())
        with pytest.raises(AdmissionError) as err:
            state.submit(request(tenant="bob"))
        assert err.value.reason == "queue_full"
        state.close()

    def test_tenant_quota_before_queue(self, tmp_path):
        config = ServiceConfig(
            quotas={"alice": TenantQuota(max_queued=1)})
        state = ServiceState(tmp_path / "s", config)
        state.submit(request())
        with pytest.raises(AdmissionError) as err:
            state.submit(request())
        assert err.value.reason == "tenant_quota"
        state.submit(request(tenant="bob"))  # queue itself has room
        state.close()

    def test_rejected_submission_not_journaled(self, tmp_path):
        config = ServiceConfig(max_depth=1)
        state = ServiceState(tmp_path / "s", config)
        state.submit(request())
        with pytest.raises(AdmissionError):
            state.submit(request())
        state.close()
        reopened = ServiceState(tmp_path / "s", config)
        assert len(reopened.jobs) == 1
        reopened.close()


class TestScheduling:
    def test_priority_order(self, state):
        low = state.submit(request(priority=7))
        high = state.submit(request(tenant="bob", priority=0))
        assert state.next_job().job_id == high.job_id
        assert state.next_job().job_id == low.job_id

    def test_tenant_cap_respected(self, tmp_path):
        config = ServiceConfig(
            quotas={"alice": TenantQuota(max_concurrency=1)})
        state = ServiceState(tmp_path / "s", config)
        a1 = state.submit(request(priority=0))
        state.submit(request(priority=0))
        b1 = state.submit(request(tenant="bob", priority=9))
        assert state.next_job().job_id == a1.job_id
        # alice is at her cap: bob's lower-priority job runs instead.
        assert state.next_job().job_id == b1.job_id
        state.complete(a1.job_id, {"evaluations": 1})
        assert state.next_job().tenant == "alice"
        state.close()


class TestRecovery:
    def test_terminal_jobs_survive_with_results(self, tmp_path):
        state = ServiceState(tmp_path / "s")
        job = state.submit(request())
        state.next_job()
        state.complete(job.job_id, {"evaluations": 3, "best_cost": "2.0"})
        state.close()

        revived = ServiceState(tmp_path / "s")
        back = revived.jobs[job.job_id]
        assert back.status == "done"
        assert back.result["best_cost"] == "2.0"
        assert revived.accounts.charged["alice"] == 3
        assert revived.next_job() is None
        revived.close()

    def test_inflight_jobs_requeued_in_order(self, tmp_path):
        state = ServiceState(tmp_path / "s")
        j1 = state.submit(request(priority=5))
        j2 = state.submit(request(tenant="bob", priority=1))
        j3 = state.submit(request(tenant="carol", priority=5))
        state.next_job()  # j2 starts running, then the process "dies"
        state.close()

        revived = ServiceState(tmp_path / "s")
        assert all(revived.jobs[j.job_id].resumed
                   for j in (j1, j2, j3))
        order = [revived.next_job().job_id for _ in range(3)]
        assert order == [j2.job_id, j1.job_id, j3.job_id]
        revived.close()

    def test_seq_continues_after_restart(self, tmp_path):
        state = ServiceState(tmp_path / "s")
        first = state.submit(request())
        state.close()
        revived = ServiceState(tmp_path / "s")
        second = revived.submit(request())
        assert second.seq == first.seq + 1
        revived.close()

    def test_double_restart_charges_once(self, tmp_path):
        state = ServiceState(tmp_path / "s")
        job = state.submit(request())
        state.next_job()
        state.complete(job.job_id, {"evaluations": 7})
        state.close()
        for _ in range(3):
            revived = ServiceState(tmp_path / "s")
            assert revived.accounts.charged["alice"] == 7
            revived.close()

    def test_health_and_ready(self, state):
        doc = state.health()
        assert doc["ok"] and doc["running"] == 0
        assert state.ready()
