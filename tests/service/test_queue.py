"""Admission queue: backpressure, determinism, fair skipping."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError
from repro.service import AdmissionQueue, QueueEntry


def entry(seq, *, priority=5, tenant="t", job_id=None, size=0):
    return QueueEntry(priority=priority, seq=seq, tenant=tenant,
                      job_id=job_id or f"job-{seq}", size_bytes=size)


class TestBackpressure:
    def test_depth_limit_sheds(self):
        queue = AdmissionQueue(max_depth=2)
        queue.offer(entry(0))
        queue.offer(entry(1))
        with pytest.raises(AdmissionError) as err:
            queue.offer(entry(2))
        assert err.value.reason == "queue_full"
        assert err.value.retry_after_s > 0

    def test_memory_watermark_sheds(self):
        queue = AdmissionQueue(max_depth=10, max_pending_bytes=100)
        queue.offer(entry(0, size=80))
        with pytest.raises(AdmissionError) as err:
            queue.offer(entry(1, size=30))
        assert err.value.reason == "memory_watermark"

    def test_restore_bypasses_gates(self):
        queue = AdmissionQueue(max_depth=1)
        queue.offer(entry(0))
        queue.restore(entry(1))  # recovery must never shed
        assert queue.depth == 2

    def test_pop_releases_bytes(self):
        queue = AdmissionQueue(max_depth=10, max_pending_bytes=100)
        queue.offer(entry(0, size=80))
        assert queue.pop_runnable(lambda t: True).seq == 0
        queue.offer(entry(1, size=90))  # fits again


class TestOrdering:
    def test_priority_then_seq(self):
        queue = AdmissionQueue()
        queue.offer(entry(0, priority=5))
        queue.offer(entry(1, priority=1))
        queue.offer(entry(2, priority=1))
        order = [queue.pop_runnable(lambda t: True).seq for _ in range(3)]
        assert order == [1, 2, 0]

    def test_capped_tenant_skipped_but_keeps_position(self):
        queue = AdmissionQueue()
        queue.offer(entry(0, priority=1, tenant="busy"))
        queue.offer(entry(1, priority=5, tenant="idle"))
        popped = queue.pop_runnable(lambda t: t != "busy")
        assert popped.tenant == "idle"
        # Once "busy" frees a slot its job is first again.
        assert queue.pop_runnable(lambda t: True).tenant == "busy"

    def test_nothing_eligible_returns_none(self):
        queue = AdmissionQueue()
        queue.offer(entry(0, tenant="busy"))
        assert queue.pop_runnable(lambda t: False) is None
        assert queue.depth == 1


class TestCancel:
    def test_cancelled_entry_never_pops(self):
        queue = AdmissionQueue()
        queue.offer(entry(0, job_id="a"))
        queue.offer(entry(1, job_id="b"))
        assert queue.cancel("a")
        assert queue.depth == 1
        assert queue.pop_runnable(lambda t: True).job_id == "b"

    def test_cancel_unknown_is_false(self):
        queue = AdmissionQueue()
        assert not queue.cancel("nope")

    def test_double_cancel_is_false(self):
        queue = AdmissionQueue()
        queue.offer(entry(0, job_id="a"))
        assert queue.cancel("a")
        assert not queue.cancel("a")
