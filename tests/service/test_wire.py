"""Request parsing and the canonical JSON encoding."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.service import JOB_SCHEMA, canonical_json, parse_job_request


def make_payload(**over):
    payload = {
        "schema": JOB_SCHEMA,
        "tenant": "alice",
        "priority": 3,
        "job": {
            "kind": "sweep",
            "space": {"params": [{"name": "n", "values": [1, 2]}]},
        },
    }
    payload.update(over)
    return payload


class TestParse:
    def test_roundtrip(self):
        request = parse_job_request(make_payload())
        assert request.tenant == "alice"
        assert request.priority == 3
        assert request.deadline_s is None
        assert request.spec["kind"] == "sweep"

    def test_deadline_accepted(self):
        request = parse_job_request(make_payload(deadline_s=2.5))
        assert request.deadline_s == 2.5

    @pytest.mark.parametrize("patch", [
        {"schema": "nope"},
        {"tenant": ""},
        {"tenant": 7},
        {"priority": -1},
        {"priority": 10},
        {"priority": True},
        {"priority": "high"},
        {"deadline_s": 0},
        {"deadline_s": -1.0},
        {"job": None},
        {"job": {"kind": "sweep"}},
        {"job": {"kind": "sweep", "space": []}},
    ])
    def test_rejections(self, patch):
        with pytest.raises(InvalidParameterError):
            parse_job_request(make_payload(**patch))

    def test_non_dict_rejected(self):
        with pytest.raises(InvalidParameterError):
            parse_job_request([1, 2, 3])


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": [2, {"y": 0, "x": 1}]}) == \
            canonical_json({"a": [2, {"x": 1, "y": 0}], "b": 1})

    def test_compact(self):
        assert canonical_json({"a": 1, "b": 2}) == '{"a":1,"b":2}'
