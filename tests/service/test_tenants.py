"""Tenant quotas: admission gates and exactly-once settlement."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, InvalidParameterError
from repro.service import TenantAccounts, TenantQuota


class TestQuotaValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_concurrency": 0},
        {"max_queued": 0},
        {"budget": -1},
    ])
    def test_bad_quota_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            TenantQuota(**kwargs)


class TestAdmission:
    def test_queue_quota(self):
        accounts = TenantAccounts({"a": TenantQuota(max_queued=1)})
        accounts.admit("a")
        accounts.on_queued("a")
        with pytest.raises(AdmissionError) as err:
            accounts.admit("a")
        assert err.value.reason == "tenant_quota"

    def test_unknown_tenant_uses_default(self):
        accounts = TenantAccounts(default=TenantQuota(max_queued=1))
        accounts.on_queued("stranger")
        with pytest.raises(AdmissionError):
            accounts.admit("stranger")

    def test_budget_gate(self):
        accounts = TenantAccounts({"a": TenantQuota(budget=10)})
        accounts.settle("a", "job-1", 10)
        with pytest.raises(AdmissionError) as err:
            accounts.admit("a")
        assert err.value.reason == "budget_exhausted"
        # Other tenants are unaffected.
        accounts.admit("b")

    def test_zero_budget_admits_nothing(self):
        accounts = TenantAccounts({"a": TenantQuota(budget=0)})
        with pytest.raises(AdmissionError) as err:
            accounts.admit("a")
        assert err.value.reason == "budget_exhausted"


class TestConcurrency:
    def test_can_run_tracks_running(self):
        accounts = TenantAccounts({"a": TenantQuota(max_concurrency=1)})
        assert accounts.can_run("a")
        accounts.on_started("a")
        assert not accounts.can_run("a")
        accounts.on_finished("a")
        assert accounts.can_run("a")


class TestSettlement:
    def test_exactly_once_by_job_id(self):
        accounts = TenantAccounts()
        assert accounts.settle("a", "job-1", 7)
        assert not accounts.settle("a", "job-1", 7)
        assert not accounts.settle("a", "job-1", 99)
        assert accounts.charged["a"] == 7

    def test_distinct_jobs_accumulate(self):
        accounts = TenantAccounts()
        accounts.settle("a", "j1", 3)
        accounts.settle("a", "j2", 4)
        assert accounts.charged["a"] == 7

    def test_zero_charge_still_settles(self):
        accounts = TenantAccounts()
        assert accounts.settle("a", "j", 0)
        assert not accounts.settle("a", "j", 5)
        assert accounts.charged.get("a", 0) == 0

    def test_snapshot_sorted(self):
        accounts = TenantAccounts()
        accounts.on_queued("b")
        accounts.on_started("a")
        assert list(accounts.snapshot()) == ["a", "b"]
