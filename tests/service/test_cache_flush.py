"""Write-behind buffers survive graceful shutdown (satellite of the
service PR): ``ParallelEvaluator.close()`` flushes its evaluator's
store, the process-exit safety net flushes every live store, and the
flush is observable as a ``sim.cache.flush`` span."""

from __future__ import annotations

import json

from repro.dse import ParallelEvaluator, SurrogateEvaluator
from repro.obs import JsonlWriter, configure_tracing, disable_tracing, read_jsonl
from repro.sim.cache_store import SimCacheStore, flush_all_stores


class CachingEvaluator:
    """Minimal evaluator exposing a ``cache`` attribute like
    SimulatorEvaluator does."""

    def __init__(self, cache):
        self.cache = cache

    def evaluate(self, config):
        return float(config["x"])

    def evaluate_batch(self, configs):
        return [self.evaluate(c) for c in configs]


class TestCloseFlushes:
    def test_parallel_evaluator_close_flushes_store(self, tmp_path):
        store = SimCacheStore(tmp_path / "cache", write_behind=64)
        store.put("deadbeef00000000", 1.25)
        assert store.stats()["pending_writes"] == 1

        pooled = ParallelEvaluator(CachingEvaluator(store), workers=1)
        pooled.close()
        assert store.stats()["pending_writes"] == 0
        # The entry is on disk, not just in memory.
        cold = SimCacheStore(tmp_path / "cache")
        assert cold.get("deadbeef00000000") == 1.25

    def test_close_emits_flush_span(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        configure_tracing(trace)
        try:
            store = SimCacheStore(tmp_path / "cache", write_behind=64)
            store.put("deadbeef00000001", 2.5)
            pooled = ParallelEvaluator(CachingEvaluator(store), workers=1)
            pooled.close()
        finally:
            disable_tracing()
        spans = [e for e in read_jsonl(trace)
                 if e.get("type") == "span" and e["name"] == "sim.cache.flush"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["entries"] == 1

    def test_close_without_cache_attr_is_fine(self):
        pooled = ParallelEvaluator(
            object.__new__(SurrogateEvaluator), workers=1)
        pooled.close()  # no cache attribute anywhere: must not raise


class TestFlushAllStores:
    def test_flushes_every_live_write_behind_store(self, tmp_path):
        a = SimCacheStore(tmp_path / "a", write_behind=16)
        b = SimCacheStore(tmp_path / "b", write_behind=16)
        a.put("aa00000000000000", 1.0)
        b.put("bb00000000000000", 2.0)
        b.put("bb00000000000001", 3.0)
        assert flush_all_stores() == 3
        assert a.stats()["pending_writes"] == 0
        assert b.stats()["pending_writes"] == 0

    def test_idempotent_and_empty_safe(self, tmp_path):
        store = SimCacheStore(tmp_path / "c", write_behind=16)
        store.put("cc00000000000000", 4.0)
        assert flush_all_stores() >= 1
        assert store.get("cc00000000000000") == 4.0
        # Nothing pending anywhere now; a second sweep writes nothing
        # for this store (other suites' stores may still be alive).
        assert store.stats()["pending_writes"] == 0

    def test_write_through_store_not_registered(self, tmp_path):
        from repro.sim import cache_store

        before = len(cache_store._live_stores)
        SimCacheStore(tmp_path / "wt")  # write-through: nothing to lose
        assert len(cache_store._live_stores) == before
