"""Integration: the persistent sim cache under the DSE evaluators.

The contract of :mod:`repro.sim.cache_store` inside a search: caching
changes *wall time only*.  Costs are bit-identical with and without a
store, and :class:`repro.dse.BudgetedEvaluator` charges exactly the same
budget — the Fig. 12 "number of simulations" counts fresh evaluations of
distinct configurations whether or not the simulator behind them
answered from disk.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.dse.evaluate import BudgetedEvaluator, SimulatorEvaluator
from repro.obs import get_registry
from repro.sim.cache_store import ENV_VAR, SimCacheStore, set_default_store
from repro.sim.config import SimulatedChip
from repro.workloads.parsec import parsec_like


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_default_store(None)
    yield
    set_default_store(None)


def _small_space() -> list[dict]:
    configs = [{"n": n, "issue_width": iw, "rob_size": 32,
                "l1_kib": 16.0, "l2_kib": 128.0}
               for n in (1, 2) for iw in (2, 4)]
    # Duplicates exercise the budget cache on top of the sim cache.
    return configs + [dict(configs[0]), dict(configs[2])]


def _make(workload, cache):
    base = replace(SimulatedChip(), n_cores=2)
    return BudgetedEvaluator(
        SimulatorEvaluator(workload, seed=99, base_chip=base, cache=cache))


def test_cached_and_uncached_costs_and_budgets_are_identical(tmp_path):
    wl = parsec_like("fluidanimate", n_ops=600)
    configs = _small_space()
    plain = _make(wl, cache=None)
    cached = _make(wl, cache=SimCacheStore(tmp_path / "store"))
    costs_plain = [plain.evaluate(c) for c in configs]
    costs_cached = [cached.evaluate(c) for c in configs]
    assert costs_plain == costs_cached  # bit-identical floats
    assert plain.evaluations == cached.evaluations == 4
    assert plain.evaluations_cached == cached.evaluations_cached == 2


def test_warm_store_charges_budget_but_runs_no_simulations(tmp_path):
    wl = parsec_like("fluidanimate", n_ops=600)
    store = SimCacheStore(tmp_path / "store")
    configs = _small_space()
    first = _make(wl, cache=store)
    costs_first = [first.evaluate(c) for c in configs]

    registry = get_registry()
    registry.reset()
    second = _make(wl, cache=store)  # fresh budget, same persistent store
    costs_second = [second.evaluate(c) for c in configs]
    assert costs_second == costs_first
    # The budget meter is unchanged by the warm store...
    assert second.evaluations == first.evaluations == 4
    # ...but not one simulation actually ran.
    assert registry.counter("sim.runs").value == 0
    assert registry.counter("sim.cache.hits").value == 4


def test_batch_path_shares_the_store(tmp_path):
    wl = parsec_like("fluidanimate", n_ops=600)
    store = SimCacheStore(tmp_path / "store")
    configs = _small_space()
    warmup = _make(wl, cache=store)
    expected = np.asarray([warmup.evaluate(c) for c in configs])

    registry = get_registry()
    registry.reset()
    batch = _make(wl, cache=store)
    out = batch.evaluate_batch(configs)
    assert np.array_equal(out, expected)
    assert batch.evaluations == 4
    assert registry.counter("sim.runs").value == 0


def test_constructor_resolves_default_store_eagerly(tmp_path):
    store = SimCacheStore(tmp_path / "store")
    set_default_store(store)
    evaluator = SimulatorEvaluator(parsec_like("fluidanimate", n_ops=400))
    assert evaluator.cache is store
    # Later default changes do not retarget an existing evaluator.
    set_default_store(None)
    assert evaluator.cache is store
    # And cache=None opts out even while a default is installed.
    set_default_store(store)
    assert SimulatorEvaluator(
        parsec_like("fluidanimate", n_ops=400), cache=None).cache is None
