"""Tests for evaluators, budget accounting and the DSE methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse import (
    ANNPredictorSearch,
    APSExplorer,
    BudgetedEvaluator,
    SurrogateEvaluator,
    brute_force_search,
    genetic_search,
    is_feasible,
    response_surface_search,
)
from repro.dse.space import DesignSpace, Parameter
from repro.laws.gfunction import PowerLawG


@pytest.fixture(scope="module")
def app() -> ApplicationProfile:
    return ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                              g=PowerLawG(1.0))


@pytest.fixture(scope="module")
def machine() -> MachineParameters:
    return MachineParameters(total_area=400.0, shared_area=40.0)


@pytest.fixture(scope="module")
def small_space() -> DesignSpace:
    return DesignSpace([
        Parameter("a0", (0.25, 0.5, 1.0, 2.0)),
        Parameter("a1", (0.1, 0.25, 0.5, 1.0)),
        Parameter("a2", (0.5, 1.0, 2.0, 4.0)),
        Parameter("n", (2, 8, 32, 64)),
        Parameter("issue_width", (1, 2, 4, 8)),
        Parameter("rob_size", (32, 128, 512)),
    ])


@pytest.fixture(scope="module")
def surrogate(app, machine) -> SurrogateEvaluator:
    return SurrogateEvaluator(app, machine)


class TestBudgetedEvaluator:
    def test_counts_distinct_only(self, surrogate, small_space):
        budget = BudgetedEvaluator(surrogate)
        c = small_space.config_at(0)
        budget.evaluate(c)
        budget.evaluate(c)
        assert budget.evaluations == 1
        budget.evaluate(small_space.config_at(1))
        assert budget.evaluations == 2

    def test_cached_rereads_counted_separately(self, surrogate, small_space):
        budget = BudgetedEvaluator(surrogate)
        c = small_space.config_at(0)
        budget.evaluate(c)
        budget.evaluate(c)
        budget.evaluate(c)
        assert budget.evaluations == 1
        assert budget.evaluations_cached == 2

    def test_reset_clears_both_counters_and_cache(self, surrogate,
                                                  small_space):
        budget = BudgetedEvaluator(surrogate)
        c = small_space.config_at(0)
        budget.evaluate(c)
        budget.evaluate(c)
        budget.reset()
        assert budget.evaluations == 0
        assert budget.evaluations_cached == 0
        # The cache was dropped, so a re-evaluation counts as fresh.
        budget.evaluate(c)
        assert budget.evaluations == 1
        assert budget.evaluations_cached == 0

    def test_registry_mirrors_with_method_label(self, surrogate,
                                                small_space):
        from repro.obs import MetricsRegistry, set_registry
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            budget = BudgetedEvaluator(surrogate, method="aps")
            c = small_space.config_at(0)
            budget.evaluate(c)
            budget.evaluate(c)
            counters = registry.snapshot()["counters"]
            assert counters["dse.evaluations"] == 1
            assert counters["dse.evaluations{method=aps}"] == 1
            assert counters["dse.evaluations_cached"] == 1
            # Registry series are cumulative across reset() by design.
            budget.reset()
            budget.evaluate(c)
            assert registry.snapshot()["counters"]["dse.evaluations"] == 2
        finally:
            set_registry(previous)

    def test_feasibility_delegation(self, surrogate):
        budget = BudgetedEvaluator(surrogate)
        good = {"a0": 1.0, "a1": 0.5, "a2": 1.0, "n": 2}
        bad = {"a0": 100.0, "a1": 100.0, "a2": 100.0, "n": 64}
        assert budget.is_feasible(good)
        assert not budget.is_feasible(bad)
        assert is_feasible(budget, good)


class TestSurrogate:
    def test_grid_matches_scalar(self, surrogate, small_space):
        costs = surrogate.evaluate_grid(small_space)
        rng = np.random.default_rng(0)
        for i in rng.choice(small_space.size, 25, replace=False):
            c = small_space.config_at(int(i))
            assert costs[int(i)] == pytest.approx(
                surrogate.evaluate(c), rel=1e-12)

    def test_infeasible_is_inf(self, surrogate):
        assert surrogate.evaluate(
            {"a0": 100.0, "a1": 100.0, "a2": 100.0, "n": 64,
             "issue_width": 4, "rob_size": 128}) == float("inf")

    def test_bigger_rob_helps_concurrency(self, app, machine):
        sur = SurrogateEvaluator(app, machine, noise=0.0)
        base = {"a0": 1.0, "a1": 0.5, "a2": 1.0, "n": 8, "issue_width": 4}
        small = sur.evaluate({**base, "rob_size": 16})
        big = sur.evaluate({**base, "rob_size": 512})
        assert big < small

    def test_noise_is_deterministic(self, surrogate, small_space):
        c = small_space.config_at(7)
        assert surrogate.evaluate(c) == surrogate.evaluate(c)


class TestBruteForce:
    def test_finds_global_optimum(self, surrogate, small_space):
        res = brute_force_search(small_space, surrogate)
        costs = surrogate.evaluate_grid(small_space)
        assert res.best_cost == pytest.approx(float(np.min(costs)))
        # Design-rule-infeasible points are skipped before the budget is
        # charged, so the sweep costs exactly the feasible count.
        feasible = sum(surrogate.is_feasible(c) for c in small_space)
        assert res.evaluations == feasible
        assert res.skipped_infeasible == small_space.size - feasible
        assert res.skipped_infeasible > 0  # the small space has rejects

    def test_infeasible_points_never_reach_the_evaluator(self, app, machine,
                                                         small_space):
        # Regression: the sweep used to charge the budget for points the
        # paper's practitioner would never submit (Eq. 12 violations).
        class Recording:
            def __init__(self, inner):
                self.inner = inner
                self.seen: list[dict] = []

            def is_feasible(self, config):
                return self.inner.is_feasible(config)

            def evaluate(self, config):
                self.seen.append(config)
                return self.inner.evaluate(config)

        recorder = Recording(SurrogateEvaluator(app, machine))
        res = brute_force_search(small_space, recorder, batch_size=1)
        assert res.evaluations == len(recorder.seen)
        assert all(recorder.inner.is_feasible(c) for c in recorder.seen)


class TestAPS:
    def test_simulation_count_is_micro_grid(self, app, machine,
                                            surrogate, small_space):
        aps = APSExplorer(app, machine, small_space)
        res = aps.explore(BudgetedEvaluator(surrogate))
        # Simulated params: issue_width (4) x rob_size (3).
        assert res.simulations == 12
        assert res.candidates == 12
        assert res.space_size == small_space.size

    def test_result_feasible_and_competitive(self, app, machine,
                                             surrogate, small_space):
        res = APSExplorer(app, machine, small_space).explore(
            BudgetedEvaluator(surrogate))
        assert np.isfinite(res.best_cost)
        costs = surrogate.evaluate_grid(small_space)
        best = float(np.min(costs))
        assert (res.best_cost - best) / best < 0.5

    def test_narrowing_factor(self, app, machine, surrogate, small_space):
        res = APSExplorer(app, machine, small_space).explore(
            BudgetedEvaluator(surrogate))
        assert res.narrowing_factor == pytest.approx(
            small_space.size / res.simulations)

    def test_radius_expands_neighborhood(self, app, machine, surrogate,
                                         small_space):
        res = APSExplorer(app, machine, small_space).explore(
            BudgetedEvaluator(surrogate), radius=1)
        assert res.simulations > 12

    def test_missing_analytic_params_rejected(self, app, machine):
        from repro.errors import DesignSpaceError
        bad = DesignSpace([Parameter("issue_width", (1, 2))])
        with pytest.raises(DesignSpaceError):
            APSExplorer(app, machine, bad)


class TestSearchBaselines:
    def test_ga_improves_over_random(self, surrogate, small_space):
        res = genetic_search(small_space, BudgetedEvaluator(surrogate),
                             population=12, generations=6, seed=1)
        costs = surrogate.evaluate_grid(small_space)
        finite = costs[np.isfinite(costs)]
        median = float(np.median(finite))
        assert res.best_cost < median
        assert res.evaluations > 0

    def test_rsm_runs_and_returns_feasible(self, surrogate, small_space):
        res = response_surface_search(
            small_space, BudgetedEvaluator(surrogate),
            initial_samples=30, rounds=2, refine_samples=8, seed=1)
        assert np.isfinite(res.best_cost)

    def test_ann_search_small_space(self, surrogate, small_space):
        search = ANNPredictorSearch(small_space, batch=40, max_rounds=3,
                                    seed=1, epochs=300)
        res = search.search(BudgetedEvaluator(surrogate), target_error=0.3)
        assert np.isfinite(res.best_cost)
        assert res.simulations > 0
        assert res.history

    def test_mlp_learns_quadratic(self):
        from repro.dse import MLPRegressor
        rng = np.random.default_rng(0)
        x = rng.random((300, 2))
        y = (x[:, 0] - 0.5) ** 2 + 2.0 * x[:, 1]
        model = MLPRegressor(2, (16,), seed=0)
        model.fit(x, y, epochs=500, rng=rng)
        pred = model.predict(x)
        assert float(np.mean((pred - y) ** 2)) < 0.01
