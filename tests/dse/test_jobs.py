"""Job-shaped entrypoints: spec building, deadlines, degradation,
checkpointed resume identity."""

from __future__ import annotations

import pytest

from repro.dse.jobs import (
    RESULT_SCHEMA,
    DegradedSimEvaluator,
    JobGuard,
    build_evaluator,
    build_space,
    run_job,
)
from repro.errors import DeadlineExceededError, InvalidParameterError
from repro.resilience import Deadline

SPACE = {"params": [
    {"name": "a0", "values": [2, 4, 8]},
    {"name": "a1", "values": [1, 2]},
    {"name": "a2", "values": [1, 2]},
    {"name": "n", "values": [4, 8, 16]},
]}

SWEEP = {"kind": "sweep", "space": SPACE,
         "evaluator": {"type": "surrogate"}}


class TestBuilders:
    def test_build_space(self):
        space = build_space(SPACE)
        assert space.size == 3 * 2 * 2 * 3

    @pytest.mark.parametrize("spec", [
        {},
        {"params": []},
        {"params": [{"name": "x"}]},
        {"params": [{"values": [1]}]},
        {"params": [{"name": "x", "values": []}]},
    ])
    def test_bad_space_rejected(self, spec):
        with pytest.raises(InvalidParameterError):
            build_space(spec)

    def test_build_surrogate_with_app_fields(self):
        evaluator = build_evaluator(
            {"type": "surrogate", "app": {"f_mem": 0.4, "g_exponent": 1.2},
             "machine": {"total_area": 256.0}})
        assert evaluator.app.f_mem == 0.4
        assert evaluator.machine.total_area == 256.0

    @pytest.mark.parametrize("spec", [
        {"type": "mystery"},
        {"type": "surrogate", "app": {"bogus_field": 1}},
        {"type": "surrogate", "machine": {"bogus": 1}},
        {"type": "simulator", "workload": "unheard-of"},
        "not a dict",
    ])
    def test_bad_evaluator_rejected(self, spec):
        with pytest.raises(InvalidParameterError):
            build_evaluator(spec)

    def test_degraded_simulator_wraps(self):
        evaluator = build_evaluator({"type": "simulator", "cache": None},
                                    degraded=True)
        assert isinstance(evaluator, DegradedSimEvaluator)


class TestRunJob:
    def test_result_document(self, tmp_path):
        result = run_job(dict(SWEEP))
        assert result["schema"] == RESULT_SCHEMA
        assert result["evaluations"] > 0
        assert isinstance(result["best_cost"], str)
        assert float(result["best_cost"]) > 0
        assert result["degraded"] is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_job({"kind": "train", "space": SPACE})

    def test_resume_is_bit_identical(self, tmp_path):
        fresh = run_job(dict(SWEEP),
                        checkpoint_path=tmp_path / "a.jsonl", resume=True)
        resumed = run_job(dict(SWEEP),
                          checkpoint_path=tmp_path / "a.jsonl", resume=True)
        assert resumed == fresh
        # The warm ledger means the resume charged nothing new…
        assert resumed["evaluations"] == fresh["evaluations"]
        # …and matches a checkpoint-free run exactly.
        assert run_job(dict(SWEEP)) == fresh

    def test_deadline_expiry_raises(self):
        deadline = Deadline(1e-9)
        with pytest.raises(DeadlineExceededError):
            run_job(dict(SWEEP), deadline=deadline)

    def test_progress_stream_monotonic(self):
        seen = []
        spec = dict(SWEEP)
        spec["batch_size"] = 8
        run_job(spec, on_progress=seen.append)
        assert seen == sorted(seen)
        assert seen[-1] > 0


class TestJobGuard:
    class Flat:
        def evaluate(self, config):
            return 1.0

        def evaluate_batch(self, configs):
            import numpy as np
            return np.ones(len(configs))

    def test_counts_and_reports(self):
        seen = []
        guard = JobGuard(self.Flat(), on_progress=seen.append)
        guard.evaluate({"x": 1})
        guard.evaluate_batch([{"x": 1}, {"x": 2}])
        assert guard.evaluated == 3
        assert seen == [1, 3]

    def test_deadline_checked_before_work(self):
        clock = [0.0]
        deadline = Deadline(1.0, clock=lambda: clock[0])
        guard = JobGuard(self.Flat(), deadline=deadline)
        guard.evaluate({"x": 1})
        clock[0] = 2.0
        with pytest.raises(DeadlineExceededError):
            guard.evaluate({"x": 1})
        with pytest.raises(DeadlineExceededError):
            guard.evaluate_batch([{"x": 1}])
