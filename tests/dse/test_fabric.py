"""Differential wall around the sweep fabric: scheduling changes wall
time only.

The fabric's contract mirrors the batch engine's: for any worker count,
steal schedule, unit size, or crash/recovery sequence, costs come back
bit-identical to a sequential loop, and budget accounting on a wrapping
:class:`~repro.dse.evaluate.BudgetedEvaluator` is exactly-once.  These
tests pin every leg — workers=1 ≡ workers=4 ≡ forced-steal ≡ steal-off ≡
crash-recovery ≡ ledger kill-and-resume — including ``dse.evaluations``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse import BudgetedEvaluator, SurrogateEvaluator, batch_evaluate
from repro.dse.batch import make_pool_evaluator, set_batch_defaults
from repro.dse.evaluate import SimulatorEvaluator, canonical_key
from repro.dse.fabric import (
    FabricEvaluator,
    config_shard,
    owned_shards_of,
    owner_of_shard,
)
from repro.errors import FatalError
from repro.laws.gfunction import PowerLawG
from repro.obs import MetricsRegistry, set_registry
from repro.resilience import (
    Fault,
    FaultPlan,
    FaultyEvaluator,
    RetryPolicy,
    ShardedJournal,
    config_token,
)
from repro.sim.cache_store import SHARD_COUNT, SimCacheStore, shard_of_key

NO_JITTER = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)


@pytest.fixture(autouse=True)
def fresh_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@pytest.fixture
def surrogate() -> SurrogateEvaluator:
    app = ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                             g=PowerLawG(1.0))
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    return SurrogateEvaluator(app, machine)


@pytest.fixture
def sweep(random_space_factory, random_config_batch_factory) -> list:
    space = random_space_factory(11)
    return random_config_batch_factory(space, 11, size=48)


class TestShardMath:
    def test_owner_partition_is_exact(self):
        for workers in (1, 2, 3, 4, 5, 7, 8, 16):
            seen: dict[int, int] = {}
            for slot in range(workers):
                for shard in owned_shards_of(slot, workers):
                    assert shard not in seen
                    seen[shard] = slot
            assert len(seen) == SHARD_COUNT
            # Inverse relation holds shard by shard.
            for shard, slot in seen.items():
                assert owner_of_shard(shard, workers) == slot

    def test_owner_ranges_are_contiguous(self):
        for workers in (2, 3, 4, 7):
            owners = [owner_of_shard(s, workers) for s in range(SHARD_COUNT)]
            assert owners == sorted(owners)

    def test_config_shard_deterministic_and_in_range(self, surrogate, sweep):
        shards = [config_shard(surrogate, c) for c in sweep]
        assert shards == [config_shard(surrogate, c) for c in sweep]
        assert all(0 <= s < SHARD_COUNT for s in shards)

    def test_config_shard_prefers_cache_key_hook(self):
        class Keyed:
            def cache_key_for(self, config):
                return "ab" + "0" * 62

            def evaluate(self, config):
                return 0.0

        assert config_shard(Keyed(), {"x": 1}) == shard_of_key("ab")
        assert config_shard(Keyed(), {"x": 1}) == 0xAB


class TestFabricEquivalence:
    """Every scheduling of the fabric returns identical costs."""

    def test_all_legs_bit_identical(self, surrogate, sweep, fresh_registry):
        want = batch_evaluate(surrogate, sweep)
        legs = {
            "inline": dict(workers=1),
            "fanned": dict(workers=4),
            "forced-steal": dict(workers=4, unit_size=1),
            "steal-off": dict(workers=4, steal=False),
        }
        for name, kwargs in legs.items():
            fresh_registry.reset()
            with FabricEvaluator(surrogate, **kwargs) as fabric:
                got = fabric.evaluate_batch(sweep)
            assert np.array_equal(got, want), name
            steals = fresh_registry.snapshot()["counters"].get(
                "dse.fabric.steals", 0)
            if name == "forced-steal":
                assert steals > 0
            if name in ("steal-off", "inline"):
                assert steals == 0

    def test_budget_accounting_identical_under_fabric(self, surrogate,
                                                      sweep):
        results = {}
        for workers in (1, 4):
            with FabricEvaluator(surrogate, workers=workers,
                                 unit_size=3) as fabric:
                budget = BudgetedEvaluator(fabric)
                costs = budget.evaluate_batch(sweep + sweep[:5])
                results[workers] = (costs, budget.evaluations,
                                    budget.evaluations_cached)
        costs1, fresh1, cached1 = results[1]
        costs4, fresh4, cached4 = results[4]
        assert np.array_equal(costs1, costs4)
        assert fresh1 == fresh4
        assert cached1 == cached4

    def test_scalar_passthrough_and_empty_batch(self, surrogate, sweep):
        with FabricEvaluator(surrogate, workers=4) as fabric:
            assert fabric.evaluate(sweep[0]) == float(
                surrogate.evaluate(sweep[0]))
            assert fabric.evaluate_batch([]).shape == (0,)
            assert fabric.is_feasible(sweep[0]) in (True, False)

    def test_factory_routes_on_fabric_default(self, surrogate):
        from repro.dse.batch import ParallelEvaluator
        try:
            set_batch_defaults(fabric=True, steal=False)
            fabric = make_pool_evaluator(surrogate, workers=2)
            assert isinstance(fabric, FabricEvaluator)
            assert fabric.steal is False
            fabric.close()
            set_batch_defaults(fabric=False)
            pool = make_pool_evaluator(surrogate, workers=2)
            assert isinstance(pool, ParallelEvaluator)
            pool.close()
        finally:
            set_batch_defaults(fabric=False, steal=True)


class TestFabricRecovery:
    def _plan(self, tmp_path, *faults) -> FaultPlan:
        return FaultPlan(seed=5, state_dir=str(tmp_path / "fuse"),
                         faults=tuple(faults))

    def test_worker_crash_mid_sweep_is_bit_identical(
            self, tmp_path, surrogate, sweep, fresh_registry):
        want = batch_evaluate(surrogate, sweep)
        victim = sweep[17]
        plan = self._plan(tmp_path, Fault(kind="crash",
                                          token=config_token(victim),
                                          worker_only=True))
        fabric = FabricEvaluator(FaultyEvaluator(surrogate, plan),
                                 workers=2, unit_size=4,
                                 retry_policy=NO_JITTER,
                                 sleep=lambda s: None)
        budget = BudgetedEvaluator(fabric)
        try:
            got = budget.evaluate_batch(sweep)
        finally:
            fabric.close()
        assert (got == want).all()
        distinct = len({canonical_key(c) for c in sweep})
        assert budget.evaluations == distinct
        counters = fresh_registry.snapshot()["counters"]
        assert counters["dse.evaluations"] == distinct
        assert counters["resilience.worker_crashes"] >= 1
        assert counters["resilience.pool_rebuilds"] >= 1

    def test_persistent_crasher_degrades_to_serial(
            self, tmp_path, surrogate, sweep, fresh_registry):
        want = batch_evaluate(surrogate, sweep)
        victim = sweep[9]
        plan = self._plan(tmp_path, Fault(kind="crash",
                                          token=config_token(victim),
                                          times=None, worker_only=True))
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        fabric = FabricEvaluator(FaultyEvaluator(surrogate, plan),
                                 workers=2, unit_size=4,
                                 retry_policy=policy, sleep=lambda s: None)
        try:
            got = fabric.evaluate_batch(sweep)
        finally:
            fabric.close()
        assert (got == want).all()
        counters = fresh_registry.snapshot()["counters"]
        assert counters["resilience.serial_fallbacks"] >= 1
        assert counters["resilience.worker_crashes"] >= 2

    def test_fatal_fault_propagates(self, tmp_path, surrogate, sweep):
        plan = self._plan(tmp_path, Fault(kind="fatal",
                                          token=config_token(sweep[0])))
        fabric = FabricEvaluator(FaultyEvaluator(surrogate, plan),
                                 workers=2, unit_size=4,
                                 retry_policy=NO_JITTER,
                                 sleep=lambda s: None)
        try:
            with pytest.raises(FatalError):
                fabric.evaluate_batch(sweep)
        finally:
            fabric.close()


class TestFabricTieredCache:
    """Shard ownership + reconcile leave the disk tier complete."""

    @pytest.fixture
    def sim_setup(self, tmp_path):
        from repro.workloads import parsec_like
        workload = parsec_like("blackscholes", n_ops=300)
        store = SimCacheStore(tmp_path / "sim-cache")
        evaluator = SimulatorEvaluator(workload, seed=3, cache=store)
        configs = [{"n": n, "issue_width": iw, "rob_size": 32,
                    "l1_kib": 16.0, "l2_kib": 128.0}
                   for n in (1, 2) for iw in (2, 4)]
        return evaluator, store, configs

    def test_cold_sweep_persists_every_shard(self, sim_setup,
                                             fresh_registry):
        evaluator, store, configs = sim_setup
        with FabricEvaluator(evaluator, workers=2, unit_size=1,
                             write_behind=2) as fabric:
            cold = fabric.evaluate_batch(configs)
        # Every result reached the disk tier — owners directly, stolen
        # shards through the parent reconcile.
        for config in configs:
            key = evaluator.cache_key_for(config)
            assert store.get(key) is not None

        # A warm rerun answers entirely from the store: zero sim runs.
        fresh_registry.reset()
        with FabricEvaluator(evaluator, workers=1) as fabric:
            warm = fabric.evaluate_batch(configs)
        assert np.array_equal(warm, cold)
        counters = fresh_registry.snapshot()["counters"]
        assert counters.get("sim.runs", 0) == 0

    def test_matches_inline_simulation(self, sim_setup):
        evaluator, _store, configs = sim_setup
        want = np.array([evaluator.evaluate(c) for c in configs])
        with FabricEvaluator(evaluator, workers=2, unit_size=1) as fabric:
            got = fabric.evaluate_batch(configs)
        assert np.array_equal(got, want)


class TestLedgerResume:
    """Kill-and-resume through the per-shard ledger is exactly-once."""

    def test_interrupted_sweep_resumes_bit_identically(
            self, tmp_path, surrogate, sweep, fresh_registry):
        distinct = len({canonical_key(c) for c in sweep})
        want = batch_evaluate(surrogate, sweep)

        # Uninterrupted reference run, fabric + ledger.
        ref_dir = tmp_path / "ref-ledger"
        with FabricEvaluator(surrogate, workers=2, unit_size=4) as fabric:
            budget = BudgetedEvaluator(
                fabric, checkpoint=ShardedJournal.create(
                    ref_dir, method="aps", shard_count=4))
            ref_costs = budget.evaluate_batch(sweep)
            ref_evals = budget.evaluations
            budget.close()
        assert np.array_equal(ref_costs, want)
        assert ref_evals == distinct

        # Interrupted run: first half only, then the process "dies".
        led_dir = tmp_path / "ledger"
        half = sweep[:len(sweep) // 2]
        with FabricEvaluator(surrogate, workers=2, unit_size=4) as fabric:
            budget = BudgetedEvaluator(
                fabric, checkpoint=ShardedJournal.create(
                    led_dir, method="aps", shard_count=4))
            budget.evaluate_batch(half)
            budget.close()

        # Resume: restore the ledger union, replay the whole sweep.
        fresh_registry.reset()
        ledger, restored = ShardedJournal.open_resume(led_dir, method="aps")
        assert restored  # the interrupted half actually journaled
        with FabricEvaluator(surrogate, workers=2, unit_size=1) as fabric:
            budget = BudgetedEvaluator(fabric, checkpoint=ledger)
            budget.restore(restored)
            got = budget.evaluate_batch(sweep)
            # Budget counters end exactly where the uninterrupted run's
            # did — replayed charges count as the fresh charges they
            # were, nothing double-charged.
            assert budget.evaluations == ref_evals
            assert np.array_equal(got, want)
            budget.close()
        counters = fresh_registry.snapshot()["counters"]
        assert counters["dse.evaluations"] == ref_evals

        # The ledger holds each charged key exactly once.
        _ledger, final = ShardedJournal.open_resume(led_dir, method="aps")
        _ledger.close()
        keys = [k for k, _ in final]
        assert len(keys) == len(set(keys)) == distinct
