"""Property tests for the batch engine's budget/feasibility invariants.

Each property is checked over randomized-but-seeded inputs from the
``random_space_factory`` / ``random_config_batch_factory`` generators in
``tests/conftest.py`` — any failing seed reproduces exactly.

Invariants (the Fig. 12 accounting contract):

1. ``BudgetedEvaluator.evaluations`` == number of *unique* canonical
   configurations evaluated, however the calls are batched or ordered.
2. Cache hits never consume budget: re-submitting any prefix of seen
   configs leaves ``evaluations`` unchanged.
3. The vectorized Eq. 12 feasibility mask (inf cost) matches the scalar
   ``is_feasible`` hook pointwise.
4. ``canonical_key`` is insensitive to dict key order and is the
   memoization identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse import (
    BudgetedEvaluator,
    SurrogateEvaluator,
    canonical_key,
    is_feasible,
)
from repro.laws.gfunction import PowerLawG

SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)


@pytest.fixture(scope="module")
def surrogate() -> SurrogateEvaluator:
    app = ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                             g=PowerLawG(1.0))
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    return SurrogateEvaluator(app, machine)


class TestBudgetCounterInvariant:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_evaluations_equals_unique_configs(self, surrogate,
                                               random_space_factory,
                                               random_config_batch_factory,
                                               seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed)
        budget = BudgetedEvaluator(surrogate)
        budget.evaluate_batch(configs)
        unique = len({canonical_key(c) for c in configs})
        assert budget.evaluations == unique
        assert budget.evaluations_cached == len(configs) - unique

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_counter_is_batching_invariant(self, surrogate,
                                           random_space_factory,
                                           random_config_batch_factory,
                                           seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed)
        counts = []
        for split in (1, 3, 7, len(configs)):
            budget = BudgetedEvaluator(surrogate)
            for i in range(0, len(configs), split):
                budget.evaluate_batch(configs[i:i + split])
            counts.append((budget.evaluations, budget.evaluations_cached))
        assert len(set(counts)) == 1

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_counter_is_order_invariant(self, surrogate,
                                        random_space_factory,
                                        random_config_batch_factory, seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed)
        forward = BudgetedEvaluator(surrogate)
        forward.evaluate_batch(configs)
        backward = BudgetedEvaluator(surrogate)
        backward.evaluate_batch(list(reversed(configs)))
        assert forward.evaluations == backward.evaluations
        assert forward.evaluations_cached == backward.evaluations_cached


class TestCacheHitsAreFree:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_resubmission_consumes_no_budget(self, surrogate,
                                             random_space_factory,
                                             random_config_batch_factory,
                                             seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed)
        budget = BudgetedEvaluator(surrogate)
        first = budget.evaluate_batch(configs)
        spent = budget.evaluations
        # Replay the whole batch, a shuffled copy, and scalar rereads:
        # all cache hits, zero new budget.
        again = budget.evaluate_batch(configs)
        gen = np.random.default_rng(seed)
        shuffled = list(configs)
        gen.shuffle(shuffled)
        budget.evaluate_batch(shuffled)
        for c in configs[:5]:
            budget.evaluate(c)
        assert budget.evaluations == spent
        assert np.array_equal(again, first)

    def test_key_order_does_not_defeat_the_cache(self, surrogate,
                                                 random_space_factory):
        space = random_space_factory(11)
        config = space.config_at(0)
        scrambled = dict(reversed(list(config.items())))
        assert canonical_key(config) == canonical_key(scrambled)
        budget = BudgetedEvaluator(surrogate)
        a = budget.evaluate(config)
        b = budget.evaluate(scrambled)
        assert a == b
        assert budget.evaluations == 1
        assert budget.evaluations_cached == 1

    def test_distinct_configs_have_distinct_keys(self, random_space_factory):
        space = random_space_factory(13)
        keys = {canonical_key(space.config_at(i))
                for i in range(min(space.size, 200))}
        assert len(keys) == min(space.size, 200)


class TestFeasibilityMaskProperty:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_inf_cost_iff_infeasible(self, surrogate, random_space_factory,
                                     random_config_batch_factory, seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed, size=80)
        costs = surrogate.evaluate_batch(configs)
        mask = np.array([is_feasible(surrogate, c) for c in configs])
        # Eq. 12 (and the design-rule bounds) decide feasibility; the
        # vectorized kernel must agree pointwise: finite <=> feasible.
        assert np.array_equal(np.isfinite(costs), mask)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_budgeted_wrapper_preserves_the_mask(self, surrogate,
                                                 random_space_factory,
                                                 random_config_batch_factory,
                                                 seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed, size=50)
        budget = BudgetedEvaluator(surrogate)
        costs = budget.evaluate_batch(configs)
        for c, cost in zip(configs, costs):
            assert np.isfinite(cost) == is_feasible(budget, c)

    def test_boundary_area_is_feasible(self, surrogate):
        # A config sized exactly to the area budget sits on the Eq. 12
        # boundary; the <= comparison (with epsilon) must keep it.
        m = surrogate.machine
        per_core = (m.total_area - m.shared_area) / 4.0
        config = {"a0": per_core / 3, "a1": per_core / 3,
                  "a2": per_core / 3, "n": 4,
                  "issue_width": 4, "rob_size": 128}
        assert is_feasible(surrogate, config)
        assert np.isfinite(surrogate.evaluate_batch([config])[0])
