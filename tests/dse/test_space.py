"""Tests for the discrete design space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse.space import DesignSpace, Parameter
from repro.errors import DesignSpaceError


@pytest.fixture
def space() -> DesignSpace:
    return DesignSpace([
        Parameter("a", (1.0, 2.0, 4.0)),
        Parameter("b", (10, 20)),
        Parameter("c", ("x", "y")),
    ])


class TestParameter:
    def test_snap(self):
        p = Parameter("p", (1.0, 2.0, 4.0))
        assert p.snap(2.9) == 2.0
        assert p.snap(3.1) == 4.0
        assert p.snap(-5.0) == 1.0

    def test_snap_down(self):
        p = Parameter("p", (1.0, 2.0, 4.0))
        assert p.snap_down(3.9) == 2.0
        assert p.snap_down(4.0) == 4.0
        assert p.snap_down(0.5) == 1.0

    def test_neighbors(self):
        p = Parameter("p", (1, 2, 3, 4, 5))
        assert p.neighbors(3, radius=1) == (2, 3, 4)
        assert p.neighbors(1, radius=1) == (1, 2)
        assert p.neighbors(5, radius=2) == (3, 4, 5)

    def test_duplicates_rejected(self):
        with pytest.raises(DesignSpaceError):
            Parameter("p", (1, 1, 2))

    def test_empty_rejected(self):
        with pytest.raises(DesignSpaceError):
            Parameter("p", ())


class TestDesignSpace:
    def test_size(self, space):
        assert space.size == 12

    def test_index_round_trip(self, space):
        for i in range(space.size):
            assert space.index_of(space.config_at(i)) == i

    def test_iteration_covers_space(self, space):
        configs = list(space)
        assert len(configs) == 12
        assert len({tuple(c.items()) for c in configs}) == 12

    def test_sample_without_replacement(self, space):
        rng = np.random.default_rng(0)
        sample = space.sample(12, rng)
        assert len({tuple(c.items()) for c in sample}) == 12

    def test_sample_larger_than_space_clamped(self, space):
        rng = np.random.default_rng(0)
        assert len(space.sample(100, rng)) == 12

    def test_neighborhood_free_params(self, space):
        center = {"a": 2.0, "b": 10, "c": "x"}
        hood = space.neighborhood(center, free=["c"])
        assert len(hood) == 2  # c ranges; a, b fixed
        assert all(h["a"] == 2.0 and h["b"] == 10 for h in hood)

    def test_neighborhood_radius(self, space):
        center = {"a": 2.0, "b": 10, "c": "x"}
        hood = space.neighborhood(center, radius=1)
        # a has 3 neighbors, b has 2, c has 2.
        assert len(hood) == 3 * 2 * 2

    def test_snap_fills_missing(self, space):
        snapped = space.snap({"a": 3.5})
        assert snapped["a"] == 4.0
        assert "b" in snapped and "c" in snapped

    def test_features_normalized(self, space):
        f = space.as_features({"a": 4.0, "b": 10, "c": "x"})
        assert f[0] == pytest.approx(1.0)
        assert f[1] == pytest.approx(0.0)

    def test_invalid_index(self, space):
        with pytest.raises(DesignSpaceError):
            space.config_at(12)

    def test_index_of_invalid_config(self, space):
        with pytest.raises(DesignSpaceError):
            space.index_of({"a": 99.0, "b": 10, "c": "x"})

    def test_duplicate_names_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace([Parameter("a", (1,)), Parameter("a", (2,))])
