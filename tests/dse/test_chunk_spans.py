"""Chunk-timing spans: queue-wait, execute and IPC recorded separately.

The profiler cannot attribute pool time honestly if a chunk's
wall-clock is lumped into one span: waiting behind busy workers,
in-worker simulation and pickling round-trips call for three different
fixes.  `ParallelEvaluator` therefore records three externally-timed
spans per completed chunk (``dse.chunk.queue_wait`` / ``execute`` /
``ipc``) — these tests pin their presence, attrs and additivity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import ParallelEvaluator, SimulatorEvaluator
from repro.obs import configure_tracing, disable_tracing
from repro.obs.stream import SpanRollup, TraceReader
from repro.workloads import parsec_like

CHUNK_SPANS = ("dse.chunk.queue_wait", "dse.chunk.execute",
               "dse.chunk.ipc")


@pytest.fixture
def traced(tmp_path):
    path = tmp_path / "trace.jsonl"
    configure_tracing(path)
    try:
        yield path
    finally:
        disable_tracing()


@pytest.fixture(scope="module")
def sim_evaluator() -> SimulatorEvaluator:
    return SimulatorEvaluator(parsec_like("blackscholes", n_ops=300),
                              seed=1)


def _configs(n: int) -> "list[dict]":
    return [{"n": 1 + (i % 2), "issue_width": 2, "rob_size": 64,
             "a1": 0.5, "a2": 8.0} for i in range(n)]


def _rollup(path) -> SpanRollup:
    rollup = SpanRollup()
    for event in TraceReader(path).read_all():
        rollup.handle(event)
    return rollup


class TestChunkSpans:
    def test_pool_run_emits_all_three_per_chunk(self, traced,
                                                sim_evaluator):
        configs = _configs(8)
        with ParallelEvaluator(sim_evaluator, workers=2,
                               chunk_size=2) as pool:
            costs = pool.evaluate_batch(configs)
        assert np.all(np.isfinite(costs))
        rollup = _rollup(traced)
        n_chunks = 4
        for name in CHUNK_SPANS:
            assert name in rollup.aggregates, name
            count, total, _self = rollup.aggregates[name]
            assert count == n_chunks, (name, count)
            assert total >= 0.0
        # Execute time is real work, not epsilon bookkeeping.
        assert rollup.aggregates["dse.chunk.execute"][1] > 0.0

    def test_chunk_spans_carry_chunk_and_size_attrs(self, traced,
                                                    sim_evaluator):
        with ParallelEvaluator(sim_evaluator, workers=2,
                               chunk_size=3) as pool:
            pool.evaluate_batch(_configs(6))
        by_name: "dict[str, list[dict]]" = {}
        for event in TraceReader(traced).read_all():
            if event.get("name") in CHUNK_SPANS:
                by_name.setdefault(event["name"], []).append(event)
        for name in CHUNK_SPANS:
            chunks = sorted(e["attrs"]["chunk"] for e in by_name[name])
            assert chunks == [0, 1]
            assert all(e["attrs"]["size"] == 3 for e in by_name[name])

    def test_serial_inline_path_emits_no_chunk_spans(self, traced,
                                                     sim_evaluator):
        with ParallelEvaluator(sim_evaluator, workers=1) as pool:
            pool.evaluate_batch(_configs(4))
        rollup = _rollup(traced)
        for name in CHUNK_SPANS:
            assert name not in rollup.aggregates
        # The inline path still simulates under sim.run as before.
        assert "sim.run" in rollup.aggregates

    def test_disabled_tracer_records_nothing(self, tmp_path,
                                             sim_evaluator):
        disable_tracing()
        with ParallelEvaluator(sim_evaluator, workers=2,
                               chunk_size=2) as pool:
            costs = pool.evaluate_batch(_configs(4))
        assert np.all(np.isfinite(costs))
