"""Differential tests: the batched/parallel fast paths ≡ the slow path.

The batch engine's determinism contract (``docs/DSE_PERFORMANCE.md``)
says batching and workers change wall time only.  These tests enforce it
literally: element-wise *exact* equality for the surrogate (scalar,
batch and grid share one NumPy kernel), exact ordered equality for the
process-pool simulator path, and identical best configurations, costs
and budget counts for every search method with batching on (large
batches) vs off (``batch_size=1``) and ``workers=1`` vs ``workers=4``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse import (
    ANNPredictorSearch,
    APSExplorer,
    BudgetedEvaluator,
    ParallelEvaluator,
    SimulatorEvaluator,
    SurrogateEvaluator,
    batch_evaluate,
    brute_force_search,
    genetic_search,
    response_surface_search,
)
from repro.laws.gfunction import PowerLawG

SEEDS = (0, 1, 2, 3)


@pytest.fixture(scope="module")
def app() -> ApplicationProfile:
    return ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                              g=PowerLawG(1.0))


@pytest.fixture(scope="module")
def machine() -> MachineParameters:
    return MachineParameters(total_area=400.0, shared_area=40.0)


@pytest.fixture(scope="module")
def surrogate(app, machine) -> SurrogateEvaluator:
    return SurrogateEvaluator(app, machine)


class TestSurrogateBatchExactness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_equals_scalar_elementwise(self, surrogate,
                                             random_space_factory,
                                             random_config_batch_factory,
                                             seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed, size=60)
        batched = surrogate.evaluate_batch(configs)
        sequential = np.array([surrogate.evaluate(c) for c in configs])
        # Bit-for-bit, including the inf of infeasible points.
        assert np.array_equal(batched, sequential)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_equals_grid_enumeration(self, surrogate,
                                           random_space_factory, seed):
        space = random_space_factory(seed)
        assert np.array_equal(surrogate.evaluate_batch(list(space)),
                              surrogate.evaluate_grid(space))

    def test_batch_mixes_feasible_and_infeasible(self, surrogate):
        configs = [
            {"a0": 1.0, "a1": 0.5, "a2": 1.0, "n": 2,
             "issue_width": 4, "rob_size": 128},
            {"a0": 100.0, "a1": 100.0, "a2": 100.0, "n": 64,
             "issue_width": 4, "rob_size": 128},   # over the area budget
            {"a0": 1.0, "a1": 0.5, "a2": 1.0, "n": 0,
             "issue_width": 4, "rob_size": 128},   # n < 1
            {"a0": -1.0, "a1": 0.5, "a2": 1.0, "n": 2,
             "issue_width": 4, "rob_size": 128},   # negative area
            {"a0": 1.0, "a1": 0.5, "a2": 1.0, "n": 2,
             "issue_width": 0, "rob_size": 128},   # issue < 1
        ]
        out = surrogate.evaluate_batch(configs)
        assert np.isfinite(out[0])
        assert np.all(np.isinf(out[1:]))
        assert np.array_equal(
            out, np.array([surrogate.evaluate(c) for c in configs]))

    def test_missing_optional_params_use_scalar_defaults(self, surrogate):
        config = {"a0": 1.0, "a1": 0.5, "a2": 1.0, "n": 2}
        assert (surrogate.evaluate_batch([config])[0]
                == surrogate.evaluate(config))

    def test_empty_batch(self, surrogate):
        assert surrogate.evaluate_batch([]).shape == (0,)


class TestBudgetedBatchEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_costs_and_counters_match_sequential(self, surrogate,
                                                 random_space_factory,
                                                 random_config_batch_factory,
                                                 seed):
        space = random_space_factory(seed)
        configs = random_config_batch_factory(space, seed)
        seq_budget = BudgetedEvaluator(surrogate)
        bat_budget = BudgetedEvaluator(surrogate)
        sequential = np.array([seq_budget.evaluate(c) for c in configs])
        batched = bat_budget.evaluate_batch(configs)
        assert np.array_equal(batched, sequential)
        assert bat_budget.evaluations == seq_budget.evaluations
        assert bat_budget.evaluations_cached == seq_budget.evaluations_cached

    def test_split_batches_share_the_cache(self, surrogate,
                                           random_space_factory,
                                           random_config_batch_factory):
        space = random_space_factory(7)
        configs = random_config_batch_factory(space, 7)
        whole = BudgetedEvaluator(surrogate)
        split = BudgetedEvaluator(surrogate)
        expected = whole.evaluate_batch(configs)
        mid = len(configs) // 2
        got = np.concatenate([split.evaluate_batch(configs[:mid]),
                              split.evaluate_batch(configs[mid:])])
        assert np.array_equal(got, expected)
        assert split.evaluations == whole.evaluations
        assert split.evaluations_cached == whole.evaluations_cached


class TestParallelSimulatorPath:
    @pytest.fixture(scope="class")
    def sim_evaluator(self) -> SimulatorEvaluator:
        from repro.workloads import parsec_like
        return SimulatorEvaluator(parsec_like("blackscholes", n_ops=400),
                                  seed=1)

    @pytest.fixture(scope="class")
    def sim_configs(self) -> list[dict]:
        return [{"n": n, "issue_width": iw, "rob_size": 64,
                 "a1": 0.5, "a2": 8.0}
                for n in (1, 2) for iw in (2, 4, 8)]

    def test_workers_1_vs_4_identical_order(self, sim_evaluator,
                                            sim_configs):
        sequential = np.array([sim_evaluator.evaluate(c)
                               for c in sim_configs])
        with ParallelEvaluator(sim_evaluator, workers=1) as one:
            inline = one.evaluate_batch(sim_configs)
        with ParallelEvaluator(sim_evaluator, workers=4) as four:
            fanned = four.evaluate_batch(sim_configs)
        # Tolerance-free: the simulator is a pure function of
        # (config, seed), and reassembly preserves submission order.
        assert np.array_equal(inline, sequential)
        assert np.array_equal(fanned, sequential)

    def test_budget_accounting_identical_under_workers(self, sim_evaluator,
                                                       sim_configs):
        results = {}
        for workers in (1, 4):
            with ParallelEvaluator(sim_evaluator, workers=workers) as pool:
                budget = BudgetedEvaluator(pool)
                costs = budget.evaluate_batch(sim_configs + sim_configs[:3])
                results[workers] = (costs, budget.evaluations,
                                    budget.evaluations_cached)
        costs1, fresh1, cached1 = results[1]
        costs4, fresh4, cached4 = results[4]
        assert np.array_equal(costs1, costs4)
        assert fresh1 == fresh4 == len(sim_configs)
        assert cached1 == cached4 == 3

    def test_scalar_passthrough(self, sim_evaluator, sim_configs):
        with ParallelEvaluator(sim_evaluator, workers=4) as pool:
            assert (pool.evaluate(sim_configs[0])
                    == sim_evaluator.evaluate(sim_configs[0]))


class TestSearchMethodsBatchOnOff:
    """Every search returns the identical result batched vs not."""

    @pytest.fixture(scope="class")
    def space(self):
        from repro.dse.space import DesignSpace, Parameter
        return DesignSpace([
            Parameter("a0", (0.25, 0.5, 1.0, 2.0)),
            Parameter("a1", (0.1, 0.25, 0.5, 1.0)),
            Parameter("a2", (0.5, 1.0, 2.0, 4.0)),
            Parameter("n", (2, 8, 32, 64)),
            Parameter("issue_width", (1, 2, 4, 8)),
            Parameter("rob_size", (32, 128, 512)),
        ])

    def _pair(self, run):
        off = run(1)
        on = run(256)
        return off, on

    def test_brute(self, surrogate, space):
        off, on = self._pair(lambda bs: brute_force_search(
            space, BudgetedEvaluator(surrogate), batch_size=bs))
        assert off.best_config == on.best_config
        assert off.best_cost == on.best_cost
        assert off.evaluations == on.evaluations
        assert off.skipped_infeasible == on.skipped_infeasible

    def test_ga(self, surrogate, space):
        off, on = self._pair(lambda bs: genetic_search(
            space, BudgetedEvaluator(surrogate), population=12,
            generations=4, seed=2, batch_size=bs))
        assert off.best_config == on.best_config
        assert off.best_cost == on.best_cost
        assert off.evaluations == on.evaluations

    def test_rsm(self, surrogate, space):
        off, on = self._pair(lambda bs: response_surface_search(
            space, BudgetedEvaluator(surrogate), initial_samples=30,
            rounds=2, refine_samples=8, seed=2, batch_size=bs))
        assert off.best_config == on.best_config
        assert off.best_cost == on.best_cost
        assert off.evaluations == on.evaluations

    def test_ann(self, surrogate, space):
        def run(bs):
            search = ANNPredictorSearch(space, batch=30, max_rounds=2,
                                        seed=2, epochs=120)
            return search.search(BudgetedEvaluator(surrogate),
                                 target_error=0.3, batch_size=bs)
        off, on = self._pair(run)
        assert off.best_config == on.best_config
        assert off.best_cost == on.best_cost
        assert off.simulations == on.simulations

    def test_aps(self, app, machine, surrogate, space):
        off, on = self._pair(lambda bs: APSExplorer(
            app, machine, space).explore(BudgetedEvaluator(surrogate),
                                         batch_size=bs))
        assert off.best_config == on.best_config
        assert off.best_cost == on.best_cost
        assert off.simulations == on.simulations

    def test_brute_on_simulator_workers_1_vs_4(self):
        from repro.dse.space import DesignSpace, Parameter
        from repro.workloads import parsec_like
        space = DesignSpace([
            Parameter("n", (1, 2)),
            Parameter("issue_width", (2, 8)),
            Parameter("rob_size", (32, 128)),
        ])
        wl = parsec_like("blackscholes", n_ops=300)
        results = []
        for workers in (1, 4):
            with ParallelEvaluator(SimulatorEvaluator(wl, seed=2),
                                   workers=workers) as pool:
                results.append(brute_force_search(
                    space, BudgetedEvaluator(pool), batch_size=8))
        one, four = results
        assert one.best_config == four.best_config
        assert one.best_cost == four.best_cost
        assert one.evaluations == four.evaluations == space.size


class TestBatchDispatchFallback:
    def test_plain_evaluator_falls_back_to_scalar_loop(self):
        class Plain:
            def __init__(self):
                self.calls = 0

            def evaluate(self, config):
                self.calls += 1
                return float(config["x"])

        plain = Plain()
        out = batch_evaluate(plain, [{"x": 3.0}, {"x": 1.0}, {"x": 2.0}])
        assert np.array_equal(out, [3.0, 1.0, 2.0])
        assert plain.calls == 3

    def test_shape_mismatch_rejected(self):
        from repro.errors import DesignSpaceError

        class Broken:
            def evaluate(self, config):
                return 0.0

            def evaluate_batch(self, configs):
                return np.zeros(len(configs) + 1)

        with pytest.raises(DesignSpaceError):
            batch_evaluate(Broken(), [{"x": 1}])
