"""Tests for reuse-distance analysis.

The gold standard: for a fully associative LRU cache, the reuse-profile
miss rate must match direct simulation exactly, at every capacity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity.reuse import reuse_distances, reuse_profile
from repro.errors import InvalidParameterError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig


def lru_miss_rate(addresses: np.ndarray, capacity_lines: int) -> float:
    """Reference: fully associative LRU via the cache model."""
    cache = SetAssociativeCache(CacheConfig(
        size_kib=capacity_lines * 64 / 1024.0,
        assoc=capacity_lines, line_bytes=64))
    misses = sum(0 if cache.access(int(a)) else 1 for a in addresses)
    return misses / len(addresses)


class TestReuseDistances:
    def test_first_touches_are_minus_one(self):
        d = reuse_distances(np.array([0, 64, 128]) )
        assert list(d) == [-1, -1, -1]

    def test_immediate_reuse_distance_zero(self):
        d = reuse_distances(np.array([0, 0]))
        assert list(d) == [-1, 0]

    def test_classic_example(self):
        # a b c b a : distances -1 -1 -1 1 2
        addrs = np.array([0, 64, 128, 64, 0])
        assert list(reuse_distances(addrs)) == [-1, -1, -1, 1, 2]

    def test_same_line_offsets_collapse(self):
        d = reuse_distances(np.array([0, 8, 16]))
        assert list(d) == [-1, 0, 0]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            reuse_distances(np.array([]))


class TestProfileVsSimulation:
    @pytest.mark.parametrize("capacity_lines", [2, 8, 32, 128])
    def test_matches_fully_associative_lru(self, capacity_lines):
        rng = np.random.default_rng(capacity_lines)
        # Zipf-ish stream over 512 lines.
        u = rng.random(3000)
        addrs = ((u * u * 512).astype(np.int64)) * 64
        profile = reuse_profile(addrs)
        expected = lru_miss_rate(addrs, capacity_lines)
        got = profile.miss_rate(capacity_lines * 64 / 1024.0)
        assert got == pytest.approx(expected, abs=1e-12)

    @given(st.lists(st.integers(0, 40), min_size=5, max_size=200),
           st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_property_matches_lru(self, lines, capacity):
        addrs = np.array(lines) * 64
        profile = reuse_profile(addrs)
        got = profile.miss_rate(capacity * 64 / 1024.0)
        expected = lru_miss_rate(addrs, capacity)
        assert got == pytest.approx(expected, abs=1e-12)


class TestProfileQueries:
    def test_miss_curve_monotone(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 2048, 5000) * 64
        profile = reuse_profile(addrs)
        curve = profile.miss_curve([1.0, 4.0, 16.0, 64.0, 256.0])
        assert np.all(np.diff(curve) <= 1e-12)

    def test_compulsory_floor(self):
        addrs = np.arange(100) * 64  # every access compulsory
        profile = reuse_profile(addrs)
        assert profile.compulsory == 100
        assert profile.miss_rate(1e9) == 1.0

    def test_histogram(self):
        addrs = np.tile(np.arange(16) * 64, 10)
        profile = reuse_profile(addrs)
        edges, counts = profile.histogram()
        assert counts.sum() == profile.accesses - profile.compulsory

    def test_invalid_capacity(self):
        profile = reuse_profile(np.array([0, 0]))
        with pytest.raises(InvalidParameterError):
            profile.miss_rate(0.0)
