"""Tests for empirical miss-curve measurement and fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.fit import fit_power_law, measure_miss_curve
from repro.errors import InvalidParameterError


def zipf_stream(n: int, footprint_lines: int, a: float,
                rng: np.random.Generator) -> np.ndarray:
    """Zipf-distributed line accesses (power-law reuse)."""
    ranks = np.arange(1, footprint_lines + 1, dtype=float)
    probs = ranks ** (-a)
    probs /= probs.sum()
    lines = rng.choice(footprint_lines, size=n, p=probs)
    return lines * 64


class TestMeasure:
    def test_monotone_nonincreasing_in_capacity(self):
        rng = np.random.default_rng(0)
        stream = zipf_stream(30000, 1 << 14, 1.1, rng)
        points = measure_miss_curve(stream, (8.0, 32.0, 128.0, 512.0))
        mrs = [p.miss_rate for p in points]
        assert all(b <= a + 0.02 for a, b in zip(mrs, mrs[1:]))

    def test_resident_stream_has_zero_misses(self):
        # 2 KiB footprint inside a 64 KiB cache after warmup.
        stream = np.tile(np.arange(32) * 64, 200)
        points = measure_miss_curve(stream, (64.0,))
        assert points[0].miss_rate == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            measure_miss_curve(np.arange(5))
        with pytest.raises(InvalidParameterError):
            measure_miss_curve(np.arange(100) * 64, (0.0,))
        with pytest.raises(InvalidParameterError):
            measure_miss_curve(np.arange(100) * 64, warmup_fraction=1.0)


class TestFit:
    def test_recovers_synthetic_power_law(self):
        # Build ideal points from a known curve; the fit must recover it.
        from repro.capacity.missrate import PowerLawMissRate
        from repro.capacity.fit import MissCurvePoint
        truth = PowerLawMissRate(base_miss_rate=0.08,
                                 base_capacity_kib=64.0, alpha=0.45,
                                 compulsory_floor=1e-6)
        caps = (8.0, 16.0, 32.0, 64.0, 128.0)
        points = [MissCurvePoint(c, float(truth.miss_rate(c)))
                  for c in caps]
        fitted = fit_power_law(points)
        assert fitted.alpha == pytest.approx(0.45, abs=0.01)
        for c in caps:
            assert fitted.miss_rate(c) == pytest.approx(
                float(truth.miss_rate(c)), rel=0.05)

    def test_end_to_end_zipf(self):
        rng = np.random.default_rng(1)
        stream = zipf_stream(40000, 1 << 14, 1.05, rng)
        points = measure_miss_curve(stream,
                                    (8.0, 16.0, 32.0, 64.0, 128.0))
        fitted = fit_power_law(points)
        # A heavy-tailed stream is capacity-sensitive with a sane alpha.
        assert 0.05 < fitted.alpha < 2.0

    def test_insufficient_points_rejected(self):
        from repro.capacity.fit import MissCurvePoint
        with pytest.raises(InvalidParameterError):
            fit_power_law([MissCurvePoint(8.0, 0.1),
                           MissCurvePoint(16.0, 0.0)])

    def test_capacity_insensitive_rejected(self):
        from repro.capacity.fit import MissCurvePoint
        points = [MissCurvePoint(c, 0.3) for c in (8.0, 32.0, 128.0)]
        with pytest.raises(InvalidParameterError):
            fit_power_law(points)
