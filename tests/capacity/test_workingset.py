"""Tests for the Denning working-set model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity.workingset import working_set_size, working_set_sizes
from repro.errors import InvalidParameterError


class TestWorkingSetSizes:
    def test_all_distinct(self):
        addrs = np.arange(10)
        ws = working_set_sizes(addrs, window=4)
        # Position i sees min(i+1, 4) distinct addresses.
        assert list(ws) == [1, 2, 3, 4, 4, 4, 4, 4, 4, 4]

    def test_single_address(self):
        ws = working_set_sizes(np.zeros(8, dtype=int), window=4)
        assert np.all(ws == 1)

    def test_periodic_pattern(self):
        addrs = np.tile([1, 2, 3], 5)
        ws = working_set_sizes(addrs, window=3)
        assert np.all(ws[2:] == 3)

    def test_window_one(self):
        addrs = np.array([5, 5, 6, 7, 7])
        assert np.all(working_set_sizes(addrs, window=1) == 1)

    def test_window_larger_than_stream(self):
        addrs = np.array([1, 2, 1, 3])
        ws = working_set_sizes(addrs, window=100)
        assert list(ws) == [1, 2, 2, 3]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            working_set_sizes(np.array([]), window=2)
        with pytest.raises(InvalidParameterError):
            working_set_sizes(np.array([1, 2]), window=0)


class TestWorkingSetSize:
    def test_total_footprint(self):
        addrs = np.array([1, 2, 3, 2, 1, 9])
        assert working_set_size(addrs) == 4

    def test_peak_windowed(self):
        addrs = np.array([1, 1, 1, 2, 3, 4, 1, 1])
        assert working_set_size(addrs, window=3) == 3

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=60),
           st.integers(1, 30))
    @settings(max_examples=200, deadline=None)
    def test_matches_naive(self, addr_list, window):
        addrs = np.array(addr_list)
        ws = working_set_sizes(addrs, window)
        for i in range(len(addr_list)):
            lo = max(0, i - window + 1)
            assert ws[i] == len(set(addr_list[lo:i + 1]))

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_window_and_footprint(self, addr_list):
        addrs = np.array(addr_list)
        window = 5
        peak = working_set_size(addrs, window)
        assert peak <= min(window, len(set(addr_list)))
