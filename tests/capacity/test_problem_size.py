"""Tests for the Section V capacity-bounded problem size."""

from __future__ import annotations

import math

import pytest

from repro.capacity.problem_size import (
    BoundednessCase,
    classify_boundedness,
    max_bounded_problem_size,
)
from repro.errors import InvalidParameterError
from repro.experiments.capacity_bound import tmm_working_set_kib


class TestMaxBoundedProblemSize:
    def test_linear_working_set(self):
        # Y(Z) = Z: bound equals capacity.
        z = max_bounded_problem_size(lambda z: z, 100.0)
        assert z == pytest.approx(100.0, rel=1e-6)

    def test_sqrt_working_set(self):
        # Y(Z) = sqrt(Z): bound is capacity^2.
        z = max_bounded_problem_size(math.sqrt, 10.0)
        assert z == pytest.approx(100.0, rel=1e-6)

    def test_infeasible_at_zero(self):
        z = max_bounded_problem_size(lambda z: z + 50.0, 10.0)
        assert z == 0.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            max_bounded_problem_size(lambda z: z, 0.0)

    def test_tmm_working_set_monotone(self):
        assert tmm_working_set_kib(1e6) < tmm_working_set_kib(1e9)


class TestClassification:
    def test_processor_bound_small_problem(self):
        result = classify_boundedness(lambda z: z, 100.0, 50.0)
        assert result.case is BoundednessCase.PROCESSOR_BOUND
        assert result.utilization == pytest.approx(0.5, rel=1e-6)

    def test_memory_bound_big_problem(self):
        result = classify_boundedness(lambda z: z, 100.0, 500.0)
        assert result.case is BoundednessCase.MEMORY_BOUND
        assert result.utilization > 1.0

    def test_boundary_is_processor_bound(self):
        result = classify_boundedness(lambda z: z, 100.0, 100.0)
        assert result.case is BoundednessCase.PROCESSOR_BOUND

    def test_crossover_with_capacity_growth(self):
        # A fixed problem flips from memory- to processor-bound as the
        # on-chip capacity grows past its working set (Section V).
        problem = 2e9
        cases = [classify_boundedness(tmm_working_set_kib, cap, problem).case
                 for cap in (256.0, 65536.0 * 4)]
        assert cases[0] is BoundednessCase.MEMORY_BOUND
        assert cases[1] is BoundednessCase.PROCESSOR_BOUND

    def test_invalid_problem_size(self):
        with pytest.raises(InvalidParameterError):
            classify_boundedness(lambda z: z, 10.0, 0.0)
