"""Tests for miss-rate curves and the area model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity.area import AreaModel
from repro.capacity.missrate import PowerLawMissRate
from repro.errors import InvalidParameterError


class TestPowerLawMissRate:
    def test_reference_point(self):
        curve = PowerLawMissRate(base_miss_rate=0.1, base_capacity_kib=64.0)
        assert curve.miss_rate(64.0) == pytest.approx(0.1)

    def test_sqrt2_rule(self):
        # alpha = 0.5: doubling capacity divides MR by sqrt(2).
        curve = PowerLawMissRate(base_miss_rate=0.1, base_capacity_kib=64.0,
                                 alpha=0.5)
        assert curve.miss_rate(128.0) == pytest.approx(0.1 / np.sqrt(2.0))

    def test_clipping_at_one(self):
        curve = PowerLawMissRate(base_miss_rate=0.5, base_capacity_kib=64.0)
        assert curve.miss_rate(1e-6) == 1.0

    def test_compulsory_floor(self):
        curve = PowerLawMissRate(base_miss_rate=0.1, compulsory_floor=0.01,
                                 base_capacity_kib=64.0)
        assert curve.miss_rate(1e12) == pytest.approx(0.01)

    def test_inverse(self):
        curve = PowerLawMissRate(base_miss_rate=0.1, base_capacity_kib=64.0)
        cap = curve.capacity_for_miss_rate(0.05)
        assert curve.miss_rate(cap) == pytest.approx(0.05)

    def test_inverse_below_floor_rejected(self):
        curve = PowerLawMissRate(compulsory_floor=0.01)
        with pytest.raises(InvalidParameterError):
            curve.capacity_for_miss_rate(0.001)

    def test_derivative_negative(self):
        curve = PowerLawMissRate()
        assert curve.derivative(100.0) < 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PowerLawMissRate(base_miss_rate=0.0)
        with pytest.raises(InvalidParameterError):
            PowerLawMissRate(alpha=-1.0)
        with pytest.raises(InvalidParameterError):
            PowerLawMissRate(compulsory_floor=0.5, base_miss_rate=0.1)

    @given(cap=st.floats(0.001, 1e9))
    @settings(max_examples=200, deadline=None)
    def test_always_in_unit_interval(self, cap):
        curve = PowerLawMissRate()
        mr = curve.miss_rate(cap)
        assert 0.0 <= mr <= 1.0

    @given(cap=st.floats(0.01, 1e6), factor=st.floats(1.01, 100.0))
    @settings(max_examples=200, deadline=None)
    def test_monotone_nonincreasing(self, cap, factor):
        curve = PowerLawMissRate()
        assert curve.miss_rate(cap * factor) <= curve.miss_rate(cap) + 1e-12


class TestAreaModel:
    def test_round_trip(self):
        am = AreaModel(kib_per_area_unit=64.0)
        assert am.area_for_capacity(am.capacity_kib(3.5)) == pytest.approx(3.5)

    def test_linear(self):
        am = AreaModel(kib_per_area_unit=10.0)
        assert am.capacity_kib(2.0) == pytest.approx(20.0)

    def test_negative_rejected(self):
        am = AreaModel()
        with pytest.raises(InvalidParameterError):
            am.capacity_kib(-1.0)
        with pytest.raises(InvalidParameterError):
            AreaModel(kib_per_area_unit=0.0)
