"""Tests for epoch-based phase tracking."""

from __future__ import annotations

import pytest

from repro.detector import EpochDetector
from repro.errors import InvalidParameterError


def feed_uniform(det: EpochDetector, start: int, count: int, spacing: int,
                 hit: int = 3, penalty: int = 0) -> int:
    t = start
    for _ in range(count):
        det.observe(t, hit, penalty)
        t += spacing
    return t


class TestEpochs:
    def test_epoch_count(self):
        det = EpochDetector(epoch_cycles=100, window=64)
        feed_uniform(det, 0, 35, 10)  # spans cycles 0..350
        epochs = det.finish()
        assert len(epochs) >= 3
        assert epochs[0].start_cycle == 0
        assert epochs[1].start_cycle == 100

    def test_deltas_sum_to_total(self):
        det = EpochDetector(epoch_cycles=100, window=64)
        feed_uniform(det, 0, 40, 10)
        epochs = det.finish()
        assert sum(e.report.accesses for e in epochs) == 40

    def test_phase_change_detected(self):
        det = EpochDetector(epoch_cycles=200, change_threshold=0.5,
                            window=256)
        # Phase A: pure hits; phase B: heavy misses -> C-AMAT jumps.
        t = feed_uniform(det, 0, 50, 4, hit=2, penalty=0)
        t = max(t, 400)
        feed_uniform(det, t, 50, 40, hit=2, penalty=35)
        epochs = det.finish()
        assert any(e.phase_change for e in epochs)

    def test_stable_phases_not_flagged(self):
        det = EpochDetector(epoch_cycles=100, change_threshold=0.5,
                            window=64)
        feed_uniform(det, 0, 100, 10)
        epochs = det.finish()
        assert not any(e.phase_change for e in epochs)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            EpochDetector(epoch_cycles=0)
        with pytest.raises(InvalidParameterError):
            EpochDetector(change_threshold=0.0)

    def test_epoch_camat_matches_uniform_rate(self):
        det = EpochDetector(epoch_cycles=1000, window=128)
        # Disjoint accesses, 3 cycles each, spaced 10 apart: C-AMAT 3.
        feed_uniform(det, 0, 300, 10)
        epochs = det.finish()
        mid = epochs[1]
        assert mid.report.camat == pytest.approx(3.0, rel=0.05)
