"""The online HCD/MCD detector must agree with the offline analyzer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camat import AccessTrace, MemoryAccess, TraceAnalyzer, fig1_trace
from repro.detector import CAMATDetector, HitConcurrencyDetector, \
    MissConcurrencyDetector
from repro.errors import TraceError


class TestFig1Agreement:
    def test_exact_match_on_fig1(self):
        detector = CAMATDetector()
        detector.observe_trace(fig1_trace())
        r = detector.report()
        s = TraceAnalyzer().analyze(fig1_trace())
        assert r.camat == pytest.approx(s.camat)
        assert r.amat == pytest.approx(s.amat)
        assert r.hit_concurrency == pytest.approx(s.hit_concurrency)
        assert r.miss_concurrency == pytest.approx(s.miss_concurrency)
        assert r.pure_miss_rate == pytest.approx(s.pure_miss_rate)
        assert r.pure_avg_miss_penalty == pytest.approx(
            s.pure_avg_miss_penalty)
        assert r.concurrency == pytest.approx(s.concurrency)


traces = st.lists(
    st.builds(MemoryAccess,
              start=st.integers(0, 400),
              hit_cycles=st.integers(1, 6),
              miss_penalty=st.integers(0, 40)),
    min_size=1, max_size=40).map(AccessTrace)


@given(traces)
@settings(max_examples=150, deadline=None)
def test_detector_matches_offline_analyzer(trace):
    detector = CAMATDetector(window=4096)
    detector.observe_trace(trace)
    r = detector.report()
    s = TraceAnalyzer().analyze(trace)
    assert r.accesses == s.accesses
    assert r.misses == s.misses
    assert r.pure_misses == s.pure_misses
    assert np.isclose(r.camat, s.camat)
    assert np.isclose(r.amat, s.amat)


class TestWindowSemantics:
    def test_event_past_sealed_cycle_rejected(self):
        d = CAMATDetector(window=16)
        d.observe(0, 2, 0)
        d.observe(100, 2, 0)  # seals cycles < 86
        with pytest.raises(TraceError):
            d.observe(10, 2, 0)

    def test_window_too_small_for_long_miss(self):
        d = CAMATDetector(window=8)
        with pytest.raises(TraceError):
            d.observe(0, 2, 100)

    def test_incremental_report_before_drain(self):
        d = CAMATDetector(window=64)
        d.observe(0, 3, 0)
        d.observe(1000, 3, 0)  # first access's cycles now sealed
        r = d.report(drain=False)
        assert r.accesses == 2
        # Hit access-cycles accumulate at observe time (6) while active
        # cycles accumulate at seal time (3 so far): the running ratio
        # over-estimates until the window drains.
        assert r.hit_concurrency == pytest.approx(2.0)
        d.drain()
        assert d.report(drain=False).hit_concurrency == pytest.approx(1.0)


class TestComponents:
    def test_hcd_counts(self):
        hcd = HitConcurrencyDetector(window=32)
        hcd.observe(0, 3)
        hcd.observe(1, 3)
        for c in range(8):
            hcd.seal_cycle(c)
        assert hcd.total_hit_access_cycles == 6
        assert hcd.hit_active_cycles == 4
        assert hcd.hit_concurrency == pytest.approx(1.5)

    def test_hcd_seal_order_enforced(self):
        hcd = HitConcurrencyDetector(window=32)
        hcd.observe(0, 2)
        with pytest.raises(TraceError):
            hcd.seal_cycle(5)

    def test_mcd_pure_cycle_accounting(self):
        mcd = MissConcurrencyDetector(window=64)
        mcd.observe(2, 4)  # outstanding cycles 2..5
        # Cycles 0-1: nothing; 2-3 have hit activity; 4-5 are pure.
        hit = {2: 1, 3: 2}
        for c in range(8):
            mcd.seal_cycle(c, hit.get(c, 0))
        assert mcd.pure_miss_wall_cycles == 2
        assert mcd.pure_misses == 1
        assert mcd.miss_concurrency == pytest.approx(1.0)

    def test_mcd_fully_hidden_miss_not_pure(self):
        mcd = MissConcurrencyDetector(window=64)
        mcd.observe(2, 2)
        for c in range(8):
            mcd.seal_cycle(c, 1)  # hits everywhere
        assert mcd.pure_misses == 0
