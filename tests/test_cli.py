"""Tests for the ``c2bound`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig1", "table1", "fig12", "ablation-factors"):
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "C-AMAT" in out
        assert "True" in out

    def test_run_with_csv_output(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert "saved" in capsys.readouterr().out

    def test_every_fast_experiment_renders(self, capsys):
        fast = ("fig1", "table1", "fig7", "capacity",
                "ablation-miss-curve")
        for key in fast:
            assert main([key]) == 0
        assert capsys.readouterr().out

    def test_registry_complete(self):
        # Every paper artifact has a CLI entry.
        for key in ("fig1", "table1", "fig7", "fig8", "fig9", "fig10",
                    "fig11", "fig12", "fig13", "capacity",
                    "aps-accuracy"):
            assert key in EXPERIMENTS
