"""Tests for the ``c2bound`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig1", "table1", "fig12", "ablation-factors"):
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "C-AMAT" in out
        assert "True" in out

    def test_run_with_csv_output(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert "saved" in capsys.readouterr().out

    def test_every_fast_experiment_renders(self, capsys):
        fast = ("fig1", "table1", "fig7", "capacity",
                "ablation-miss-curve")
        for key in fast:
            assert main([key]) == 0
        assert capsys.readouterr().out

    def test_registry_complete(self):
        # Every paper artifact has a CLI entry.
        for key in ("fig1", "table1", "fig7", "fig8", "fig9", "fig10",
                    "fig11", "fig12", "fig13", "capacity",
                    "aps-accuracy"):
            assert key in EXPERIMENTS


class TestObservabilityFlags:
    def test_version(self, capsys):
        from repro.obs import package_version
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert package_version() in capsys.readouterr().out

    def test_quiet_silences_stdout_keeps_files(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        assert main(["fig1", "--quiet", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        assert capsys.readouterr().out == ""
        assert trace.exists()
        assert metrics.exists()

    def test_trace_validates_against_schema(self, tmp_path, capsys):
        from repro.obs import validate_trace_file
        trace = tmp_path / "t.jsonl"
        assert main(["fig1", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert validate_trace_file(trace) == []

    def test_metrics_snapshot_has_experiment_span_counters(self, tmp_path,
                                                           capsys):
        import json
        metrics = tmp_path / "m.json"
        assert main(["table1", "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        snap = json.loads(metrics.read_text())
        assert set(snap) == {"counters", "gauges", "histograms"}

    def test_manifest_written(self, tmp_path, capsys):
        import json
        manifest = tmp_path / "manifest.json"
        assert main(["fig1", "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        data = json.loads(manifest.read_text())
        assert data["experiment"] == "fig1"
        assert data["schema"].startswith("c2bound.manifest/")
        assert "metrics" in data

    def test_manifest_defaults_into_out_dir(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "manifest_table1.json").exists()

    def test_timing_summary_printed(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "experiment.fig1" in out

    def test_tracer_disabled_after_run(self):
        from repro.obs import get_tracer
        assert main(["fig1"]) == 0
        assert get_tracer().enabled is False
