"""CI chaos smoke: recovery and resume must be invisible in the results.

Two end-to-end checks over the real DSE stack (``docs/ROBUSTNESS.md``):

1. **Fault-injected sweep** — a parallel sweep through
   :class:`~repro.dse.batch.ParallelEvaluator` with a seeded
   :class:`~repro.resilience.FaultPlan` (a worker crash, a transient
   failure and a 30 s stall against a 2 s chunk deadline) must produce
   costs bit-identical to a fault-free serial sweep, with exactly-once
   budget charging on the wrapping
   :class:`~repro.dse.evaluate.BudgetedEvaluator`.
2. **Kill-and-resume round trip** — a checkpointed brute-force search
   is hard-killed mid-sweep in a child process
   (:class:`~repro.resilience.ExitAfter`, exit status 77), then resumed
   from the journal the corpse left behind; the resumed run must match
   an uninterrupted run bit-for-bit, including its evaluation count.

Exits non-zero with a diagnostic on any violation.  Usage::

    PYTHONPATH=src python scripts/chaos_check.py [state-dir]
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse.batch import ParallelEvaluator
from repro.dse.evaluate import (
    BudgetedEvaluator,
    SurrogateEvaluator,
    batch_evaluate,
)
from repro.dse.brute import brute_force_search
from repro.dse.space import DesignSpace, Parameter
from repro.laws.gfunction import PowerLawG
from repro.obs import get_registry
from repro.resilience import (
    CRASH_EXIT_STATUS,
    ExitAfter,
    Fault,
    FaultPlan,
    FaultyEvaluator,
    RetryPolicy,
    config_token,
    load_journal,
    set_checkpoint_defaults,
)

KILL_AFTER = 500  # fresh evaluations the child survives before "SIGKILL"


def _space() -> DesignSpace:
    return DesignSpace([
        Parameter("a0", (0.25, 0.5, 1.0, 2.0)),
        Parameter("a1", (0.1, 0.25, 0.5, 1.0)),
        Parameter("a2", (0.5, 1.0, 2.0, 4.0)),
        Parameter("n", (2, 8, 32, 64)),
        Parameter("issue_width", (1, 2, 4, 8)),
        Parameter("rob_size", (32, 128, 512)),
    ])


def _surrogate() -> SurrogateEvaluator:
    app = ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                             g=PowerLawG(1.0))
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    return SurrogateEvaluator(app, machine)


def _fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def check_faulted_sweep(state_dir: Path) -> None:
    space = _space()
    configs = [space.config_at(i) for i in range(0, space.size, 9)][:64]
    surrogate = _surrogate()
    want = batch_evaluate(surrogate, configs)

    plan = FaultPlan(seed=7, state_dir=str(state_dir / "fuse"), faults=(
        Fault(kind="crash", token=config_token(configs[11]),
              worker_only=True),
        Fault(kind="transient", token=config_token(configs[23])),
        Fault(kind="delay", token=config_token(configs[37]),
              delay_s=30.0),
    ))
    parallel = ParallelEvaluator(
        FaultyEvaluator(surrogate, plan), workers=2, chunk_size=8,
        chunk_timeout=2.0,
        retry_policy=RetryPolicy(base_delay=0.01, jitter=0.0),
        sleep=lambda s: None)
    budget = BudgetedEvaluator(parallel)
    try:
        got = budget.evaluate_batch(configs)
    finally:
        parallel.close()

    if not np.array_equal(got, want):
        _fail("fault-injected sweep is not bit-identical to the "
              "fault-free sweep")
    if budget.evaluations != len(configs) or budget.evaluations_cached:
        _fail(f"budget drift under faults: {budget.evaluations} fresh / "
              f"{budget.evaluations_cached} cached, expected "
              f"{len(configs)} / 0")
    counters = get_registry().snapshot()["counters"]
    for name in ("resilience.worker_crashes", "resilience.pool_rebuilds",
                 "resilience.chunk_timeouts", "resilience.retries"):
        if not counters.get(name):
            _fail(f"expected fault recovery to publish {name}")
    print(f"chaos sweep OK: {len(configs)} costs bit-identical under "
          f"crash+transient+delay "
          f"(crashes={counters['resilience.worker_crashes']}, "
          f"timeouts={counters['resilience.chunk_timeouts']}, "
          f"retries={counters['resilience.retries']})")


def run_child(checkpoint_dir: Path) -> None:
    """Child mode: checkpointed sweep that dies after KILL_AFTER evals."""
    set_checkpoint_defaults(directory=checkpoint_dir)
    brute_force_search(_space(), ExitAfter(_surrogate(), n=KILL_AFTER),
                       batch_size=64)
    sys.exit("unreachable: ExitAfter must have killed the sweep")


def check_kill_and_resume(state_dir: Path) -> None:
    checkpoint_dir = state_dir / "checkpoints"
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[1] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.run(
        [sys.executable, __file__, "--child", str(checkpoint_dir)],
        env=env, timeout=600)
    if proc.returncode != CRASH_EXIT_STATUS:
        _fail(f"child sweep exited {proc.returncode}, expected the "
              f"injected kill status {CRASH_EXIT_STATUS}")

    space = _space()
    _, partial, _ = load_journal(checkpoint_dir / "brute.jsonl")
    if not 0 < len(partial) < space.size:
        _fail(f"killed run journaled {len(partial)} evaluations, "
              f"expected a partial ledger")

    baseline = brute_force_search(space, _surrogate())
    set_checkpoint_defaults(directory=checkpoint_dir, resume=True)
    resumed = brute_force_search(space, _surrogate())
    set_checkpoint_defaults(directory=None)

    if (resumed.best_config != baseline.best_config
            or resumed.best_cost != baseline.best_cost):
        _fail("resumed search result differs from the uninterrupted run")
    if resumed.evaluations != baseline.evaluations:
        _fail(f"resumed run charged {resumed.evaluations} evaluations, "
              f"uninterrupted run charged {baseline.evaluations}")
    _, evals, _ = load_journal(checkpoint_dir / "brute.jsonl")
    if len(evals) != baseline.evaluations:
        _fail(f"healed journal ledgers {len(evals)} evaluations, "
              f"expected {baseline.evaluations}")
    print(f"kill-and-resume OK: killed at {len(partial)} journaled "
          f"evals, resumed to the same optimum with "
          f"{resumed.evaluations} exactly-once charges")


def main(argv: "list[str]") -> int:
    if len(argv) >= 2 and argv[1] == "--child":
        run_child(Path(argv[2]))
        return 1  # unreachable
    state_dir = (Path(argv[1]) if len(argv) > 1
                 else Path(tempfile.mkdtemp(prefix="chaos-")))
    state_dir.mkdir(parents=True, exist_ok=True)
    check_faulted_sweep(state_dir)
    check_kill_and_resume(state_dir)
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
