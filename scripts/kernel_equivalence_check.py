"""CI check: the epoch kernel never changes a swept cost, anywhere.

Runs a small fixed-seed design sweep through the real simulator four
ways — epoch kernel on and off, serially and across a process pool —
and asserts every cost array is bit-identical (``np.array_equal`` on
the raw float64 values, no tolerance).  The kernel toggle travels to
pool workers through the ``C2BOUND_SIM_KERNEL`` environment variable,
so this also proves the toggle is honored in forked workers, and that
worker fan-out cannot reorder or perturb results.

Usage::

    PYTHONPATH=src python scripts/kernel_equivalence_check.py [--workers N]

Exit code 0 on equivalence; 1 with a diff summary otherwise.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
from dataclasses import replace

import numpy as np

from repro.dse.batch import ParallelEvaluator
from repro.dse.evaluate import SimulatorEvaluator
from repro.sim.config import SimulatedChip
from repro.sim.kernel import ENV_KERNEL
from repro.workloads.parsec import parsec_like

SEED = 2024

CONFIGS = [{"n": n, "issue_width": iw, "rob_size": rob,
            "l1_kib": 16.0, "l2_kib": 128.0}
           for n in (1, 2)
           for iw in (2, 4)
           for rob in (32, 64)]


def _sweep(kernel: str, workers: int) -> np.ndarray:
    """Cost the fixed sweep with the given kernel toggle and workers."""
    os.environ[ENV_KERNEL] = kernel
    workload = parsec_like("fluidanimate", n_ops=1_500)
    inner = SimulatorEvaluator(workload, seed=SEED,
                               base_chip=replace(SimulatedChip(), n_cores=2),
                               cache=None)
    if workers == 1:
        return np.asarray([inner.evaluate(c) for c in CONFIGS])
    with ParallelEvaluator(inner, workers=workers) as pool:
        return pool.evaluate_batch(CONFIGS)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the parallel legs (default 4)")
    args = parser.parse_args(argv)

    legs = {(kernel, workers): _sweep(kernel, workers)
            for kernel in ("1", "0")
            for workers in (1, args.workers)}
    reference_key = ("1", 1)
    reference = legs[reference_key]
    digest = hashlib.sha256(reference.tobytes()).hexdigest()[:16]
    failed = False
    for key, costs in legs.items():
        ok = np.array_equal(costs, reference)
        label = f"kernel={key[0]} workers={key[1]}"
        print(f"  {label}: {'OK' if ok else 'DIVERGED'}")
        if not ok:
            failed = True
            for i, (a, b) in enumerate(zip(costs, reference)):
                if a != b:
                    print(f"    config {CONFIGS[i]}: {a!r} != {b!r}")
    print(f"{len(CONFIGS)} design points, costs sha256[:16]={digest}")
    if failed:
        print("kernel/worker equivalence FAILED", file=sys.stderr)
        return 1
    print("all legs bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
