"""CI check: the sweep fabric never changes a swept cost, anywhere.

Runs one fixed design sweep through every scheduling regime the fabric
supports — serial loop, fixed-chunk pool, fabric with stealing on,
stealing forced (``unit_size=1``), stealing disabled, a mid-sweep
worker crash, and a ledgered kill-one-worker-then-resume round trip —
and asserts every cost array is bit-identical (``np.array_equal`` on
raw float64, no tolerance) with identical ``dse.evaluations``
accounting.  The steal schedule, crash recovery and resume replay must
all be invisible in the results (``docs/DSE_PERFORMANCE.md``).

Usage::

    PYTHONPATH=src python scripts/fabric_equivalence_check.py [--workers N]

Exit code 0 on equivalence; 1 with a diff summary otherwise.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse.batch import ParallelEvaluator
from repro.dse.evaluate import (
    BudgetedEvaluator,
    SurrogateEvaluator,
    canonical_key,
)
from repro.dse.fabric import FabricEvaluator
from repro.dse.space import DesignSpace, Parameter
from repro.laws.gfunction import PowerLawG
from repro.obs import MetricsRegistry, set_registry
from repro.resilience import (
    Fault,
    FaultPlan,
    FaultyEvaluator,
    RetryPolicy,
    ShardedJournal,
    config_token,
)

NO_JITTER = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)


def _space() -> DesignSpace:
    return DesignSpace([
        Parameter("a0", (0.25, 0.5, 1.0, 2.0)),
        Parameter("a1", (0.1, 0.25, 0.5, 1.0)),
        Parameter("a2", (0.5, 1.0, 2.0, 4.0)),
        Parameter("n", (2, 8, 32, 64)),
        Parameter("issue_width", (1, 2, 4, 8)),
        Parameter("rob_size", (32, 128, 512)),
    ])


def _surrogate() -> SurrogateEvaluator:
    app = ApplicationProfile(f_seq=0.02, f_mem=0.35, concurrency=4.0,
                             g=PowerLawG(1.0))
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    return SurrogateEvaluator(app, machine)


def _configs() -> "list[dict]":
    space = _space()
    return [space.config_at(i) for i in range(0, space.size, 7)][:96]


def _leg(builder, configs) -> "tuple[np.ndarray, int, dict]":
    """Run one scheduling regime under a fresh metrics registry.

    Returns (costs, budget evaluations, counter snapshot); every leg
    wraps its evaluator in a BudgetedEvaluator so the exactly-once
    charging contract is part of what gets compared.
    """
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        with builder() as pool:
            budget = BudgetedEvaluator(pool)
            costs = budget.evaluate_batch(configs)
            evals = budget.evaluations
            budget.close()
        return costs, evals, registry.snapshot()["counters"]
    finally:
        set_registry(previous)


def check_legs(state_dir: Path, workers: int) -> "tuple[np.ndarray, int, bool]":
    configs = _configs()
    surrogate = _surrogate()
    plan = FaultPlan(seed=5, state_dir=str(state_dir / "fuse"), faults=(
        Fault(kind="crash", token=config_token(configs[17]),
              worker_only=True),))
    crashy = FaultyEvaluator(surrogate, plan)

    legs = {
        "serial": lambda: FabricEvaluator(surrogate, workers=1),
        "pool (fixed chunks)": lambda: ParallelEvaluator(
            surrogate, workers=workers),
        "fabric steal=on": lambda: FabricEvaluator(
            surrogate, workers=workers),
        "fabric steal forced": lambda: FabricEvaluator(
            surrogate, workers=workers, unit_size=1),
        "fabric steal=off": lambda: FabricEvaluator(
            surrogate, workers=workers, steal=False),
        "fabric worker crash": lambda: FabricEvaluator(
            crashy, workers=workers, unit_size=8,
            retry_policy=NO_JITTER, sleep=lambda s: None),
    }

    reference = evals_ref = None
    failed = False
    for label, builder in legs.items():
        costs, evals, counters = _leg(builder, configs)
        if reference is None:
            reference, evals_ref = costs, evals
        ok = (np.array_equal(costs, reference) and evals == evals_ref
              and counters["dse.evaluations"] == evals_ref)
        detail = ""
        if "forced" in label:
            steals = counters.get("dse.fabric.steals", 0)
            detail = f" (steals={steals})"
            ok = ok and steals > 0
        elif label == "fabric steal=off":
            ok = ok and not counters.get("dse.fabric.steals")
        elif "crash" in label:
            detail = (f" (crashes="
                      f"{counters.get('resilience.worker_crashes', 0)})")
            ok = ok and counters.get("resilience.worker_crashes")
        print(f"  {label}: {'OK' if ok else 'DIVERGED'}{detail}")
        if not ok:
            failed = True
            for i, (a, b) in enumerate(zip(costs, reference)):
                if a != b:
                    print(f"    config {configs[i]}: {a!r} != {b!r}")
            if evals != evals_ref:
                print(f"    charged {evals} evaluations, expected "
                      f"{evals_ref}")
    return reference, evals_ref, failed


def check_kill_and_resume(state_dir: Path, workers: int,
                          reference: np.ndarray, evals_ref: int) -> bool:
    """Ledgered fabric sweep killed halfway, then resumed exactly-once."""
    configs = _configs()
    surrogate = _surrogate()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        led_dir = state_dir / "ledger"
        half = configs[:len(configs) // 2]
        with FabricEvaluator(surrogate, workers=workers) as fabric:
            budget = BudgetedEvaluator(
                fabric, checkpoint=ShardedJournal.create(led_dir,
                                                         method="brute"))
            budget.evaluate_batch(half)
            budget.close()  # the "corpse" leaves shard journals behind

        registry.reset()
        ledger, restored = ShardedJournal.open_resume(led_dir,
                                                      method="brute")
        if not restored:
            print("  kill-and-resume: DIVERGED (interrupted half "
                  "journaled nothing)")
            return True
        with FabricEvaluator(surrogate, workers=workers,
                             unit_size=1) as fabric:
            budget = BudgetedEvaluator(fabric, checkpoint=ledger)
            budget.restore(restored)
            costs = budget.evaluate_batch(configs)
            evals = budget.evaluations
            budget.close()
        counters = registry.snapshot()["counters"]

        _ledger, final = ShardedJournal.open_resume(led_dir,
                                                    method="brute")
        _ledger.close()
        keys = [k for k, _ in final]
        distinct = len({canonical_key(c) for c in configs})
        ok = (np.array_equal(costs, reference)
              and evals == evals_ref
              and counters["dse.evaluations"] == evals_ref
              and len(keys) == len(set(keys)) == distinct)
        print(f"  kill-and-resume: {'OK' if ok else 'DIVERGED'} "
              f"(restored={len(restored)}, ledgered={len(keys)})")
        if not ok and evals != evals_ref:
            print(f"    resumed run charged {evals} evaluations, "
                  f"uninterrupted charged {evals_ref}")
        return not ok
    finally:
        set_registry(previous)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="fabric slots for the parallel legs "
                             "(default 4)")
    parser.add_argument("state_dir", nargs="?", default=None,
                        help="scratch directory for the ledger round "
                             "trip (default: a fresh temp dir)")
    args = parser.parse_args(argv)
    state_dir = (Path(args.state_dir) if args.state_dir
                 else Path(tempfile.mkdtemp(prefix="fabric-eq-")))
    state_dir.mkdir(parents=True, exist_ok=True)

    reference, evals_ref, failed = check_legs(state_dir, args.workers)
    failed |= check_kill_and_resume(state_dir, args.workers,
                                    reference, evals_ref)
    digest = hashlib.sha256(np.asarray(reference).tobytes()).hexdigest()
    print(f"{len(_configs())} design points, {evals_ref} evaluations, "
          f"costs sha256[:16]={digest[:16]}")
    if failed:
        print("fabric equivalence FAILED", file=sys.stderr)
        return 1
    print("all legs bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
