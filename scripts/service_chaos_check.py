"""CI service chaos gate: the job server must lose nothing to SIGKILL
and shed load explicitly under saturation (``docs/SERVICE.md``).

Two end-to-end checks against a **real** server subprocess:

1. **SIGKILL + restart** — submit four multi-tenant jobs, wait until
   at least three are simultaneously in flight, SIGKILL the server,
   restart it on the same state directory, and assert every job
   resumes (``resumed: true``) to a result **bit-identical** to its
   uninterrupted twin — verified through ``c2bound diff`` (exit 0 on
   a per-job run directory pair) — with per-tenant evaluation budgets
   charged exactly once across the crash.
2. **Saturating burst** — 1000 synthetic clients against a
   queue-depth-4 server: every shed submission gets ``429`` with a
   machine-readable reason and a ``Retry-After`` header, every
   accepted job completes, and the server survives to shut down
   gracefully on SIGTERM.

Exits non-zero with a diagnostic on any violation.  Usage::

    PYTHONPATH=src python scripts/service_chaos_check.py [state-dir]
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.dse.jobs import run_job
from repro.obs.report import diff_command
from repro.service.wire import canonical_json

SRC = Path(__file__).resolve().parents[1] / "src"

#: ~27k-point space: a few seconds per job with batch_size=1, so the
#: kill reliably lands with jobs mid-sweep.
BIG_SPACE = {"params": [
    {"name": "a0", "values": [0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0]},
    {"name": "a1", "values": [0.1, 0.2, 0.4, 0.8, 1.2, 1.6]},
    {"name": "a2", "values": [0.5, 1.0, 2.0, 3.0, 4.0, 6.0]},
    {"name": "n", "values": [2, 4, 8, 16, 32, 64, 128, 256]},
    {"name": "issue_width", "values": [1, 2, 4, 8]},
    {"name": "rob_size", "values": [32, 128, 512]},
]}

TINY_SPACE = {"params": [
    {"name": "a0", "values": [2, 4]},
    {"name": "a1", "values": [1]},
    {"name": "a2", "values": [1]},
    {"name": "n", "values": [4, 8]},
]}

SHED_REASONS = {"queue_full", "memory_watermark", "tenant_quota",
                "budget_exhausted"}


def _fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def http(port: int, method: str, path: str, payload=None):
    """One request → (status, headers, parsed JSON body)."""
    data = (json.dumps(payload).encode() if payload is not None else None)
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as err:
        body = err.read()
        try:
            doc = json.loads(body) if body else {}
        except json.JSONDecodeError:
            doc = {"raw": body.decode("latin-1")}
        return err.code, dict(err.headers), doc


def start_server(state_dir: Path, *extra: str) -> "tuple[subprocess.Popen, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    discovery = state_dir / "server.json"
    if discovery.exists():
        discovery.unlink()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), "--port", "0", *extra],
        env=env)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            _fail(f"server exited {proc.returncode} during startup")
        if discovery.exists():
            try:
                port = json.loads(discovery.read_text())["port"]
                status, _, _ = http(port, "GET", "/healthz")
                if status == 200:
                    return proc, port
            except (OSError, json.JSONDecodeError, KeyError):
                pass
        time.sleep(0.1)
    proc.kill()
    _fail("server did not become healthy within 60 s")
    raise AssertionError  # unreachable


def job_spec(index: int) -> dict:
    """Per-job spec: distinct ``a0`` tails so each job has its own
    twin result (a copy-paste mixup would be caught, not masked)."""
    space = {"params": [dict(p) for p in BIG_SPACE["params"]]}
    space["params"][0] = {
        "name": "a0",
        "values": BIG_SPACE["params"][0]["values"][: 5 + index]}
    return {"kind": "sweep", "space": space, "batch_size": 1}


def write_run_dir(run_dir: Path, result: dict) -> None:
    """Render a job result as a run directory ``c2bound diff`` groks:
    one CSV, one row per field, values in canonical JSON."""
    run_dir.mkdir(parents=True, exist_ok=True)
    rows = "".join(f"{key},{canonical_json(result[key])}\n"
                   for key in sorted(result))
    (run_dir / "result.csv").write_text("field,value\n" + rows)


def check_kill_and_resume(base: Path) -> None:
    state_dir = base / "kill"
    tenants = ["alice", "bob", "alice", "bob"]
    proc, port = start_server(state_dir, "--max-running", "3",
                              "--default-concurrency", "2")

    ids = []
    for index, tenant in enumerate(tenants):
        status, _, doc = http(port, "POST", "/v1/jobs", {
            "schema": "c2bound.job/1", "tenant": tenant,
            "priority": index % 3, "job": job_spec(index)})
        if status != 202:
            proc.kill()
            _fail(f"submission {index} rejected: {status} {doc}")
        ids.append(doc["job_id"])

    deadline = time.monotonic() + 30
    in_flight = 0
    while time.monotonic() < deadline:
        _, _, health = http(port, "GET", "/healthz")
        in_flight = health["running"]
        if in_flight >= 3:
            break
        time.sleep(0.02)
    if in_flight < 3:
        proc.kill()
        _fail(f"never saw >=3 in-flight jobs (got {in_flight}); "
              "grow BIG_SPACE")
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    print(f"killed the server with {in_flight} jobs in flight")

    twins = [run_job(job_spec(index)) for index in range(len(tenants))]

    proc, port = start_server(state_dir, "--max-running", "3",
                              "--default-concurrency", "2")
    try:
        docs = []
        for job_id in ids:
            wait_until = time.monotonic() + 300
            while True:
                _, _, doc = http(port, "GET", f"/v1/jobs/{job_id}")
                if doc["status"] not in ("queued", "running"):
                    break
                if time.monotonic() > wait_until:
                    _fail(f"job {job_id} never finished after restart")
                time.sleep(0.1)
            docs.append(doc)

        for index, doc in enumerate(docs):
            if doc["status"] != "done":
                _fail(f"job {index} ended {doc['status']!r} after "
                      f"restart: {doc.get('error')}")
            if doc["resumed"] is not True:
                _fail(f"job {index} completed without resuming")
            twin_dir = base / "twin" / str(index)
            resumed_dir = base / "resumed" / str(index)
            write_run_dir(twin_dir, twins[index])
            write_run_dir(resumed_dir, doc["result"])
            if diff_command([str(twin_dir), str(resumed_dir),
                             "--quiet"]) != 0:
                diff_command([str(twin_dir), str(resumed_dir)])
                _fail(f"job {index} resumed result is not bit-identical "
                      "to its uninterrupted twin (c2bound diff above)")
            if doc["charged"] != twins[index]["evaluations"]:
                _fail(f"job {index} charged {doc['charged']}, twin "
                      f"evaluated {twins[index]['evaluations']}")

        expected = {tenant: 0 for tenant in tenants}
        for tenant, twin in zip(tenants, twins):
            expected[tenant] += twin["evaluations"]
        _, _, health = http(port, "GET", "/healthz")
        charged = {name: snap["charged"]
                   for name, snap in health["tenants"].items()}
        if charged != expected:
            _fail(f"per-tenant budgets drifted across the crash: "
                  f"charged {charged}, expected {expected}")
    finally:
        proc.terminate()
        proc.wait(timeout=30)
    print(f"kill-and-resume OK: {len(ids)} jobs bit-identical via "
          f"c2bound diff, budgets {expected} charged exactly once")


def check_burst(base: Path) -> None:
    state_dir = base / "burst"
    proc, port = start_server(
        state_dir, "--max-running", "2", "--queue-depth", "4",
        "--default-queued", "2000")
    clients, per_client = 20, 50  # the 1000-client burst
    accepted: "list[str]" = []
    shed: "list[dict]" = []
    errors: "list[str]" = []
    lock = threading.Lock()

    def client(worker: int) -> None:
        for i in range(per_client):
            status, headers, doc = http(port, "POST", "/v1/jobs", {
                "schema": "c2bound.job/1",
                "tenant": f"burst-{worker}", "priority": 5,
                "job": {"kind": "sweep", "space": TINY_SPACE}})
            with lock:
                if status == 202:
                    accepted.append(doc["job_id"])
                elif status == 429:
                    if doc.get("reason") not in SHED_REASONS:
                        errors.append(f"429 without a reason: {doc}")
                    if "Retry-After" not in headers:
                        errors.append("429 without Retry-After")
                    shed.append(doc)
                else:
                    errors.append(f"unexpected status {status}: {doc}")

    threads = [threading.Thread(target=client, args=(w,))
               for w in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    try:
        if errors:
            _fail("burst anomalies:\n" + "\n".join(errors[:10]))
        if not shed:
            _fail(f"burst of {clients * per_client} submissions was "
                  "never shed — the queue gates are not engaging")
        if not accepted:
            _fail("burst shed everything — admission never succeeded")
        if proc.poll() is not None:
            _fail(f"server died under the burst (exit {proc.returncode})")

        deadline = time.monotonic() + 300
        pending = set(accepted)
        while pending and time.monotonic() < deadline:
            job_id = next(iter(pending))
            _, _, doc = http(port, "GET", f"/v1/jobs/{job_id}")
            if doc["status"] == "done":
                pending.discard(job_id)
            elif doc["status"] not in ("queued", "running"):
                _fail(f"accepted job {job_id} ended {doc['status']!r}: "
                      f"{doc.get('error')}")
            else:
                time.sleep(0.05)
        if pending:
            _fail(f"{len(pending)} accepted jobs never completed")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            _fail("graceful SIGTERM shutdown hung")
    if proc.returncode != 0:
        _fail(f"graceful shutdown exited {proc.returncode}")
    print(f"burst OK: {len(accepted)} accepted (all completed), "
          f"{len(shed)} shed with 429 + Retry-After, "
          "graceful SIGTERM shutdown")


def main(argv: "list[str]") -> int:
    base = (Path(argv[1]) if len(argv) > 1
            else Path(tempfile.mkdtemp(prefix="service-chaos-")))
    base.mkdir(parents=True, exist_ok=True)
    check_kill_and_resume(base)
    check_burst(base)
    print("service chaos OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
