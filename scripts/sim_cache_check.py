"""CI cache-correctness check: a warm sim cache is free and exact.

Runs a small Fig. 12-style design sweep through the real simulator
twice against one persistent :class:`repro.sim.cache_store.SimCacheStore`
in the working directory:

1. the cold pass simulates every distinct configuration and persists
   each cost;
2. the warm pass must be **simulation-free** (``sim.runs == 0``, every
   cost answered by ``sim.cache.hits``) and **bit-identical** to the
   cold pass, with the same budget accounting
   (``BudgetedEvaluator.evaluations`` unchanged by caching).

Exits non-zero with a diagnostic on any violation.  Usage::

    PYTHONPATH=src python scripts/sim_cache_check.py [store-dir]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.dse.evaluate import BudgetedEvaluator, SimulatorEvaluator
from repro.obs import get_registry
from repro.sim.cache_store import SimCacheStore
from repro.sim.config import SimulatedChip
from repro.workloads.parsec import parsec_like


def _space() -> list[dict]:
    configs = [{"n": n, "issue_width": iw, "rob_size": 32,
                "l1_kib": 16.0, "l2_kib": 128.0}
               for n in (2, 4) for iw in (2, 4)]
    # A duplicate exercises the budget memo on top of the sim cache.
    return configs + [dict(configs[0])]


def _sweep(store: SimCacheStore) -> tuple[list[float], int, dict]:
    registry = get_registry()
    registry.reset()
    workload = parsec_like("fluidanimate", n_ops=2_000)
    evaluator = BudgetedEvaluator(SimulatorEvaluator(
        workload, seed=42, base_chip=replace(SimulatedChip(), n_cores=2),
        cache=store))
    costs = [evaluator.evaluate(config) for config in _space()]
    counters = {name: registry.counter(name).value
                for name in ("sim.runs", "sim.cache.hits",
                             "sim.cache.misses", "sim.cache.stores")}
    return costs, evaluator.evaluations, counters


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "sim-cache"
    store = SimCacheStore(root)

    cold_costs, cold_evals, cold_counters = _sweep(store)
    # A fresh store instance proves the warm pass reads from disk, not
    # from the first instance's in-memory LRU front.
    warm_costs, warm_evals, warm_counters = _sweep(SimCacheStore(root))

    distinct = len({tuple(sorted(c.items())) for c in _space()})
    failures = []
    if warm_costs != cold_costs:
        failures.append(
            f"warm costs differ from cold: {warm_costs} != {cold_costs}")
    if warm_counters["sim.runs"] != 0:
        failures.append(
            f"warm pass ran {warm_counters['sim.runs']} simulations "
            "(expected 0)")
    if warm_counters["sim.cache.hits"] != distinct:
        failures.append(
            f"warm pass hit the store {warm_counters['sim.cache.hits']} "
            f"times (expected {distinct})")
    if cold_counters["sim.runs"] != distinct:
        failures.append(
            f"cold pass ran {cold_counters['sim.runs']} simulations "
            f"(expected {distinct})")
    if warm_evals != cold_evals or warm_evals != distinct:
        failures.append(
            f"budget accounting drifted: cold {cold_evals}, warm "
            f"{warm_evals}, expected {distinct}")

    print(f"cold: costs={cold_costs} evaluations={cold_evals} "
          f"counters={cold_counters}")
    print(f"warm: costs={warm_costs} evaluations={warm_evals} "
          f"counters={warm_counters}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: warm re-run over {distinct} distinct configurations was "
          "simulation-free and bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
