"""Perf-regression sentry over the benchmark suite's BENCH records.

The benchmark harness (``benchmarks/conftest.py``) persists a
``results/BENCH_<test>.json`` record per run — wall time, provenance
and the run's headline metrics.  Those records are throwaway
(``results/`` is gitignored), so on their own they give the repo no
memory of how fast it used to be.  This script is that memory:

- ``update`` folds every ``results/BENCH_*.json`` into an append-only
  baseline history (``benchmarks/perf_baselines.jsonl``, committed),
  one JSON line per observation;
- ``check`` compares the current records against the history's recent
  median per benchmark, with a **noise band** derived from the
  history's own spread (median absolute deviation), and exits
  non-zero on any regression — this is the CI gate.

The band is ``max(3 * MAD / median, FLOOR)`` capped at ``CEIL``: a
noisy benchmark earns itself a wider band, a stable one is held to the
floor, and nothing can inflate its band past the cap by being
erratic.  With the defaults a clean benchmark fails at ~1.5x its
median and even the noisiest fails well before 2x — the synthetic-2x
fixture test in ``tests/test_perf_sentry.py`` pins that property.

A benchmark whose *workload* changed (different ``dse.evaluations`` /
``sim.instructions`` signature than the history) is reported as
drifted and skipped, not failed: comparing its wall time against the
old workload's would be meaningless.  Re-baseline with ``update``.

Usage::

    PYTHONPATH=src python scripts/perf_sentry.py update [--results DIR]
    PYTHONPATH=src python scripts/perf_sentry.py check  [--results DIR]
        [--baselines FILE] [--window N] [--json FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "results"
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "perf_baselines.jsonl"

#: How many of a benchmark's most recent history lines feed the median.
WINDOW = 20
#: Minimum relative noise band — a perfectly stable benchmark still
#: gets 50% headroom (machine-to-machine variance dwarfs run-to-run).
BAND_FLOOR = 0.5
#: Maximum relative band — a noisy benchmark can widen its band, but a
#: 2x slowdown must always fail: (1 + CEIL) < 2.
BAND_CEIL = 0.9

#: Counters that fingerprint a benchmark's workload.  If any of them
#: changed against the history, wall time is not comparable.
WORK_KEYS = ("dse.evaluations", "sim.runs", "sim.instructions",
             "solver.newton.solves")


def _work_signature(metrics: dict) -> dict:
    counters = metrics.get("counters", {}) if metrics else {}
    return {key: counters[key] for key in WORK_KEYS if key in counters}


def load_bench_records(results_dir: Path) -> "list[dict]":
    """Parse every ``BENCH_*.json`` under ``results_dir``.

    Records without a ``wall_time_s`` key (speedup-style summaries
    written by individual benchmarks, not the harness) are skipped —
    they carry ratios, not comparable absolute times.
    """
    records = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        record = json.loads(path.read_text(encoding="utf-8"))
        if "wall_time_s" not in record:
            continue
        records.append({
            "bench": record.get("test", path.stem),
            "wall_time_s": float(record["wall_time_s"]),
            "git_sha": record.get("git_sha"),
            "package_version": record.get("package_version"),
            "work": _work_signature(record.get("metrics", {})),
        })
    return records


def load_history(baselines: Path) -> "dict[str, list[dict]]":
    """Baseline lines grouped by benchmark, file order preserved."""
    history: "dict[str, list[dict]]" = {}
    if not baselines.exists():
        return history
    for line in baselines.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        history.setdefault(entry["bench"], []).append(entry)
    return history


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def noise_band(times: "list[float]") -> float:
    """Relative tolerance from the history's own spread."""
    median = _median(times)
    if median <= 0:
        return BAND_CEIL
    mad = _median([abs(t - median) for t in times])
    return min(BAND_CEIL, max(BAND_FLOOR, 3.0 * mad / median))


def check_record(record: dict, history: "list[dict]",
                 window: int = WINDOW) -> dict:
    """One benchmark's verdict against its baseline history."""
    recent = history[-window:]
    result = {
        "bench": record["bench"],
        "wall_time_s": record["wall_time_s"],
        "status": "ok",
        "baseline_s": None,
        "band": None,
        "ratio": None,
        "samples": len(recent),
    }
    if not recent:
        result["status"] = "new"
        return result
    baseline_work = recent[-1].get("work", {})
    if record["work"] != baseline_work:
        result["status"] = "workload_drift"
        result["work"] = record["work"]
        result["baseline_work"] = baseline_work
        return result
    times = [float(entry["wall_time_s"]) for entry in recent]
    median = _median(times)
    band = noise_band(times)
    result["baseline_s"] = median
    result["band"] = band
    result["ratio"] = (record["wall_time_s"] / median if median > 0
                       else float("inf"))
    if record["wall_time_s"] > median * (1.0 + band):
        result["status"] = "regression"
    return result


def run_check(results_dir: Path, baselines: Path,
              window: int = WINDOW) -> dict:
    records = load_bench_records(results_dir)
    history = load_history(baselines)
    checks = [check_record(record, history.get(record["bench"], []),
                           window=window)
              for record in records]
    regressions = [c for c in checks if c["status"] == "regression"]
    return {
        "results_dir": str(results_dir),
        "baselines": str(baselines),
        "window": window,
        "checked": len(checks),
        "regressions": len(regressions),
        "checks": checks,
    }


def run_update(results_dir: Path, baselines: Path) -> int:
    records = load_bench_records(results_dir)
    baselines.parent.mkdir(parents=True, exist_ok=True)
    with baselines.open("a", encoding="utf-8") as sink:
        for record in records:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def _format_check(check: dict) -> str:
    bench = check["bench"]
    if check["status"] == "new":
        return f"  NEW        {bench}: {check['wall_time_s']:.3f}s (no baseline)"
    if check["status"] == "workload_drift":
        return (f"  DRIFT      {bench}: workload changed "
                f"{check['baseline_work']} -> {check['work']}; re-baseline")
    tag = "REGRESSION" if check["status"] == "regression" else "ok"
    return (f"  {tag:<10} {bench}: {check['wall_time_s']:.3f}s vs median "
            f"{check['baseline_s']:.3f}s over {check['samples']} "
            f"(ratio {check['ratio']:.2f}, band +{100 * check['band']:.0f}%)")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_sentry.py",
        description="benchmark wall-time regression gate")
    parser.add_argument("command", choices=("update", "check"))
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                        help="directory holding BENCH_*.json records")
    parser.add_argument("--baselines", type=Path,
                        default=DEFAULT_BASELINES,
                        help="append-only baseline history (JSONL)")
    parser.add_argument("--window", type=int, default=WINDOW,
                        help="recent history lines per benchmark")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the check document to FILE")
    args = parser.parse_args(argv)

    if not args.results.is_dir():
        print(f"perf_sentry: no results directory at {args.results}",
              file=sys.stderr)
        return 2

    if args.command == "update":
        appended = run_update(args.results, args.baselines)
        print(f"perf_sentry: appended {appended} record(s) to "
              f"{args.baselines}")
        return 0

    report = run_check(args.results, args.baselines, window=args.window)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n",
                             encoding="utf-8")
    print(f"perf_sentry: {report['checked']} benchmark(s) vs "
          f"{args.baselines}")
    for check in report["checks"]:
        print(_format_check(check))
    if report["regressions"]:
        print(f"perf_sentry: {report['regressions']} regression(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
