"""Silicon area <-> cache capacity conversion.

The paper's constraint (Eq. 12) is expressed in area units; the miss-rate
curves are expressed in capacity.  :class:`AreaModel` performs the linear
conversion (SRAM density), giving the optimizer a single consistent unit
system.  Area is measured in the paper's abstract "area units" (the unit
in which a baseline core has area ``A0``); we adopt mm^2-like units with a
configurable density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["AreaModel"]


@dataclass(frozen=True)
class AreaModel:
    """Linear SRAM area/capacity model.

    Attributes
    ----------
    kib_per_area_unit:
        Cache capacity (KiB) per unit of silicon area.  The default (64)
        roughly matches 45 nm SRAM density where a 1 mm^2 macro holds
        ~64 KiB; any consistent value works because the optimizer only
        depends on the product with the miss-rate curve's reference
        capacity.
    """

    kib_per_area_unit: float = 64.0

    def __post_init__(self) -> None:
        if self.kib_per_area_unit <= 0:
            raise InvalidParameterError(
                f"density must be positive, got {self.kib_per_area_unit}")

    def capacity_kib(self, area: "float | np.ndarray") -> "float | np.ndarray":
        """Capacity of a cache occupying ``area`` area units."""
        a = np.asarray(area, dtype=float)
        if np.any(a < 0):
            raise InvalidParameterError("area must be non-negative")
        out = a * self.kib_per_area_unit
        return float(out) if np.isscalar(area) else out

    def area_for_capacity(self, capacity_kib: "float | np.ndarray") -> "float | np.ndarray":
        """Area required for ``capacity_kib`` of cache."""
        c = np.asarray(capacity_kib, dtype=float)
        if np.any(c < 0):
            raise InvalidParameterError("capacity must be non-negative")
        out = c / self.kib_per_area_unit
        return float(out) if np.isscalar(capacity_kib) else out
