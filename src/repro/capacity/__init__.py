"""Memory-capacity models (paper Sections III & V).

- :mod:`repro.capacity.missrate` — miss-rate-vs-capacity curves (the
  power-law / sqrt-2 rule) that couple cache area to C-AMAT in the
  optimizer.
- :mod:`repro.capacity.area` — silicon area <-> cache capacity.
- :mod:`repro.capacity.workingset` — Denning working-set model over
  address traces.
- :mod:`repro.capacity.problem_size` — the on-chip-memory-bounded problem
  size (``max Z s.t. Y <= X``) and the processor-bound vs memory-bound
  case split of Section V.
"""

from repro.capacity.missrate import MissRateCurve, PowerLawMissRate
from repro.capacity.area import AreaModel
from repro.capacity.fit import (
    MissCurvePoint,
    fit_power_law,
    measure_miss_curve,
)
from repro.capacity.reuse import ReuseProfile, reuse_distances, reuse_profile
from repro.capacity.workingset import working_set_sizes, working_set_size
from repro.capacity.problem_size import (
    BoundednessCase,
    CapacityBound,
    classify_boundedness,
    max_bounded_problem_size,
)

__all__ = [
    "MissRateCurve",
    "PowerLawMissRate",
    "AreaModel",
    "MissCurvePoint",
    "measure_miss_curve",
    "fit_power_law",
    "ReuseProfile",
    "reuse_distances",
    "reuse_profile",
    "working_set_sizes",
    "working_set_size",
    "BoundednessCase",
    "CapacityBound",
    "classify_boundedness",
    "max_bounded_problem_size",
]
