"""Miss-rate-vs-capacity curves.

The C2-Bound optimizer needs C-AMAT as a function of cache areas
``A1, A2``; the link is a miss-rate curve.  We use the classical power law
``MR(cap) = MR0 * (cap/cap0)^{-alpha}`` (alpha ~ 0.5 is the "sqrt-2
rule": doubling the cache cuts misses by sqrt(2)), floored at a compulsory
miss rate and capped at 1.  The curve is exactly what makes the paper's
throughput curves (Figs. 10-11) peak at a finite core count: more cores
mean smaller per-core caches, higher miss rate and higher C-AMAT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["MissRateCurve", "PowerLawMissRate"]


class MissRateCurve:
    """Interface: map cache capacity (KiB) to a miss rate in ``[0, 1]``."""

    def miss_rate(self, capacity_kib: "float | np.ndarray") -> "float | np.ndarray":
        """Miss rate at the given capacity."""
        raise NotImplementedError

    def derivative(self, capacity_kib: float, *, step: float = 1e-4) -> float:
        """d(miss rate)/d(capacity); central difference by default."""
        h = step * max(abs(capacity_kib), 1.0)
        up = float(self.miss_rate(capacity_kib + h))
        dn = float(self.miss_rate(max(capacity_kib - h, 1e-12)))
        return (up - dn) / (2.0 * h)


@dataclass(frozen=True)
class PowerLawMissRate(MissRateCurve):
    """``MR(cap) = clip(MR0 * (cap/cap0)^{-alpha}, floor, 1)``.

    Attributes
    ----------
    base_miss_rate:
        ``MR0``, miss rate at the reference capacity, in ``(0, 1]``.
    base_capacity_kib:
        ``cap0``, reference capacity in KiB, ``> 0``.
    alpha:
        Power-law exponent, ``> 0`` (0.5 is the sqrt-2 rule).
    compulsory_floor:
        Lower bound modeling compulsory misses, in ``[0, base_miss_rate]``.
    """

    base_miss_rate: float = 0.05
    base_capacity_kib: float = 256.0
    alpha: float = 0.5
    compulsory_floor: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 < self.base_miss_rate <= 1.0:
            raise InvalidParameterError(
                f"base miss rate must be in (0, 1], got {self.base_miss_rate}")
        if self.base_capacity_kib <= 0:
            raise InvalidParameterError(
                f"base capacity must be positive, got {self.base_capacity_kib}")
        if self.alpha <= 0:
            raise InvalidParameterError(
                f"alpha must be positive, got {self.alpha}")
        if not 0.0 <= self.compulsory_floor <= self.base_miss_rate:
            raise InvalidParameterError(
                "compulsory floor must be in [0, base miss rate], got "
                f"{self.compulsory_floor}")

    def miss_rate(self, capacity_kib: "float | np.ndarray") -> "float | np.ndarray":
        cap = np.asarray(capacity_kib, dtype=float)
        if np.any(cap <= 0):
            raise InvalidParameterError("capacity must be positive")
        raw = self.base_miss_rate * (cap / self.base_capacity_kib) ** (-self.alpha)
        out = np.clip(raw, self.compulsory_floor, 1.0)
        return float(out) if np.isscalar(capacity_kib) else out

    def capacity_for_miss_rate(self, target: float) -> float:
        """Invert the (unclipped) power law: capacity achieving ``target``.

        Raises if the target is below the compulsory floor (unreachable).
        """
        if not 0.0 < target <= 1.0:
            raise InvalidParameterError(
                f"target miss rate must be in (0, 1], got {target}")
        if target < self.compulsory_floor:
            raise InvalidParameterError(
                f"target {target} is below the compulsory floor "
                f"{self.compulsory_floor}")
        return self.base_capacity_kib * (target / self.base_miss_rate) ** (-1.0 / self.alpha)
