"""Empirical miss-rate curves measured from address streams.

The analytic model assumes power-law miss curves; this module *measures*
them: replay an address stream through tag stores of increasing capacity
(our set-associative cache model) and fit ``MR(cap) = MR0 *
(cap/cap0)^{-alpha}`` by least squares in log space.  This is how a
practitioner calibrates :class:`repro.capacity.missrate.PowerLawMissRate`
for a real workload, and how the test suite validates that the sqrt-2
default is in the right regime for the synthetic suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capacity.missrate import PowerLawMissRate
from repro.errors import InvalidParameterError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig

__all__ = ["MissCurvePoint", "measure_miss_curve", "fit_power_law"]


@dataclass(frozen=True)
class MissCurvePoint:
    """One measured (capacity, miss-rate) sample."""

    capacity_kib: float
    miss_rate: float


def measure_miss_curve(
    addresses: np.ndarray,
    capacities_kib: "tuple[float, ...] | list[float]" = (
        4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
    *,
    assoc: int = 8,
    line_bytes: int = 64,
    warmup_fraction: float = 0.25,
) -> list[MissCurvePoint]:
    """Replay ``addresses`` at each capacity; return cold-excluded MRs.

    The first ``warmup_fraction`` of the stream warms the tag store; the
    miss rate is measured over the remainder (compulsory misses of the
    warm region excluded, as in standard cache characterization).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1 or addresses.size < 10:
        raise InvalidParameterError("need a 1-D stream of >= 10 addresses")
    if not 0.0 <= warmup_fraction < 1.0:
        raise InvalidParameterError(
            f"warmup fraction must be in [0,1), got {warmup_fraction}")
    split = int(addresses.size * warmup_fraction)
    points: list[MissCurvePoint] = []
    for cap in capacities_kib:
        if cap <= 0:
            raise InvalidParameterError(f"capacity must be > 0, got {cap}")
        cache = SetAssociativeCache(CacheConfig(
            size_kib=cap, assoc=assoc, line_bytes=line_bytes))
        for a in addresses[:split]:
            cache.access(int(a))
        cache.reset_stats()
        for a in addresses[split:]:
            cache.access(int(a))
        points.append(MissCurvePoint(capacity_kib=float(cap),
                                     miss_rate=cache.miss_rate))
    return points


def fit_power_law(
    points: "list[MissCurvePoint]",
    *,
    compulsory_floor: float = 1e-4,
) -> PowerLawMissRate:
    """Least-squares log-log fit of a power-law miss curve.

    Samples at zero miss rate (fully resident) are excluded from the fit
    but lower-bound the compulsory floor.  Raises if fewer than two
    nonzero samples remain or the fitted exponent is non-positive
    (capacity-insensitive stream).
    """
    nz = [p for p in points if p.miss_rate > 0.0]
    if len(nz) < 2:
        raise InvalidParameterError(
            "need >= 2 nonzero miss-rate samples to fit")
    caps = np.array([p.capacity_kib for p in nz])
    mrs = np.array([p.miss_rate for p in nz])
    slope, intercept = np.polyfit(np.log(caps), np.log(mrs), 1)
    alpha = -float(slope)
    if alpha <= 1e-6:
        raise InvalidParameterError(
            f"fitted exponent {alpha:.3f} <= 0: stream is not "
            "capacity-sensitive in this range")
    base_cap = float(np.exp(np.mean(np.log(caps))))
    base_mr = float(np.exp(intercept + slope * np.log(base_cap)))
    return PowerLawMissRate(
        base_miss_rate=min(max(base_mr, 1e-6), 1.0),
        base_capacity_kib=base_cap,
        alpha=alpha,
        compulsory_floor=min(compulsory_floor, base_mr),
    )
