"""Reuse-distance (stack-distance) analysis.

The classical locality theory underneath miss-rate curves (Denning's
locality principle, paper refs [28][29]): the *reuse distance* of an
access is the number of distinct lines touched since the previous access
to the same line.  For a fully associative LRU cache of capacity ``S``
lines, an access hits iff its reuse distance is ``< S`` — so one pass
over the trace yields the exact miss rate at *every* capacity
simultaneously, which is how miss-rate curves like
:class:`repro.capacity.missrate.PowerLawMissRate` are obtained from
measurements without re-simulating per size.

Implementation: the standard O(N log M) algorithm with a Fenwick tree
over access positions — mark the last position of each line, count
marked positions after it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["ReuseProfile", "reuse_distances", "reuse_profile"]


class _Fenwick:
    """Binary indexed tree over positions (1-based internally)."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)
        self._n = n

    def add(self, idx: int, delta: int) -> None:
        i = idx + 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, idx: int) -> int:
        """Sum of values at positions [0, idx]."""
        i = idx + 1
        total = 0
        while i > 0:
            total += int(self._tree[i])
            i -= i & (-i)
        return total

    def total(self) -> int:
        return self.prefix(self._n - 1)


def reuse_distances(addresses: np.ndarray,
                    line_bytes: int = 64) -> np.ndarray:
    """Per-access LRU stack distances (-1 for first touches).

    ``distances[i]`` is the number of *distinct* lines referenced
    strictly between access ``i`` and the previous access to its line,
    or ``-1`` for a compulsory (first) access.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1 or addresses.size == 0:
        raise InvalidParameterError("addresses must be a non-empty 1-D array")
    if line_bytes < 1:
        raise InvalidParameterError(f"line size must be >= 1, got {line_bytes}")
    lines = addresses // line_bytes
    n = lines.size
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        line = int(lines[i])
        prev = last_pos.get(line)
        if prev is None:
            out[i] = -1
        else:
            # Distinct lines after prev = marked positions in (prev, i).
            out[i] = tree.total() - tree.prefix(prev)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[line] = i
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse-distance histogram with derived miss-rate queries.

    Attributes
    ----------
    distances:
        Per-access stack distances (-1 = compulsory).
    accesses:
        Total accesses.
    compulsory:
        First-touch count (misses at any capacity).
    """

    distances: np.ndarray
    line_bytes: int

    @property
    def accesses(self) -> int:
        return int(self.distances.size)

    @property
    def compulsory(self) -> int:
        return int(np.count_nonzero(self.distances < 0))

    def miss_rate(self, capacity_kib: float) -> float:
        """Exact fully-associative LRU miss rate at a capacity.

        An access misses iff it is compulsory or its reuse distance is
        at least the capacity in lines.
        """
        if capacity_kib <= 0:
            raise InvalidParameterError(
                f"capacity must be positive, got {capacity_kib}")
        lines = max(int(capacity_kib * 1024) // self.line_bytes, 1)
        misses = self.compulsory + int(np.count_nonzero(
            self.distances >= lines))
        return misses / self.accesses

    def miss_curve(self, capacities_kib) -> np.ndarray:
        """Miss rates at several capacities (one histogram pass)."""
        return np.array([self.miss_rate(c) for c in capacities_kib])

    def histogram(self, bins: "np.ndarray | None" = None) -> tuple:
        """(bin_edges, counts) over finite reuse distances."""
        finite = self.distances[self.distances >= 0]
        if bins is None:
            hi = max(int(finite.max()) + 1, 2) if finite.size else 2
            bins = np.unique(np.geomspace(1, hi, 32).astype(np.int64))
        counts, edges = np.histogram(finite, bins=bins)
        return edges, counts


def reuse_profile(addresses: np.ndarray,
                  line_bytes: int = 64) -> ReuseProfile:
    """Compute the reuse profile of an address stream."""
    return ReuseProfile(distances=reuse_distances(addresses, line_bytes),
                        line_bytes=line_bytes)
