"""Denning's working-set model (paper §V, refs [28][29]).

The working set ``W(t, tau)`` is the set of distinct addresses referenced
in the window ``(t - tau, t]``.  Section V uses the *working set size* to
decide whether an application is processor-bound (working set fits
on-chip) or memory-bound.

Implementation: a sliding-window distinct counter over an address stream,
vectorized with the classic "last previous occurrence" trick — address
``a`` at position ``i`` is *new within the window* iff its previous
occurrence is at distance >= tau — which turns per-window distinct
counting into a single prefix sum.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["working_set_sizes", "working_set_size"]


def working_set_sizes(addresses: np.ndarray, window: int) -> np.ndarray:
    """Working-set size at every reference position.

    Parameters
    ----------
    addresses:
        1-D integer address stream (block/page identifiers).
    window:
        Window length ``tau`` in references, ``>= 1``.

    Returns
    -------
    numpy.ndarray
        ``ws[i]`` = number of distinct addresses among
        ``addresses[max(0, i - window + 1) : i + 1]``.
    """
    addr = np.asarray(addresses)
    if addr.ndim != 1 or addr.size == 0:
        raise InvalidParameterError("addresses must be a non-empty 1-D array")
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    n = addr.size
    # prev[i]: index of the previous occurrence of addr[i], or -1.
    _, inverse = np.unique(addr, return_inverse=True)
    last_seen = np.full(int(inverse.max()) + 1, -1, dtype=np.int64)
    prev = np.empty(n, dtype=np.int64)
    for i in range(n):  # tight loop, but single pass; fine for trace sizes
        a = inverse[i]
        prev[i] = last_seen[a]
        last_seen[a] = i
    # addr[i] starts a "distinct interval" [i, next occurrence).  Position
    # i contributes +1 to windows ending in [i, i + gap) where gap is the
    # distance to the next occurrence (or n).  Equivalently, the window
    # ending at j counts position i as distinct iff i is the last
    # occurrence of its address within the window:
    #   distinct(j) = #{ i in (j - window, j] : next_occ(i) > j }
    # Build next occurrence from prev.
    next_occ = np.full(n, n, dtype=np.int64)
    has_prev = prev >= 0
    next_occ[prev[has_prev]] = np.flatnonzero(has_prev)
    # For window ending at j: count i in [j-window+1, j] with next_occ[i] > j.
    # Do it with a difference array: position i is counted in windows
    # j in [i, min(next_occ[i], i + window) - 1].
    idx = np.arange(n, dtype=np.int64)
    hi = np.minimum(next_occ, idx + window)  # exclusive end
    diff = np.zeros(n + 1, dtype=np.int64)
    np.add.at(diff, idx, 1)
    np.add.at(diff, hi, -1)
    return np.cumsum(diff[:-1])


def working_set_size(addresses: np.ndarray, window: "int | None" = None) -> int:
    """Peak working-set size of a stream.

    With ``window=None`` the whole stream is one window (total footprint).
    """
    addr = np.asarray(addresses)
    if addr.ndim != 1 or addr.size == 0:
        raise InvalidParameterError("addresses must be a non-empty 1-D array")
    if window is None:
        return int(np.unique(addr).size)
    return int(working_set_sizes(addr, window).max())
