"""On-chip-memory-bounded problem size (paper Section V).

With on-chip memory size ``X``, working-set size ``Y(Z)`` (a function of
the problem size ``Z``), the LLC-bounded problem size is

    max Z  s.t.  Y(Z) <= X.

If the real problem size ``b`` is at most the bounded size ``a`` the
application is *processor-bound* (case 1: insensitive to on-chip capacity
and concurrency); otherwise it is *memory-bound* (case 2: performance
limited by the processor-DRAM transfer rate).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import InvalidParameterError

__all__ = ["BoundednessCase", "CapacityBound", "max_bounded_problem_size",
           "classify_boundedness"]


class BoundednessCase(enum.Enum):
    """Section V's two cases."""

    PROCESSOR_BOUND = "processor-bound"
    MEMORY_BOUND = "memory-bound"


def max_bounded_problem_size(
    working_set_of: Callable[[float], float],
    on_chip_capacity: float,
    *,
    z_hi: float = 1e18,
    tol: float = 1e-9,
) -> float:
    """Solve ``max Z s.t. working_set_of(Z) <= on_chip_capacity``.

    ``working_set_of`` must be non-decreasing in ``Z`` (more work touches
    at least as much data); the solution is found by bisection after an
    exponential bracketing pass.

    Returns
    -------
    float
        The largest feasible ``Z`` (0 if even Z -> 0+ is infeasible).
    """
    if on_chip_capacity <= 0:
        raise InvalidParameterError(
            f"on-chip capacity must be positive, got {on_chip_capacity}")
    lo = 0.0
    if working_set_of(tol) > on_chip_capacity:
        return 0.0
    # Exponential search for an infeasible upper bracket.
    hi = 1.0
    while working_set_of(hi) <= on_chip_capacity:
        lo = hi
        hi *= 2.0
        if hi > z_hi:
            return z_hi  # unbounded within the search range
    # Bisection on the boundary.
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if working_set_of(mid) <= on_chip_capacity:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, lo):
            break
    return lo


@dataclass(frozen=True)
class CapacityBound:
    """Result of the Section V boundedness analysis.

    Attributes
    ----------
    bounded_problem_size:
        ``a``: largest problem size whose working set fits on chip.
    actual_problem_size:
        ``b``: the application's real problem size.
    case:
        Processor-bound (``b <= a``) or memory-bound (``b > a``).
    utilization:
        ``b / a`` (how far past the capacity bound the problem is);
        ``inf`` when ``a == 0``.
    """

    bounded_problem_size: float
    actual_problem_size: float
    case: BoundednessCase

    @property
    def utilization(self) -> float:
        if self.bounded_problem_size == 0.0:
            return math.inf
        return self.actual_problem_size / self.bounded_problem_size


def classify_boundedness(
    working_set_of: Callable[[float], float],
    on_chip_capacity: float,
    actual_problem_size: float,
) -> CapacityBound:
    """Classify an application per Section V's two cases."""
    if actual_problem_size <= 0:
        raise InvalidParameterError(
            f"problem size must be positive, got {actual_problem_size}")
    bounded = max_bounded_problem_size(working_set_of, on_chip_capacity)
    case = (BoundednessCase.PROCESSOR_BOUND
            if actual_problem_size <= bounded
            else BoundednessCase.MEMORY_BOUND)
    return CapacityBound(bounded_problem_size=bounded,
                         actual_problem_size=actual_problem_size,
                         case=case)
