"""Set-associative cache with true-LRU replacement.

The tag store is kept in plain Python lists (one row per set): at the
one-address-at-a-time granularity of the event loop, C-level
``list.index``/``min`` over an 8-16 way row beats NumPy's per-call array
machinery by an order of magnitude, and the cache is on the hot path of
every simulated access.  Banking is modeled by the owning component
(:class:`repro.sim.core.CoreModel` for L1 hit concurrency); this class is
purely the hit/miss/replacement state.

Replacement semantics are pinned by the differential golden tests: the
hit way is the *first* matching way and the victim is the *first* way
holding the minimum LRU tick — exactly what the previous
``np.argmax(row == tag)`` / ``np.argmin(lru_row)`` implementation chose.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.sim.config import CacheConfig

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """Tag store of one cache (or one slice of a shared cache).

    Parameters
    ----------
    config:
        Geometry and latency parameters.

    Notes
    -----
    Addresses are byte addresses; the line and set index are derived from
    ``config.line_bytes`` and ``config.num_sets``.  ``access`` combines
    lookup and fill (allocate-on-miss, true LRU), which is the standard
    trace-driven idiom.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        sets = config.num_sets
        assoc = max(config.num_lines // sets, 1)
        self._assoc = assoc
        self._sets = sets
        self._line_bytes = config.line_bytes
        self._banks = config.banks
        self._tags: list[list[int]] = [[-1] * assoc for _ in range(sets)]
        self._lru: list[list[int]] = [[0] * assoc for _ in range(sets)]
        self._dirty: list[list[bool]] = [[False] * assoc for _ in range(sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def num_sets(self) -> int:
        """Number of sets in the tag store."""
        return self._sets

    @property
    def assoc(self) -> int:
        """Effective associativity (ways per set)."""
        return self._assoc

    def line_of(self, address: int) -> int:
        """Line (block) number of a byte address."""
        if address < 0:
            raise InvalidParameterError(f"address must be >= 0, got {address}")
        return address // self._line_bytes

    def bank_of(self, address: int) -> int:
        """Bank servicing this address (line-interleaved)."""
        return self.line_of(address) % self._banks

    def access(self, address: int) -> bool:
        """Look up ``address``; allocate on miss.  Returns hit?."""
        hit, _ = self.access_rw(address, write=False)
        return hit

    def access_rw(self, address: int,
                  write: bool = False) -> "tuple[bool, int | None]":
        """Look up with read/write semantics (writeback-aware).

        Returns ``(hit, writeback_line)``: ``writeback_line`` is the line
        number of a dirty victim evicted by this fill (``None``
        otherwise).  Writes set the dirty bit on the (filled) line.
        """
        if address < 0:
            raise InvalidParameterError(f"address must be >= 0, got {address}")
        line = address // self._line_bytes
        set_idx = line % self._sets
        tag = line // self._sets
        self._tick += 1
        row = self._tags[set_idx]
        # "in" + index beats try/except index: the containment scan is
        # C-speed over <= assoc ints, while a raised ValueError on every
        # miss costs an order of magnitude more.
        if tag in row:
            way = row.index(tag)
            self._lru[set_idx][way] = self._tick
            if write:
                self._dirty[set_idx][way] = True
            self.hits += 1
            return True, None
        self.misses += 1
        lru_row = self._lru[set_idx]
        victim = lru_row.index(min(lru_row))
        writeback: "int | None" = None
        dirty_row = self._dirty[set_idx]
        if dirty_row[victim] and row[victim] >= 0:
            self.writebacks += 1
            writeback = row[victim] * self._sets + set_idx
        row[victim] = tag
        lru_row[victim] = self._tick
        dirty_row[victim] = write
        return False, writeback

    def probe(self, address: int) -> bool:
        """Non-allocating lookup (no LRU update, no fill)."""
        line = self.line_of(address)
        return line // self._sets in self._tags[line % self._sets]

    def invalidate(self, address: int) -> bool:
        """Drop a line if present; returns whether it was present.

        A dirty invalidated line counts as a writeback (its data must
        reach the next level — the coherence protocol's responsibility).
        """
        line = self.line_of(address)
        set_idx = line % self._sets
        tag = line // self._sets
        row = self._tags[set_idx]
        try:
            way = row.index(tag)
        except ValueError:
            return False
        if self._dirty[set_idx][way]:
            self.writebacks += 1
        row[way] = -1
        self._lru[set_idx][way] = 0
        self._dirty[set_idx][way] = False
        return True

    def fill(self, address: int) -> "int | None":
        """Install a line without touching demand hit/miss statistics.

        Used by prefetchers: a prefetch fill is not an architectural
        access.  Returns the line number of a dirty victim (which must
        be written back), or ``None``.  No-op if the line is present.
        """
        line = self.line_of(address)
        set_idx = line % self._sets
        tag = line // self._sets
        self._tick += 1
        row = self._tags[set_idx]
        if tag in row:
            return None
        lru_row = self._lru[set_idx]
        victim = lru_row.index(min(lru_row))
        writeback: "int | None" = None
        dirty_row = self._dirty[set_idx]
        if dirty_row[victim] and row[victim] >= 0:
            self.writebacks += 1
            writeback = row[victim] * self._sets + set_idx
        row[victim] = tag
        # Insert at LRU-adjacent priority: an untouched prefetch should
        # be the first victim if it turns out useless.
        lru_row[victim] = max(self._tick - self._assoc, 1)
        dirty_row[victim] = False
        return writeback

    def set_dirty(self, address: int) -> bool:
        """Mark the (present) line dirty without touching hit/miss stats.

        Used for writes that merge into an in-flight fill: the line was
        already allocated by the primary miss.  Returns present?.
        """
        line = self.line_of(address)
        set_idx = line % self._sets
        try:
            way = self._tags[set_idx].index(line // self._sets)
        except ValueError:
            return False
        self._dirty[set_idx][way] = True
        return True

    def is_dirty(self, address: int) -> bool:
        """Whether the (present) line holding ``address`` is dirty."""
        line = self.line_of(address)
        set_idx = line % self._sets
        try:
            way = self._tags[set_idx].index(line // self._sets)
        except ValueError:
            return False
        return self._dirty[set_idx][way]

    @property
    def miss_rate(self) -> float:
        """Observed miss rate so far (0 before any access)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def stats(self) -> dict:
        """Counter values for metrics publication (plain dict)."""
        return {"hits": self.hits, "misses": self.misses,
                "writebacks": self.writebacks}

    def reset_stats(self) -> None:
        """Zero the hit/miss/writeback counters (state is kept)."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
