"""DRAMSim2-lite: banked DRAM with row-buffer state and bank queueing.

Each bank keeps its open row and its next-free time.  A request pays

- ``row_hit`` cycles if its row is open,
- ``row_miss`` cycles if the bank is precharged (first touch),
- ``row_conflict`` cycles if another row is open,

serialized behind earlier requests to the same bank plus a data-bus
occupancy per transfer.  This reproduces the two DRAM behaviours the
C2-Bound analysis needs: locality-dependent latency and bandwidth
saturation under concurrent misses.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.sim.config import DRAMConfig

__all__ = ["DRAMModel"]


class DRAMModel:
    """Shared DRAM device model.

    Per-bank state lives in plain Python lists: the event loop touches
    one bank per request, where scalar list indexing is several times
    cheaper than NumPy element access.
    """

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._open_row: list[int] = [-1] * config.banks
        self._bank_free: list[float] = [0.0] * config.banks
        self.requests = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.busy_cycles = 0.0
        self.queue_wait_cycles = 0.0
        self._last_end = 0.0

    def bank_of(self, address: int) -> int:
        """Bank servicing an address (row-interleaved)."""
        if address < 0:
            raise InvalidParameterError(f"address must be >= 0, got {address}")
        return (address // self.config.row_bytes) % self.config.banks

    def row_of(self, address: int) -> int:
        """Row number within the bank."""
        return address // (self.config.row_bytes * self.config.banks)

    def access(self, address: int, time: float) -> float:
        """Service a request arriving at ``time``; returns completion time."""
        cfg = self.config
        bank = self.bank_of(address)
        row = self.row_of(address)
        start = max(time, self._bank_free[bank])
        self.queue_wait_cycles += start - time
        open_row = self._open_row[bank]
        if open_row == row:
            latency = cfg.row_hit
            self.row_hits += 1
        elif open_row < 0:
            latency = cfg.row_miss
            self.row_misses += 1
        else:
            latency = cfg.row_conflict
            self.row_conflicts += 1
        finish = start + latency + cfg.bus_cycles
        self._open_row[bank] = row
        # Stored as float so arithmetic types match the historical
        # float64-array implementation exactly (int when ``time`` wins
        # the max, float when the bank queue does).
        self._bank_free[bank] = float(finish)
        self.requests += 1
        self.busy_cycles += finish - start
        self._last_end = max(self._last_end, finish)
        return finish

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests hitting an open row."""
        return self.row_hits / self.requests if self.requests else 0.0

    def stats(self) -> dict:
        """Counter values for metrics publication (plain dict)."""
        return {"requests": self.requests, "row_hits": self.row_hits,
                "row_misses": self.row_misses,
                "row_conflicts": self.row_conflicts,
                "busy_cycles": self.busy_cycles,
                "queue_wait_cycles": self.queue_wait_cycles}

    def reset_stats(self) -> None:
        """Zero counters (bank state is kept)."""
        self.requests = self.row_hits = self.row_misses = self.row_conflicts = 0
        self.busy_cycles = 0.0
        self.queue_wait_cycles = 0.0
