"""Batched structure-of-arrays epoch kernel for the CMP event loop.

The scalar event loop (:meth:`repro.sim.cmp.CMPSimulator.run` driving
:meth:`repro.sim.core.CoreModel.advance`) pays Python dispatch per
memory operation: a heap pop, a bound method call, a dozen attribute
loads, and per-access address arithmetic.  This kernel removes all of
it while reproducing the scalar semantics *bit for bit* (pinned by
``tests/sim/test_differential_golden.py`` and the hypothesis
differential suite ``tests/sim/test_kernel_differential.py``):

- **Structure-of-arrays epoch prep** — every address decomposition the
  event loop would compute one op at a time is lifted into NumPy int64
  column arithmetic, once per core, then materialized as per-op rows: a
  *hot* row ``(write, l1_line, l1_set, l1_tag, l1_bank)`` consulted on
  every access, and a *cold* row ``(l2_line, home_slice, l2_set,
  l2_tag, l2_bank, noc_out, noc_back, dram_bank, dram_row)`` consulted
  only on L1 misses.  One list index + sequence unpack replaces five to
  nine scalar column loads.
- **Epoch batching** — after popping a core from the ready heap, the
  kernel keeps advancing that core while its next op's issue bound
  provably precedes every other core's next bound (strict
  ``(bound, core_id)`` tuple order, exactly the scalar heap's
  comparison).  Each such maximal run is one *epoch*: per-core state is
  one flat list unpacked into locals in a single bytecode, and the heap
  is touched once per epoch instead of once per op.  The popped bound
  is *carried* into the op as its issue floor — it equals
  ``CoreModel.peek_issue_time()`` by construction, and the ROB
  watermark pops it folded in have already happened, so the scalar
  re-derivation (barrier max, deque drain) is skipped entirely.
- **Pointer-based ROB window** — the scalar path's ``_outstanding``
  deque of ``(instr, done)`` pairs is replaced by a single integer
  pointer ``p`` over the precomputed instruction-index column and a
  flat per-op ``dones`` column: the in-order-commit watermark pops
  become two list indexes, and the per-op append disappears.  The live
  deque is materialized from the ``[p, j)`` window only at fallback
  seams and on return, so the scalar path always sees its exact state.
- **Monolithic inlining** — the L1 lookup, MSHR probe/retire/allocate,
  MSI-lite directory bookkeeping, L2 slice lookup, DRAM bank/row-buffer
  timing and NoC latency table are inlined into one loop body
  operating on the *live containers* of the scalar models (tag rows,
  LRU rows, MSHR dict+heap, DRAM bank lists, the sharers directory).
  There is no shadow state: the kernel and the scalar path read and
  write the same objects, so control can move between them at any op
  boundary.  Writes are inlined too — the dirty bit, secondary-merge
  ``set_dirty`` and the contention-free ownership grab (no other
  sharer) are all plain dict/list operations.

Fallback contract
-----------------
Rare structural events leave the fast path and execute through the
unmodified scalar :meth:`CoreModel.advance`:

- multi-sharer coherence transitions — a write to a line another core
  shares (upgrade-with-invalidations on a hit, invalidate-on-miss),
  where remote L1 tag stores and NoC round trips get involved;
- prefetch-enabled and SMT configurations (whole-run bypass — the
  kernel never engages; see :func:`kernel_eligible`).

MSHR-full stalls (the structural ``_issue_barrier`` pipeline block) are
*not* fallbacks: saturated workloads hit them on a large fraction of
ops, so the kernel reproduces the scalar stall inline — the
``stall_events`` count, the stale-pair heap walk and the barrier
update, exactly as :meth:`MSHRFile.earliest_free_time` would.

The fallback decision is taken *before the op's first irreversible
mutation*: the only state touched by then is the ROB commit watermark
and lazy MSHR retirement, both of which are idempotent under re-entry
(the watermark resumes, retirement is monotonic), so the scalar path
re-executes the op from an equivalent state.  Around each fallback the
kernel flushes its scalar locals into the model objects and reloads
them after — the containers themselves are always shared.  Per-op
fallbacks are counted and published as ``sim.kernel.fallbacks``;
whole-run bypasses as ``sim.kernel.bypass_runs``; fast-path ops and
epochs as ``sim.kernel.ops`` / ``sim.kernel.epochs``.

Toggling
--------
The kernel is on by default for eligible runs.  Set the environment
variable :data:`ENV_KERNEL` (``C2BOUND_SIM_KERNEL``) to ``0``/``off``/
``false``/``no`` — or pass ``CMPSimulator(chip, use_kernel=False)`` —
to force the scalar path; results are identical either way, which the
CI ``kernel-equivalence`` job asserts on a fixed seed matrix.  Because
results never differ, the toggle does not enter ``SimCacheStore``
fingerprints.
"""

from __future__ import annotations

import gc
import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.core import CoreModel
    from repro.sim.hierarchy import MemoryHierarchy

__all__ = ["ENV_KERNEL", "KernelStats", "kernel_enabled", "kernel_eligible",
           "run_epoch_kernel"]

ENV_KERNEL = "C2BOUND_SIM_KERNEL"

_OFF_VALUES = {"0", "off", "false", "no"}


def kernel_enabled() -> bool:
    """Ambient kernel toggle (:data:`ENV_KERNEL`, default on)."""
    return os.environ.get(ENV_KERNEL, "1").strip().lower() not in _OFF_VALUES


def kernel_eligible(chip) -> bool:
    """Whether a chip configuration can run through the epoch kernel.

    SMT interleaving (shared L1/MSHR/bank state between thread
    contexts) and prefetch-triggered fills are structural per-op events
    by construction, so those configurations bypass the kernel
    wholesale (counted as ``sim.kernel.bypass_runs``).
    """
    return chip.core.smt_threads == 1 and chip.l1.prefetch == "none"


class KernelStats:
    """Telemetry of one kernel run (plain counters)."""

    __slots__ = ("ops", "fallbacks", "epochs")

    def __init__(self) -> None:
        self.ops = 0
        self.fallbacks = 0
        self.epochs = 0

    def as_dict(self) -> "dict[str, int]":
        """Flat ``kernel.*`` metric suffixes for publication."""
        return {"kernel.ops": self.ops, "kernel.fallbacks": self.fallbacks,
                "kernel.epochs": self.epochs}


# Per-core kernel state is one flat list (not an object): an epoch
# binds all of it into locals with a single UNPACK_SEQUENCE, an order
# of magnitude cheaper than ~30 slotted attribute loads at the observed
# handful of ops per epoch.  Layout — indexes 0..20 are fixed for the
# whole run (SoA rows, live container aliases, geometry), the tail
# S[_MUT:] holds the mutable scalar snapshot written back at epoch end:
#
#   0 hot    per-op [write, l1_line, l1_set, l1_tag, l1_bank]
#   1 cold   per-op [l2_line, home, l2_set, l2_tag, l2_bank,
#                    noc_out, noc_back, dram_bank, dram_row]
#            (kept as an int64 ndarray; rows are boxed lazily on the
#            primary-miss path, which is the only consumer)
#   2 instr        instruction index column (core._instr_list)
#   3 base_issue   bandwidth-limited issue column (core._base_issue)
#   4 pmax         ROB pop boundary column: the commit pointer after
#                  op j's watermark drain is exactly
#                  min(j, bisect_right(instr, instr[j] - rob_size)),
#                  a pure function of the static columns — precomputed
#                  so the per-op drain is a pointer compare
#   5 dones        per-op completion cycles (kernel-maintained)
#   6 bank_free  7 tags1  8 lru1  9 dirty1  10 pending  11 pending.get
#   12 heap1  13 records          (live CoreModel containers)
#   14 n_ops  15 hit_lat  16 sets1  17 mshr_capacity  18 line_bytes
#   19 l1 object  20 core object
#   -- mutable tail (_MUT = 21) --
#   21 j  22 barrier  23 retire_max  24 last_done  25 tick1  26 hits1
#   27 misses1  28 prim1  29 sec1  30 stall1  31 p
#
# ``last_done`` is carried but not maintained per op: the running max
# of completion times is recovered at flush seams as
# max(slot, max(dones[:j])) — the slot covers scalar-executed ops whose
# deque pairs were already committed, ``dones`` covers every
# kernel-executed op — so the per-op compare disappears from the loop.
# ``l1.writebacks`` is deliberately NOT mirrored: a coherence
# invalidation triggered by *another* core's write fallback bumps it on
# the live object between this core's epochs, so the kernel always
# increments it in place.  ``_retire_op`` needs no slot either — it is
# ``j`` by construction at every seam (each op is peeked exactly once
# before it is processed).
_MUT = 21


def _core_state(core: "CoreModel", hierarchy: "MemoryHierarchy",
                noc_lat: "np.ndarray") -> list:
    """Build one core's kernel state list (SoA columns + aliases)."""
    chip = hierarchy.chip
    addr = core.addresses
    n = chip.n_cores
    cid = core.core_id
    l1cfg = core.l1.config
    sets1 = core.l1.num_sets
    line1 = addr // l1cfg.line_bytes
    hotm = np.empty((addr.size, 5), dtype=np.int64)
    hotm[:, 0] = core.writes
    hotm[:, 1] = line1
    hotm[:, 2] = line1 % sets1
    hotm[:, 3] = line1 // sets1
    hotm[:, 4] = line1 % l1cfg.banks
    l2cfg = chip.l2_slice
    dramcfg = chip.dram
    sets2 = hierarchy.slices[0].num_sets
    line2 = addr // l2cfg.line_bytes
    home = line2 % n
    coldm = np.empty((addr.size, 9), dtype=np.int64)
    coldm[:, 0] = line2
    coldm[:, 1] = home
    coldm[:, 2] = line2 % sets2
    coldm[:, 3] = line2 // sets2
    coldm[:, 4] = line2 % l2cfg.banks
    coldm[:, 5] = noc_lat[cid * n + home]
    coldm[:, 6] = noc_lat[home * n + cid]
    coldm[:, 7] = (addr // dramcfg.row_bytes) % dramcfg.banks
    coldm[:, 8] = addr // (dramcfg.row_bytes * dramcfg.banks)
    # The hot matrix is materialized to nested lists (every row is
    # consumed exactly once, so eager boxing is strictly cheaper);
    # the cold matrix stays an ndarray and rows are boxed lazily on
    # the primary-miss path — only ~1/3 of ops ever read one.
    instr_idx = core.instr_index
    pmax = np.minimum(
        np.searchsorted(instr_idx, instr_idx - core._rob_size,
                        side="right"),
        np.arange(core._n_ops, dtype=np.int64))
    state = [
        hotm.tolist(), coldm,
        core._instr_list, core._base_issue,
        pmax.tolist(),
        [0] * core._n_ops,
        core._bank_free, core.l1._tags, core.l1._lru, core.l1._dirty,
        core.mshr._pending, core.mshr._pending.get, core.mshr._heap,
        core._records, core._n_ops, core._hit_latency, sets1,
        core.mshr.capacity, core._line_bytes, core.l1, core,
    ]
    state.extend(0 for _ in range(11))
    _reload_core(state)
    return state


def _reload_core(state: list) -> None:
    """Sync the mutable tail (and the dones window) from the live core.

    Called after any scalar execution (initial peeks, fallback
    ``advance``): the ROB pointer is re-derived from the deque length —
    the deque always holds exactly the ops ``[p, core._next)`` — and
    the completion column is refreshed from the deque pairs (covering
    the op the scalar path just processed).
    """
    core = state[20]
    out = core._outstanding
    p = core._next - len(out)
    dones = state[5]
    for off, pair in enumerate(out):
        dones[p + off] = pair[1]
    l1 = core.l1
    mshr = core.mshr
    state[_MUT:] = (core._next, core._issue_barrier, core._retire_max,
                    core._last_done, l1._tick, l1.hits, l1.misses,
                    mshr.primary_misses, mshr.secondary_merges,
                    mshr.stall_events, p)


def _flush_core(state: list) -> None:
    """Push the mutable tail back into the live core objects.

    Materializes the ``_outstanding`` deque from the ``[p, j)`` window
    so the scalar path (a fallback ``advance``, or anything after the
    kernel returns) sees exactly the state its own loop would have
    left.
    """
    core = state[20]
    (j, barrier, retire_max, last_done, tick1, hits1, misses1,
     prim1, sec1, stall1, p) = state[_MUT:]
    core._next = j
    core._issue_barrier = barrier
    n_ops = state[14]
    core._retire_op = j if j < n_ops else n_ops - 1
    core._retire_max = retire_max
    if j:
        done_max = max(state[5][:j])
        if done_max > last_done:
            last_done = done_max
    core._last_done = last_done
    l1 = core.l1
    l1._tick = tick1
    l1.hits = hits1
    l1.misses = misses1
    mshr = core.mshr
    mshr.primary_misses = prim1
    mshr.secondary_merges = sec1
    mshr.stall_events = stall1
    out = core._outstanding
    out.clear()
    out.extend(zip(state[2][p:j], state[5][p:j]))


class _HierState:
    """Mirror of the hierarchy's scalar counters (kernel-local view).

    Containers (tag rows, MSHR dict+heap, DRAM bank lists, record
    lists, the sharers directory) are aliased, never copied; only flat
    counters are mirrored, and :meth:`flush`/:meth:`reload` carry them
    across the fallback seam.  ``invalidations``/``upgrades`` are
    deliberately not mirrored — only scalar fallbacks touch them,
    always on the live object.
    """

    __slots__ = (
        "hierarchy", "n_cores", "hl2", "sets2", "cap2",
        "tags2", "lru2", "dirty2", "tick2", "hits2", "misses2", "wb2",
        "pend2", "heap2", "prim2", "sec2", "stall2",
        "bank_free2", "l2_records", "dram_records", "sharers", "coherent",
        "l2_accesses", "l2_hits", "traversals",
        "dram_open", "dram_free", "row_hit_c", "row_miss_c", "row_conf_c",
        "bus_c", "row_bytes", "dram_banks", "line_bytes2",
        "dreq", "drh", "drm", "drc", "dbusy", "dwait", "dlast",
        "dram_writes",
    )

    def __init__(self, hierarchy: "MemoryHierarchy") -> None:
        self.hierarchy = hierarchy
        chip = hierarchy.chip
        self.n_cores = chip.n_cores
        self.hl2 = chip.l2_slice.hit_latency
        self.sets2 = hierarchy.slices[0].num_sets
        self.cap2 = chip.l2_slice.mshr_entries
        self.line_bytes2 = hierarchy._line_bytes
        self.tags2 = [s._tags for s in hierarchy.slices]
        self.lru2 = [s._lru for s in hierarchy.slices]
        self.dirty2 = [s._dirty for s in hierarchy.slices]
        self.pend2 = [m._pending for m in hierarchy.slice_mshrs]
        self.heap2 = [m._heap for m in hierarchy.slice_mshrs]
        self.bank_free2 = hierarchy._bank_free
        self.l2_records = hierarchy._l2_records
        self.dram_records = hierarchy._dram_records
        self.sharers = hierarchy._sharers
        self.coherent = hierarchy._l1_caches is not None
        dram = hierarchy.dram
        self.dram_open = dram._open_row
        self.dram_free = dram._bank_free
        cfg = dram.config
        self.row_hit_c = cfg.row_hit
        self.row_miss_c = cfg.row_miss
        self.row_conf_c = cfg.row_conflict
        self.bus_c = cfg.bus_cycles
        self.row_bytes = cfg.row_bytes
        self.dram_banks = cfg.banks
        self.reload()

    def reload(self) -> None:
        """Pull the counter mirror from the live objects."""
        h = self.hierarchy
        self.tick2 = [s._tick for s in h.slices]
        self.hits2 = [s.hits for s in h.slices]
        self.misses2 = [s.misses for s in h.slices]
        self.wb2 = [s.writebacks for s in h.slices]
        self.prim2 = [m.primary_misses for m in h.slice_mshrs]
        self.sec2 = [m.secondary_merges for m in h.slice_mshrs]
        self.stall2 = [m.stall_events for m in h.slice_mshrs]
        self.l2_accesses = h.l2_accesses
        self.l2_hits = h.l2_hits
        self.traversals = h.noc.traversals
        dram = h.dram
        self.dreq = dram.requests
        self.drh = dram.row_hits
        self.drm = dram.row_misses
        self.drc = dram.row_conflicts
        self.dbusy = dram.busy_cycles
        self.dwait = dram.queue_wait_cycles
        self.dlast = dram._last_end
        self.dram_writes = h.dram_writes

    def flush(self) -> None:
        """Push the counter mirror back into the live objects."""
        h = self.hierarchy
        for i, s in enumerate(h.slices):
            s._tick = self.tick2[i]
            s.hits = self.hits2[i]
            s.misses = self.misses2[i]
            s.writebacks = self.wb2[i]
        for i, m in enumerate(h.slice_mshrs):
            m.primary_misses = self.prim2[i]
            m.secondary_merges = self.sec2[i]
            m.stall_events = self.stall2[i]
        h.l2_accesses = self.l2_accesses
        h.l2_hits = self.l2_hits
        h.noc.traversals = self.traversals
        dram = h.dram
        dram.requests = self.dreq
        dram.row_hits = self.drh
        dram.row_misses = self.drm
        dram.row_conflicts = self.drc
        dram.busy_cycles = self.dbusy
        dram.queue_wait_cycles = self.dwait
        dram._last_end = self.dlast
        h.dram_writes = self.dram_writes


def run_epoch_kernel(cores: "list[CoreModel]",
                     hierarchy: "MemoryHierarchy") -> KernelStats:
    """Drain all cores through the epoch kernel (in-place).

    Equivalent — observable-state bit-identical — to the scalar loop::

        while heap:
            _, cid = heappop(heap)
            nxt = cores[cid].advance(hierarchy)
            if nxt is not None:
                heappush(heap, (nxt, cid))

    On return every core is drained (``core.done``) and every model
    object holds exactly the state the scalar loop would have left.

    GC is paused for the drain: the kernel allocates only records and
    heap tuples that stay reachable, so collector passes over the
    per-op container churn are pure overhead.  The previous collector
    state is restored even on error.
    """
    enabled = gc.isenabled()
    if enabled:
        gc.disable()
    try:
        return _run_epoch_kernel(cores, hierarchy)
    finally:
        if enabled:
            gc.enable()


def _run_epoch_kernel(cores: "list[CoreModel]",
                      hierarchy: "MemoryHierarchy") -> KernelStats:
    stats = KernelStats()
    hpush = heappush
    hpop = heappop
    noc_lat = np.asarray(hierarchy.noc._lat, dtype=np.int64)
    states = [_core_state(core, hierarchy, noc_lat) for core in cores]
    hs = _HierState(hierarchy)

    heap: "list[tuple[int, int]]" = []
    for core in cores:
        if not core.done:
            hpush(heap, (core.peek_issue_time(), core.core_id))
        # peek mutates the ROB watermark: refresh the snapshot.
        _reload_core(states[core.core_id])

    inf = float("inf")
    # Hierarchy-level locals hoisted out of the epoch loop.  Counters
    # (trav/l2acc/.../dwr) are rebound across every fallback seam;
    # container aliases never need rebinding.
    hl2 = hs.hl2
    sets2 = hs.sets2
    cap2 = hs.cap2
    lb2 = hs.line_bytes2
    tags2 = hs.tags2
    lru2 = hs.lru2
    dirty2 = hs.dirty2
    tick2 = hs.tick2
    hits2 = hs.hits2
    misses2 = hs.misses2
    wb2 = hs.wb2
    pend2 = hs.pend2
    heap2 = hs.heap2
    prim2 = hs.prim2
    stall2 = hs.stall2
    bank_free2 = hs.bank_free2
    l2rec_append = hs.l2_records.append
    dramrec_append = hs.dram_records.append
    sharers = hs.sharers
    sharers_get = sharers.get
    sharers_pop = sharers.pop
    coherent = hs.coherent
    n2 = hs.n_cores
    l2b = hierarchy._l2_banks
    noc_flat = hierarchy._noc_lat
    dram_open = hs.dram_open
    dram_free = hs.dram_free
    row_hit_c = hs.row_hit_c
    row_miss_c = hs.row_miss_c
    row_conf_c = hs.row_conf_c
    bus_c = hs.bus_c
    dram_row_bytes = hs.row_bytes
    dram_banks = hs.dram_banks
    trav = hs.traversals
    l2acc = hs.l2_accesses
    l2h = hs.l2_hits
    dreq = hs.dreq
    drh = hs.drh
    drm = hs.drm
    drc = hs.drc
    dbusy = hs.dbusy
    dwait = hs.dwait
    dlast = hs.dlast
    dwr = hs.dram_writes
    fallbacks = 0
    epochs = 0

    while heap:
        t, cid = hpop(heap)
        if heap:
            top_t, top_c = heap[0]
        else:
            top_t, top_c = inf, -1
        epochs += 1
        S = states[cid]
        (hot, cold, instr, base_issue, pmax, dones, bank_free, tags1,
         lru1, dirty1, pending, pending_get, heap1, records, n_ops,
         hit_lat, sets1, capacity1, lb1, l1_obj, core_obj,
         j, barrier, retire_max, last_done, tick1, hits1, misses1,
         prim1, sec1, stall1, p) = S
        nf1 = heap1[0][0] if heap1 else inf

        while True:
            # ===== one memory op (scalar CoreModel.step, inlined) =====
            # ``t`` carries this op's issue bound — the scalar heap key
            # — so the ROB/barrier front-end (already folded into it by
            # the previous peek) is not re-derived.  Only the L1 bank
            # port can push the issue cycle later.
            w, line, s1, tg, b1 = hot[j]
            issue = t
            bfb = bank_free[b1]
            if bfb > issue:
                issue = bfb
            # Lazy MSHR retirement at the issue cycle (idempotent).
            if nf1 <= issue:
                while heap1 and heap1[0][0] <= issue:
                    fill_t, ln = hpop(heap1)
                    if pending_get(ln) == fill_t:
                        del pending[ln]
                nf1 = heap1[0][0] if heap1 else inf
            fill = pending_get(line)
            if fill is not None:
                # ----- secondary miss: ride the in-flight fill -------
                bank_free[b1] = issue + 1
                misses1 += 1
                sec1 += 1
                if w:
                    # set_dirty on the (possibly evicted) filled line.
                    row = tags1[s1]
                    if tg in row:
                        dirty1[s1][row.index(tg)] = True
                floor = issue + hit_lat
                done = fill if fill >= floor else floor
                pen = done - floor
                records[j] = (issue, hit_lat, pen if pen > 0 else 0)
            else:
                fb = False
                row = tags1[s1]
                if tg in row:
                    # ----- L1 hit ------------------------------------
                    if w and coherent:
                        ln2 = int(cold[j, 0])
                        s = sharers_get(ln2)
                        if s is not None and (cid not in s or len(s) > 1):
                            # Upgrade with remote invalidations:
                            # structural -> scalar fallback.
                            fb = True
                    if not fb:
                        bank_free[b1] = issue + 1
                        tick1 += 1
                        way = row.index(tg)
                        lru1[s1][way] = tick1
                        hits1 += 1
                        if w:
                            dirty1[s1][way] = True
                            if coherent:
                                # Contention-free ownership grab
                                # (hierarchy.upgrade, zero extra).
                                sharers[ln2] = {cid}
                        done = issue + hit_lat
                        records[j] = (issue, hit_lat, 0)
                else:
                    # ----- primary miss ------------------------------
                    (ln2, home, s2, tg2, b2, nout, nback, db,
                     dr) = cold[j].tolist()
                    if w and coherent:
                        s = sharers_get(ln2)
                        if s is not None and (cid not in s or len(s) > 1):
                            # Write miss must invalidate remote
                            # sharers: structural -> fallback.
                            fb = True
                    if not fb:
                        bank_free[b1] = issue + 1
                        tick1 += 1
                        misses1 += 1
                        lru_row = lru1[s1]
                        victim = lru_row.index(min(lru_row))
                        dirty_row = dirty1[s1]
                        vt = row[victim]
                        if dirty_row[victim] and vt >= 0:
                            # Dirty victim drains through the hierarchy
                            # (rare: only write workloads mint dirty
                            # lines).  Live-object counter — see the
                            # state-layout note.
                            l1_obj.writebacks += 1
                            wb_line = vt * sets1 + s1
                        else:
                            wb_line = -1
                        row[victim] = tg
                        lru_row[victim] = tick1
                        dirty_row[victim] = w
                        if wb_line >= 0:
                            # hierarchy.writeback, inlined: NoC hop,
                            # L2 bank queue, write-allocate fill at the
                            # home slice (no l2_accesses count), dirty
                            # L2 victim draining to DRAM, directory
                            # entry dropped.
                            wline = (wb_line * lb1) // lb2
                            whome = wline % n2
                            trav += 1
                            warr = issue + noc_flat[cid * n2 + whome]
                            wbf = bank_free2[whome]
                            wbank = wline % l2b
                            wfree = wbf[wbank]
                            wstart = warr if warr >= wfree else wfree
                            wbf[wbank] = wstart + 1
                            wt = tick2[whome] + 1
                            tick2[whome] = wt
                            ws2 = wline % sets2
                            wtg = wline // sets2
                            wrow = tags2[whome][ws2]
                            if wtg in wrow:
                                wway = wrow.index(wtg)
                                lru2[whome][ws2][wway] = wt
                                dirty2[whome][ws2][wway] = True
                                hits2[whome] += 1
                            else:
                                misses2[whome] += 1
                                wlr = lru2[whome][ws2]
                                wv = wlr.index(min(wlr))
                                wdr = dirty2[whome][ws2]
                                wvt = wrow[wv]
                                if wdr[wv] and wvt >= 0:
                                    wb2[whome] += 1
                                    va = (wvt * sets2 + ws2) * lb2
                                    vb = ((va // dram_row_bytes)
                                          % dram_banks)
                                    vr = va // (dram_row_bytes
                                                * dram_banks)
                                    dvf = dram_free[vb]
                                    ds = (wstart if wstart >= dvf
                                          else dvf)
                                    dwait += ds - wstart
                                    orow = dram_open[vb]
                                    if orow == vr:
                                        lat = row_hit_c
                                        drh += 1
                                    elif orow < 0:
                                        lat = row_miss_c
                                        drm += 1
                                    else:
                                        lat = row_conf_c
                                        drc += 1
                                    df = ds + lat + bus_c
                                    dram_open[vb] = vr
                                    dram_free[vb] = float(df)
                                    dreq += 1
                                    dbusy += df - ds
                                    if df > dlast:
                                        dlast = df
                                    dwr += 1
                                wrow[wv] = wtg
                                wlr[wv] = wt
                                wdr[wv] = True
                            sharers_pop(wline, None)
                        base = issue + hit_lat
                        if len(pending) < capacity1:
                            alloc = base
                        else:
                            # MSHR-full structural stall, inline:
                            # earliest_free_time's stall count, stale-
                            # pair walk and the issue-barrier update.
                            stall1 += 1
                            while heap1:
                                fill_t, ln = heap1[0]
                                if pending_get(ln) == fill_t:
                                    break
                                hpop(heap1)
                            else:
                                raise InvalidParameterError(
                                    "MSHR bookkeeping corrupt: full "
                                    "file with an empty heap")
                            nf1 = fill_t
                            alloc = base if base >= fill_t else fill_t
                            if alloc > base and alloc > barrier:
                                barrier = alloc
                        # ----- hierarchy.service_miss, inlined -------
                        trav += 1
                        arrive = alloc + nout
                        if coherent:
                            if w:
                                # _invalidate_sharers with no remote
                                # sharer: claim ownership, zero extra.
                                sharers[ln2] = {cid}
                            else:
                                s = sharers_get(ln2)
                                if s is None:
                                    sharers[ln2] = {cid}
                                else:
                                    s.add(cid)
                        bf2 = bank_free2[home]
                        b2f = bf2[b2]
                        start = arrive if arrive >= b2f else b2f
                        bf2[b2] = start + 1
                        l2acc += 1
                        m2p = pend2[home]
                        m2h = heap2[home]
                        if m2h and m2h[0][0] <= start:
                            while m2h and m2h[0][0] <= start:
                                fill_t, ln = hpop(m2h)
                                if m2p.get(ln) == fill_t:
                                    del m2p[ln]
                        fill2 = m2p.get(ln2)
                        if fill2 is not None:
                            # Secondary miss at L2: ride the fill.
                            done2 = fill2
                            pen2 = done2 - start - hl2
                            l2rec_append(
                                (start, hl2, pen2 if pen2 > 0 else 0))
                        else:
                            t2 = tick2[home] + 1
                            tick2[home] = t2
                            row2 = tags2[home][s2]
                            if tg2 in row2:
                                lru2[home][s2][row2.index(tg2)] = t2
                                hits2[home] += 1
                                l2h += 1
                                done2 = start + hl2
                                l2rec_append((start, hl2, 0))
                            else:
                                misses2[home] += 1
                                lr2 = lru2[home][s2]
                                v2 = lr2.index(min(lr2))
                                d2row = dirty2[home][s2]
                                vt2 = row2[v2]
                                if d2row[v2] and vt2 >= 0:
                                    wb2[home] += 1
                                    # Dirty L2 victim drains to DRAM.
                                    va = (vt2 * sets2 + s2) * lb2
                                    vb = ((va // dram_row_bytes)
                                          % dram_banks)
                                    vr = va // (dram_row_bytes
                                                * dram_banks)
                                    dvf = dram_free[vb]
                                    ds = start if start >= dvf else dvf
                                    dwait += ds - start
                                    orow = dram_open[vb]
                                    if orow == vr:
                                        lat = row_hit_c
                                        drh += 1
                                    elif orow < 0:
                                        lat = row_miss_c
                                        drm += 1
                                    else:
                                        lat = row_conf_c
                                        drc += 1
                                    df = ds + lat + bus_c
                                    dram_open[vb] = vr
                                    dram_free[vb] = float(df)
                                    dreq += 1
                                    dbusy += df - ds
                                    if df > dlast:
                                        dlast = df
                                    dwr += 1
                                row2[v2] = tg2
                                lr2[v2] = t2
                                d2row[v2] = False
                                base2 = start + hl2
                                if len(m2p) < cap2:
                                    alloc2 = base2
                                else:
                                    # L2 MSHR full: allocation stalls
                                    # until the earliest live fill
                                    # (MSHRFile.earliest_free_time).
                                    stall2[home] += 1
                                    while m2h:
                                        fill_t, ln = m2h[0]
                                        if m2p.get(ln) == fill_t:
                                            break
                                        hpop(m2h)
                                    else:
                                        raise InvalidParameterError(
                                            "MSHR bookkeeping corrupt: "
                                            "full file with an empty "
                                            "heap")
                                    alloc2 = (base2 if base2 >= fill_t
                                              else fill_t)
                                # ----- demand DRAM access ------------
                                dbf = dram_free[db]
                                ds = alloc2 if alloc2 >= dbf else dbf
                                dwait += ds - alloc2
                                orow = dram_open[db]
                                if orow == dr:
                                    lat = row_hit_c
                                    drh += 1
                                elif orow < 0:
                                    lat = row_miss_c
                                    drm += 1
                                else:
                                    lat = row_conf_c
                                    drc += 1
                                df = ds + lat + bus_c
                                dram_open[db] = dr
                                dram_free[db] = float(df)
                                dreq += 1
                                dbusy += df - ds
                                if df > dlast:
                                    dlast = df
                                dram_done = int(df)
                                dramrec_append(
                                    (alloc2, dram_done - alloc2))
                                if m2h and m2h[0][0] <= alloc2:
                                    while m2h and m2h[0][0] <= alloc2:
                                        fill_t, ln = hpop(m2h)
                                        if m2p.get(ln) == fill_t:
                                            del m2p[ln]
                                m2p[ln2] = dram_done
                                hpush(m2h, (dram_done, ln2))
                                prim2[home] += 1
                                done2 = dram_done
                                l2rec_append(
                                    (start, hl2, done2 - start - hl2))
                        trav += 1
                        done = done2 + nback
                        # ----- L1 MSHR allocate (retire, insert) -----
                        if nf1 <= alloc:
                            while heap1 and heap1[0][0] <= alloc:
                                fill_t, ln = hpop(heap1)
                                if pending_get(ln) == fill_t:
                                    del pending[ln]
                            nf1 = heap1[0][0] if heap1 else inf
                        pending[line] = done
                        hpush(heap1, (done, line))
                        if done < nf1:
                            nf1 = done
                        prim1 += 1
                        pen = done - issue - hit_lat
                        records[j] = (issue, hit_lat,
                                      pen if pen > 0 else 0)
                if fb:
                    # ===== structural event: scalar fallback =========
                    # Nothing irreversible has happened for op ``j``
                    # (ROB watermark and MSHR retirement are
                    # idempotent), so CoreModel.advance re-executes it
                    # exactly.  Flush both mirrors, call, reload.
                    S[_MUT:] = (j, barrier, retire_max, last_done,
                                tick1, hits1, misses1, prim1, sec1,
                                stall1, p)
                    _flush_core(S)
                    hs.traversals = trav
                    hs.l2_accesses = l2acc
                    hs.l2_hits = l2h
                    hs.dreq = dreq
                    hs.drh = drh
                    hs.drm = drm
                    hs.drc = drc
                    hs.dbusy = dbusy
                    hs.dwait = dwait
                    hs.dlast = dlast
                    hs.dram_writes = dwr
                    hs.flush()
                    nxt = core_obj.advance(hierarchy)
                    fallbacks += 1
                    _reload_core(S)
                    hs.reload()
                    (j, barrier, retire_max, last_done, tick1, hits1,
                     misses1, prim1, sec1, stall1, p) = S[_MUT:]
                    tick2 = hs.tick2
                    hits2 = hs.hits2
                    misses2 = hs.misses2
                    wb2 = hs.wb2
                    prim2 = hs.prim2
                    stall2 = hs.stall2
                    trav = hs.traversals
                    l2acc = hs.l2_accesses
                    l2h = hs.l2_hits
                    dreq = hs.dreq
                    drh = hs.drh
                    drm = hs.drm
                    drc = hs.drc
                    dbusy = hs.dbusy
                    dwait = hs.dwait
                    dlast = hs.dlast
                    dwr = hs.dram_writes
                    nf1 = heap1[0][0] if heap1 else inf
                    if nxt is None:
                        break
                    t = nxt
                    if t < top_t or (t == top_t and cid < top_c):
                        continue
                    hpush(heap, (t, cid))
                    break
            # ===== commit bookkeeping + next-op issue bound ==========
            dones[j] = done
            j += 1
            if j >= n_ops:
                break
            nt = base_issue[j]
            if barrier > nt:
                nt = barrier
            # ROB in-order-commit watermark: the precomputed pop
            # boundary makes the drain a pointer compare (one pop in
            # steady state), folding the popped completion times into
            # the issue bound exactly as the deque drain would.
            q = pmax[j]
            if p < q:
                committed = dones[p]
                p += 1
                while p < q:
                    d = dones[p]
                    if d > committed:
                        committed = d
                    p += 1
                retire_max = committed
                if committed > nt:
                    nt = committed
            else:
                retire_max = 0
            t = nt
            # ===== epoch continuation: provably still the front ======
            if t < top_t or (t == top_t and cid < top_c):
                continue
            hpush(heap, (t, cid))
            break
        # ----- epoch end: write the scalar snapshot back -------------
        S[_MUT:] = (j, barrier, retire_max, last_done, tick1, hits1,
                    misses1, prim1, sec1, stall1, p)

    hs.traversals = trav
    hs.l2_accesses = l2acc
    hs.l2_hits = l2h
    hs.dreq = dreq
    hs.drh = drh
    hs.drm = drm
    hs.drc = drc
    hs.dbusy = dbusy
    hs.dwait = dwait
    hs.dlast = dlast
    hs.dram_writes = dwr
    for S in states:
        _flush_core(S)
    hs.flush()
    stats.fallbacks = fallbacks
    stats.epochs = epochs
    stats.ops = sum(S[14] for S in states) - fallbacks
    return stats
