"""Persistent content-addressed store for simulation results.

:func:`repro.sim.cmp.simulate_chip_cost` is a pure function of
``(chip, workload, seed)`` — streams are drawn from a generator seeded
per call, so the same triple produces the same cost in every process on
every machine.  That purity makes the result *content-addressable*: this
module hashes a canonical fingerprint of the triple (salted with
:data:`SIM_MODEL_VERSION`) and keeps the cost in an on-disk store, so a
re-run of a design-space experiment pays only for configurations it has
never seen.

Store layout (two-level fan-out keeps directories small)::

    <root>/ab/abcdef....json   {"cost": "<repr>", "model_version": "...", ...}

The hex prefix is also the store's *shard* identity: keys are SHA-256
hex digests, so the first :data:`SHARD_PREFIX_LEN` characters partition
the key space into :data:`SHARD_COUNT` uniform shards
(:func:`shard_of_key`).  The sweep fabric
(:mod:`repro.dse.fabric`) assigns each worker a contiguous shard range
and passes ``owned_shards`` so only the owner ever writes a shard's
directory — single-writer by construction, no cross-process locking on
any path.

Tiers (hot to cold):

1. **memory front** — per-process LRU (``memory_entries`` capacity);
   hits cost a dict lookup, no file I/O, no locks
   (``sim.cache.front_hits``);
2. **write-behind buffer** — with ``write_behind > 0``, ``put`` only
   buffers; entries reach disk in batched :meth:`flush` calls
   (``sim.cache.flush`` spans) so persistence leaves the simulation
   critical path;
3. **disk back tier** — content-addressed JSON entries, shared by every
   process, written atomically.

Guarantees:

- **exactness** — costs are stored as ``repr(float)`` and parsed back
  with ``float()``, which round-trips IEEE-754 doubles bit-for-bit, so a
  warm-cache run is bit-identical to a cold one;
- **concurrency safety** — writes go to a temp file in the same
  directory followed by :func:`os.replace` (atomic on POSIX), so the
  process-pool workers of :class:`repro.dse.batch.ParallelEvaluator` can
  share one store without locks (double writes of the same key are
  idempotent by construction);
- **invalidation by versioning** — :data:`SIM_MODEL_VERSION` is folded
  into every key.  Any intentional change to simulator semantics must
  bump it (alongside regenerating ``tests/data/sim_golden.json``), which
  orphans — rather than corrupts — stale entries.

Hits/misses/stores and in-memory evictions are published as
``sim.cache.*`` counters in the process-wide metrics registry.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import signal
import tempfile
import weakref
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from pathlib import Path

import numpy as np

from repro.analysis.sanitizer import check_shard_write, sanitize_enabled
from repro.errors import InvalidParameterError, ReproError
from repro.obs import get_registry, get_tracer

__all__ = ["SIM_MODEL_VERSION", "FINGERPRINT_SCHEMA", "SHARD_PREFIX_LEN",
           "SHARD_COUNT", "SimCacheStore", "shard_of_key",
           "sim_cache_key", "fingerprint", "cached_simulate_chip_cost",
           "verify_fingerprint_schema", "set_default_store",
           "get_default_store", "resolve_store", "flush_all_stores",
           "install_signal_flush"]

#: Salt folded into every cache key.  Bump on ANY intentional change to
#: simulator semantics (i.e. whenever ``tests/data/sim_golden.json`` is
#: legitimately regenerated) so persisted costs from older model
#: versions can never be returned for the new model.
SIM_MODEL_VERSION = "2026.08-1"

#: The declared cache-key surface: every configuration dataclass in
#: :mod:`repro.sim.config` and the exact fields :func:`fingerprint`
#: covers for it (via the generic ``dataclasses.fields`` walk).  This
#: manifest exists so drift is *detectable*: the ``C2L002`` lint rule
#: cross-checks it against the dataclass definitions on every run, and
#: :func:`verify_fingerprint_schema` re-checks it at runtime in the test
#: suite.  Adding a field to a chip dataclass therefore fails the lint
#: until the field is added here — and any such change to fingerprinted
#: semantics must also bump :data:`SIM_MODEL_VERSION`, which orphans
#: stale persisted entries instead of silently returning wrong costs.
FINGERPRINT_SCHEMA: "dict[str, tuple[str, ...]]" = {
    "CacheConfig": ("size_kib", "assoc", "line_bytes", "hit_latency",
                    "mshr_entries", "banks", "prefetch", "prefetch_degree"),
    "CoreMicroConfig": ("issue_width", "rob_size", "smt_threads"),
    "DRAMConfig": ("banks", "row_hit", "row_miss", "row_conflict",
                   "row_bytes", "bus_cycles"),
    "NoCConfig": ("hop_latency", "router_latency"),
    "SimulatedChip": ("n_cores", "core", "l1", "l2_slice", "dram", "noc"),
}


def verify_fingerprint_schema() -> None:
    """Assert :data:`FINGERPRINT_SCHEMA` matches the live dataclasses.

    Raises :class:`~repro.errors.InvalidParameterError` naming every
    drifted class/field.  This is the runtime twin of the ``C2L002``
    static rule; ``tests/analysis`` runs it so the manifest can never go
    stale while tests pass.
    """
    import repro.sim.config as simconfig

    problems: list[str] = []
    for name, declared in FINGERPRINT_SCHEMA.items():
        cls = getattr(simconfig, name, None)
        if cls is None or not is_dataclass(cls):
            problems.append(f"{name}: not a dataclass in repro.sim.config")
            continue
        actual = tuple(f.name for f in fields(cls))
        if set(actual) != set(declared):
            missing = sorted(set(actual) - set(declared))
            stale = sorted(set(declared) - set(actual))
            problems.append(
                f"{name}: schema missing {missing}, stale {stale} "
                "(update FINGERPRINT_SCHEMA and bump SIM_MODEL_VERSION)")
    for name in getattr(simconfig, "__all__", ()):
        cls = getattr(simconfig, name, None)
        if (isinstance(cls, type) and is_dataclass(cls)
                and name not in FINGERPRINT_SCHEMA):
            problems.append(
                f"{name}: config dataclass absent from FINGERPRINT_SCHEMA")
    if problems:
        raise InvalidParameterError(
            "fingerprint schema drift: " + "; ".join(problems))

#: Environment variable enabling the default store for a whole process
#: tree (the CLI flag takes precedence).
ENV_VAR = "C2BOUND_SIM_CACHE"


def fingerprint(obj):
    """Canonical JSON-able structure identifying a parameter object.

    Deterministic across processes and platforms: dataclasses are taken
    by qualified name + field values, generic objects (workloads) by
    qualified name + sorted instance attributes, arrays by
    dtype/shape/content hash, floats by ``repr`` (exact).  Raises for
    types without a stable identity (e.g. lambdas, open files).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (float, np.floating)):
        # float(...) first: repr(np.float64(x)) is "np.float64(x)".
        return ["f", repr(float(obj))]
    if isinstance(obj, (np.integer, np.bool_)):
        return int(obj)
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return ["nd", str(data.dtype), list(data.shape),
                hashlib.sha256(data.tobytes()).hexdigest()]
    if is_dataclass(obj) and not isinstance(obj, type):
        return ["dc", type(obj).__qualname__,
                [[f.name, fingerprint(getattr(obj, f.name))]
                 for f in fields(obj)]]
    if isinstance(obj, (list, tuple)):
        return ["l", [fingerprint(x) for x in obj]]
    if isinstance(obj, dict):
        return ["d", [[str(k), fingerprint(v)]
                      for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))]]
    if isinstance(obj, (set, frozenset)):
        return ["s", sorted(fingerprint(x) for x in obj)]
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return ["obj", type(obj).__qualname__,
                [[k, fingerprint(v)] for k, v in sorted(attrs.items())
                 if not k.startswith("_")]]
    raise InvalidParameterError(
        f"cannot fingerprint {type(obj).__qualname__} for the simulation "
        "cache (no stable identity)")


def sim_cache_key(chip, workload, seed: int) -> str:
    """Content hash addressing one ``simulate_chip_cost`` result."""
    payload = json.dumps(
        ["simulate_chip_cost", SIM_MODEL_VERSION, fingerprint(chip),
         fingerprint(workload), int(seed)],
        separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


#: Hex characters of a key that name its disk shard (and directory).
#: ``sim_cache_key`` returns SHA-256 *hex*, so a prefix of this width is
#: uniform over ``16 ** SHARD_PREFIX_LEN`` values; the ``C2L002`` lint
#: rule pins the prefix <-> shard mapping to this literal.
SHARD_PREFIX_LEN = 2

#: Number of disk shards, ``16 ** SHARD_PREFIX_LEN``.  Shard identity is
#: ownership currency for the sweep fabric: a worker owning shard ``s``
#: is the only writer of the ``<root>/<s:02x>/`` directory.
SHARD_COUNT = 256


def shard_of_key(key: str) -> int:
    """Shard index owning ``key``: the integer value of its hex prefix.

    The shard is *derived from the key*, never stored, so the mapping
    can only drift if :func:`sim_cache_key` stops producing hex digests
    — which the ``C2L002`` lint rule guards against statically.
    """
    return int(key[:SHARD_PREFIX_LEN], 16)


# ----- flush-on-exit safety net --------------------------------------------
#
# A write-behind store that is never explicitly closed (a process that
# exits through ``sys.exit``, a SIGTERM'd server) would silently drop
# its buffered entries.  Every write-behind store registers itself in a
# weak set; a one-time ``atexit`` hook — plus an opt-in SIGTERM chain
# for long-lived processes — drains whatever is still buffered.  Entries
# are recomputable and re-``put`` is idempotent, so this is a cost
# optimization, not a correctness requirement; losing it only on
# SIGKILL is the contract.
_live_stores: "weakref.WeakSet" = weakref.WeakSet()
_atexit_installed = False


def flush_all_stores() -> int:
    """Flush every live write-behind buffer; returns entries written.

    The ``atexit``/SIGTERM safety net calls this, and tests may call it
    directly.  A store whose flush fails (filesystem gone mid-teardown)
    is skipped — exit paths must not raise.
    """
    written = 0
    for store in list(_live_stores):
        try:
            written += store.flush()
        except (ReproError, OSError, RuntimeError):
            continue
    return written


def _register_store(store: "SimCacheStore") -> None:
    global _atexit_installed
    _live_stores.add(store)
    if not _atexit_installed:
        atexit.register(flush_all_stores)
        _atexit_installed = True


def install_signal_flush(*signums: int) -> None:
    """Chain a buffer flush onto termination signals (SIGTERM default).

    For long-lived processes (the job server, sweep CLIs under a
    supervisor) whose graceful stop arrives as a signal rather than a
    normal interpreter exit.  The previous handler is chained: a
    callable handler runs after the flush; the default disposition is
    re-raised so the process still terminates.
    """
    if not signums:
        signums = (signal.SIGTERM,)
    for signum in signums:
        previous = signal.getsignal(signum)

        def _handler(num, frame, _previous=previous):
            flush_all_stores()
            if callable(_previous):
                _previous(num, frame)
            else:
                signal.signal(num, signal.SIG_DFL)
                os.kill(os.getpid(), num)

        signal.signal(signum, _handler)


class SimCacheStore:
    """On-disk content-addressed cost store with an in-memory LRU front.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).
    memory_entries:
        Capacity of the in-memory front; reads served from memory never
        touch the filesystem.  Disk entries are never evicted by the
        store itself (use :meth:`clear`).
    write_behind:
        ``0`` (the default) keeps the historical write-through behavior:
        every :meth:`put` persists immediately.  ``> 0`` buffers puts
        and flushes them to disk in batches of this size (and on
        :meth:`flush`/:meth:`close`), taking file I/O off the simulation
        critical path.  A crash loses only buffered entries — costs, not
        correctness, since entries are recomputable and re-``put`` is
        idempotent.
    owned_shards:
        ``None`` (the default) writes any shard.  A set of shard indices
        restricts *disk* writes to those shards: a ``put`` outside the
        owned range updates the memory front only and is counted as
        ``sim.cache.shard_denied``.  Reads are never restricted.
    """

    def __init__(self, root, *, memory_entries: int = 4096,
                 write_behind: int = 0,
                 owned_shards: "frozenset[int] | None" = None) -> None:
        if memory_entries < 1:
            raise InvalidParameterError(
                f"memory_entries must be >= 1, got {memory_entries}")
        if write_behind < 0:
            raise InvalidParameterError(
                f"write_behind must be >= 0, got {write_behind}")
        self.root = Path(root)
        self.memory_entries = memory_entries
        self.write_behind = int(write_behind)
        self.owned_shards = (None if owned_shards is None
                             else frozenset(int(s) for s in owned_shards))
        self._mem: OrderedDict[str, float] = OrderedDict()
        self._pending: "OrderedDict[str, tuple[float, dict]]" = OrderedDict()
        self.hits = 0
        self.front_hits = 0
        self.misses = 0
        self.corrupt = 0
        self.denied = 0
        self.flushed = 0
        #: worker-slot tag for sanitizer findings (set by the fabric)
        self.sanitize_slot: "int | None" = None
        # env read once per store; the per-write cost of a disabled
        # sanitizer is this cached boolean
        self._sanitize = sanitize_enabled()
        self._bind_counters()
        if self.write_behind:
            _register_store(self)

    def _bind_counters(self) -> None:
        registry = get_registry()
        self._ctr_hits = registry.counter("sim.cache.hits")
        self._ctr_front_hits = registry.counter("sim.cache.front_hits")
        self._ctr_misses = registry.counter("sim.cache.misses")
        self._ctr_stores = registry.counter("sim.cache.stores")
        self._ctr_evictions = registry.counter("sim.cache.evictions")
        self._ctr_corrupt = registry.counter("sim.cache.corrupt")
        self._ctr_denied = registry.counter("sim.cache.shard_denied")

    # Pickling ships only the configuration (for process-pool workers);
    # each worker rebuilds its own LRU front and registry counters.
    # Buffered write-behind entries are flushed by the owner before the
    # task returns, never pickled.
    def __getstate__(self) -> dict:
        return {"root": str(self.root), "memory_entries": self.memory_entries,
                "write_behind": self.write_behind,
                "owned_shards": (None if self.owned_shards is None
                                 else sorted(self.owned_shards)),
                "sanitize_slot": self.sanitize_slot}

    def __setstate__(self, state: dict) -> None:
        self.root = Path(state["root"])
        self.memory_entries = state["memory_entries"]
        self.write_behind = state.get("write_behind", 0)
        owned = state.get("owned_shards")
        self.owned_shards = None if owned is None else frozenset(owned)
        self._mem = OrderedDict()
        self._pending = OrderedDict()
        self.hits = 0
        self.front_hits = 0
        self.misses = 0
        self.corrupt = 0
        self.denied = 0
        self.flushed = 0
        self.sanitize_slot = state.get("sanitize_slot")
        # re-read the env in the unpickling process: pool workers
        # inherit the parent's environment, so arming the parent arms
        # every worker-side clone
        self._sanitize = sanitize_enabled()
        self._bind_counters()
        if self.write_behind:
            _register_store(self)

    def scoped(self, *, owned_shards: "frozenset[int] | None" = None,
               write_behind: "int | None" = None) -> "SimCacheStore":
        """A new view over the same root with different tier knobs.

        The sweep fabric hands each worker slot
        ``scoped(owned_shards=..., write_behind=...)`` so every slot
        shares the disk tier but owns a disjoint writable shard range.
        """
        return SimCacheStore(
            self.root, memory_entries=self.memory_entries,
            write_behind=(self.write_behind if write_behind is None
                          else write_behind),
            owned_shards=(self.owned_shards if owned_shards is None
                          else owned_shards))

    def path_for(self, key: str) -> Path:
        """On-disk location of a key's entry (inside its shard dir)."""
        return self.root / key[:SHARD_PREFIX_LEN] / f"{key}.json"

    def _remember(self, key: str, cost: float) -> None:
        mem = self._mem
        if key in mem:
            mem.move_to_end(key)
            return
        mem[key] = cost
        if len(mem) > self.memory_entries:
            mem.popitem(last=False)
            self._ctr_evictions.inc()

    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved (outside the ``??/`` fan-out,
        so :meth:`stats`/:meth:`clear` globs never see them)."""
        return self.root / ".quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is never parsed again.

        ``os.replace`` keeps the bytes for post-mortem inspection; if
        even that fails the entry is deleted — a corrupt file must not
        stay on the lookup path either way.
        """
        qdir = self.quarantine_dir()
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str) -> "float | None":
        """Stored cost for ``key``, or ``None`` on a miss.

        A corrupt entry (unparsable JSON, missing or non-numeric
        ``cost``) is counted (``sim.cache.corrupt``), quarantined under
        ``.quarantine/`` and reported as a miss — the caller re-runs the
        simulation and the atomic :meth:`put` writes a sound entry.
        """
        mem = self._mem
        if key in mem:
            # Memory hits skip the span on purpose: they are not I/O,
            # and a span per hot-path hit would swamp the trace.
            mem.move_to_end(key)
            self.hits += 1
            self.front_hits += 1
            self._ctr_hits.inc()
            self._ctr_front_hits.inc()
            return mem[key]
        pending = self._pending
        if key in pending:
            # Buffered but evicted from the LRU front: still no file
            # I/O, so it counts as a front hit (and re-promotes).
            cost = pending[key][0]
            self._remember(key, cost)
            self.hits += 1
            self.front_hits += 1
            self._ctr_hits.inc()
            self._ctr_front_hits.inc()
            return cost
        path = self.path_for(key)
        with get_tracer().span("sim.cache.lookup") as span:
            try:
                data = path.read_bytes()
            except OSError:
                # Missing (or unreadable) file: a plain miss.
                span.set_attr(outcome="miss")
                self.misses += 1
                self._ctr_misses.inc()
                return None
            try:
                entry = json.loads(data)
                cost = float(entry["cost"])
            except (KeyError, TypeError, ValueError):
                span.set_attr(outcome="corrupt")
                self.corrupt += 1
                self._ctr_corrupt.inc()
                self._quarantine(path)
                self.misses += 1
                self._ctr_misses.inc()
                return None
            span.set_attr(outcome="hit")
        self._remember(key, cost)
        self.hits += 1
        self._ctr_hits.inc()
        return cost

    def _persist(self, key: str, cost: float, provenance: dict) -> None:
        """Atomic disk write of one entry (concurrent writers are safe).

        This is the single choke point every disk write funnels through
        (write-through ``put``, batched ``flush``), which is what makes
        the sanitizer check here sufficient: the public ``put`` path
        denies foreign shards *before* reaching this, so an armed check
        that fires means ownership was bypassed for real.
        """
        if self._sanitize:
            check_shard_write(self, key, shard_of_key(key))
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"cost": repr(cost),
                 "model_version": SIM_MODEL_VERSION}
        entry.update(provenance)
        payload = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, key: str, cost: float, **provenance) -> None:
        """Record a cost.

        Write-through by default (atomic persist under a
        ``sim.cache.store`` span).  With ``write_behind > 0`` the entry
        is buffered and reaches disk in the next batched :meth:`flush`.
        A key outside ``owned_shards`` updates the memory front only
        (``sim.cache.shard_denied``) — the shard's owner (or the fabric
        parent reconciling stolen work) persists it instead.
        """
        cost = float(cost)
        if (self.owned_shards is not None
                and shard_of_key(key) not in self.owned_shards):
            self._remember(key, cost)
            self.denied += 1
            self._ctr_denied.inc()
            return
        if self.write_behind:
            self._pending[key] = (cost, dict(provenance))
            self._remember(key, cost)
            if len(self._pending) >= self.write_behind:
                self.flush()
            return
        with get_tracer().span("sim.cache.store"):
            self._persist(key, cost, provenance)
        self._remember(key, cost)
        self._ctr_stores.inc()

    def flush(self) -> int:
        """Drain the write-behind buffer to disk; returns entries written.

        One ``sim.cache.flush`` span covers the whole batch — the point
        of the buffer is that per-entry I/O (and its tracing) leaves the
        simulation critical path.
        """
        pending = self._pending
        if not pending:
            return 0
        n = len(pending)
        with get_tracer().span("sim.cache.flush", entries=n):
            while pending:
                key, (cost, provenance) = pending.popitem(last=False)
                self._persist(key, cost, provenance)
                self._ctr_stores.inc()
        self.flushed += n
        return n

    def close(self) -> None:
        """Flush buffered writes (idempotent; also the context exit)."""
        self.flush()

    def __enter__(self) -> "SimCacheStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Store summary with a per-tier breakdown.

        Disk-tier totals (``entries``/``bytes``/``shards_populated``)
        plus this instance's hit/miss split across the memory front
        (``front_hits``) and disk (``disk_hits``), the write-behind
        buffer state and the shard-ownership scope.
        """
        entries = 0
        total_bytes = 0
        shard_dirs: set[str] = set()
        if self.root.is_dir():
            for path in self.root.glob("??/*.json"):
                entries += 1
                shard_dirs.add(path.parent.name)
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
        quarantined = 0
        qdir = self.quarantine_dir()
        if qdir.is_dir():
            quarantined = sum(1 for _ in qdir.glob("*.json"))
        return {"root": str(self.root), "entries": entries,
                "bytes": total_bytes, "memory_entries": len(self._mem),
                "hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "quarantined": quarantined,
                "front_capacity": self.memory_entries,
                "front_hits": self.front_hits,
                "disk_hits": self.hits - self.front_hits,
                "pending_writes": len(self._pending),
                "write_behind": self.write_behind,
                "flushed": self.flushed,
                "shards_populated": len(shard_dirs),
                "shard_count": SHARD_COUNT,
                "owned_shards": (-1 if self.owned_shards is None
                                 else len(self.owned_shards)),
                "shard_denied": self.denied,
                "model_version": SIM_MODEL_VERSION}

    def clear(self) -> int:
        """Delete every persisted entry; returns how many were removed.

        Buffered (unflushed) entries are dropped too — ``clear`` means
        the store forgets everything it has not already served.
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("??/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        self._mem.clear()
        self._pending.clear()
        return removed


# ----- process-wide default store -----------------------------------------
_default_store: "SimCacheStore | None" = None
_default_configured = False


def set_default_store(store) -> "SimCacheStore | None":
    """Set the process-wide default store.

    ``store`` may be a :class:`SimCacheStore`, a directory path, or
    ``None`` to disable caching (overriding :data:`ENV_VAR`).  Returns
    the installed store.
    """
    global _default_store, _default_configured
    if store is not None and not isinstance(store, SimCacheStore):
        store = SimCacheStore(store)
    _default_store = store
    _default_configured = True
    return _default_store


def get_default_store() -> "SimCacheStore | None":
    """The process-wide default store (``None`` when caching is off).

    Resolution order: :func:`set_default_store` if it was ever called,
    else the :data:`ENV_VAR` environment variable, else ``None``.
    """
    global _default_store, _default_configured
    if not _default_configured:
        env = os.environ.get(ENV_VAR)
        if env:
            _default_store = SimCacheStore(env)
        _default_configured = True
    return _default_store


def resolve_store(cache) -> "SimCacheStore | None":
    """Normalize a user-facing cache argument to a store (or ``None``).

    ``"default"`` resolves against :func:`get_default_store` **now** —
    evaluators call this at construction so the resolved store (a plain
    root path after pickling) travels with them into pool workers.
    """
    if cache == "default":
        return get_default_store()
    if cache is None or isinstance(cache, SimCacheStore):
        return cache
    return SimCacheStore(cache)


def cached_simulate_chip_cost(chip, workload, seed: int,
                              store: "SimCacheStore | None" = None) -> float:
    """:func:`~repro.sim.cmp.simulate_chip_cost` through a store.

    With ``store=None`` the default store is consulted; with no store
    configured at all this is exactly the uncached call.
    """
    from repro.sim.cmp import simulate_chip_cost

    if store is None:
        store = get_default_store()
    if store is None:
        return simulate_chip_cost(chip, workload, seed)
    key = sim_cache_key(chip, workload, seed)
    cost = store.get(key)
    if cost is None:
        cost = simulate_chip_cost(chip, workload, seed)
        store.put(key, cost, seed=int(seed),
                  workload=type(workload).__qualname__)
    return cost
