"""Event-driven CMP simulator (the paper's GEM5 + DRAMSim2 substitute).

The paper validates C2-Bound against cycle-accurate simulation of a 4-way
out-of-order CMP with a two-level cache hierarchy and a DRAM model.  This
package provides a trace-driven simulator with the behaviours the model
depends on:

- set-associative, non-blocking (MSHR-based) caches with banked L1s
  (hit concurrency ``C_H``),
- miss overlap bounded by MSHR count and ROB reach (miss concurrency
  ``C_M``),
- a banked DRAM with row-buffer locality and queueing (DRAMSim2-lite),
- a mesh NoC latency model between cores and L2 slices,
- multi-core contention via globally time-ordered servicing of the
  shared L2/DRAM.

Each simulated core emits a cycle-level :class:`repro.camat.AccessTrace`
per memory layer, so the offline :class:`repro.camat.TraceAnalyzer`, the
online :mod:`repro.detector` counters and the APC metrics all apply
directly to simulation output.
"""

from repro.sim.config import (
    CacheConfig,
    CoreMicroConfig,
    DRAMConfig,
    NoCConfig,
    SimulatedChip,
)
from repro.sim.cache import SetAssociativeCache
from repro.sim.mshr import MSHRFile
from repro.sim.dram import DRAMModel
from repro.sim.noc import MeshNoC
from repro.sim.core import CoreModel, CoreResult
from repro.sim.smt import SMTCoreModel
from repro.sim.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.cmp import CMPSimulator, SimulationResult

__all__ = [
    "CacheConfig",
    "CoreMicroConfig",
    "DRAMConfig",
    "NoCConfig",
    "SimulatedChip",
    "SetAssociativeCache",
    "MSHRFile",
    "DRAMModel",
    "MeshNoC",
    "CoreModel",
    "CoreResult",
    "SMTCoreModel",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "MemoryHierarchy",
    "CMPSimulator",
    "SimulationResult",
]
