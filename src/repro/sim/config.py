"""Simulator configuration dataclasses.

:class:`SimulatedChip` is the simulator-side view of a design point.  The
analytic :class:`repro.core.chip.ChipConfig` fixes ``(N, A0, A1, A2)``;
:meth:`SimulatedChip.from_chip_config` converts areas to cache capacities
(via the shared :class:`repro.capacity.area.AreaModel`) and core area to
microarchitecture width (Pollack-style: issue width grows with the square
root of core area), so APS can hand analytic skeletons to the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.capacity.area import AreaModel
from repro.core.chip import ChipConfig
from repro.errors import InvalidParameterError

__all__ = ["CacheConfig", "CoreMicroConfig", "DRAMConfig", "NoCConfig",
           "SimulatedChip"]


@dataclass(frozen=True)
class CacheConfig:
    """One cache level.

    Attributes
    ----------
    size_kib:
        Capacity in KiB (> 0).
    assoc:
        Associativity (ways), ``>= 1``.
    line_bytes:
        Cache line size, a power of two.
    hit_latency:
        Lookup latency in cycles, ``>= 1``.
    mshr_entries:
        Miss-status holding registers — outstanding misses supported
        (non-blocking cache).  1 models a blocking cache.
    banks:
        Independent banks; lookups to distinct banks in the same cycle
        proceed in parallel (hit concurrency).
    prefetch:
        Prefetcher attached to this cache: ``"none"``, ``"nextline"`` or
        ``"stride"``.
    prefetch_degree:
        Lines fetched ahead per trigger.
    """

    size_kib: float = 32.0
    assoc: int = 8
    line_bytes: int = 64
    hit_latency: int = 3
    mshr_entries: int = 8
    banks: int = 2
    prefetch: str = "none"
    prefetch_degree: int = 2

    def __post_init__(self) -> None:
        if self.size_kib <= 0:
            raise InvalidParameterError(f"cache size must be > 0, got {self.size_kib}")
        if self.assoc < 1:
            raise InvalidParameterError(f"assoc must be >= 1, got {self.assoc}")
        if self.line_bytes < 1 or (self.line_bytes & (self.line_bytes - 1)):
            raise InvalidParameterError(
                f"line size must be a power of two, got {self.line_bytes}")
        if self.hit_latency < 1:
            raise InvalidParameterError(
                f"hit latency must be >= 1, got {self.hit_latency}")
        if self.mshr_entries < 1:
            raise InvalidParameterError(
                f"MSHR entries must be >= 1, got {self.mshr_entries}")
        if self.banks < 1:
            raise InvalidParameterError(f"banks must be >= 1, got {self.banks}")
        if self.prefetch not in ("none", "nextline", "stride"):
            raise InvalidParameterError(
                f"prefetch must be none/nextline/stride, got {self.prefetch!r}")
        if self.prefetch_degree < 1:
            raise InvalidParameterError(
                f"prefetch degree must be >= 1, got {self.prefetch_degree}")

    @property
    def num_lines(self) -> int:
        """Total number of cache lines (at least one set)."""
        return max(int(self.size_kib * 1024) // self.line_bytes, self.assoc)

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return max(self.num_lines // self.assoc, 1)


@dataclass(frozen=True)
class CoreMicroConfig:
    """Core microarchitecture (the APS-refined parameters).

    Attributes
    ----------
    issue_width:
        Instructions issued per cycle, ``>= 1`` (paper models 4-wide).
    rob_size:
        Reorder-buffer entries, ``>= 1`` (paper models 128).
    smt_threads:
        Hardware threads per core (paper Section II-A lists SMT among
        the mechanisms that raise ``C_H`` and ``C_M``).  Threads share
        the L1, its MSHRs and the issue bandwidth; each has a private
        ROB partition.
    """

    issue_width: int = 4
    rob_size: int = 128
    smt_threads: int = 1

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise InvalidParameterError(
                f"issue width must be >= 1, got {self.issue_width}")
        if self.rob_size < 1:
            raise InvalidParameterError(
                f"ROB size must be >= 1, got {self.rob_size}")
        if self.smt_threads < 1:
            raise InvalidParameterError(
                f"SMT threads must be >= 1, got {self.smt_threads}")


@dataclass(frozen=True)
class DRAMConfig:
    """DRAMSim2-lite timing parameters (in CPU cycles).

    Attributes
    ----------
    banks:
        Independent DRAM banks.
    row_hit:
        Latency when the row buffer already holds the row (CAS).
    row_miss:
        Latency for activate+CAS after a precharged bank.
    row_conflict:
        Latency for precharge+activate+CAS when another row is open.
    row_bytes:
        Row-buffer size in bytes.
    bus_cycles:
        Data-bus occupancy per transfer (serializes a bank's responses).
    """

    banks: int = 8
    row_hit: int = 100
    row_miss: int = 200
    row_conflict: int = 300
    row_bytes: int = 4096
    bus_cycles: int = 4

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise InvalidParameterError(f"banks must be >= 1, got {self.banks}")
        if not 0 < self.row_hit <= self.row_miss <= self.row_conflict:
            raise InvalidParameterError(
                "need 0 < row_hit <= row_miss <= row_conflict, got "
                f"({self.row_hit}, {self.row_miss}, {self.row_conflict})")
        if self.row_bytes < 64 or (self.row_bytes & (self.row_bytes - 1)):
            raise InvalidParameterError(
                f"row size must be a power of two >= 64, got {self.row_bytes}")
        if self.bus_cycles < 0:
            raise InvalidParameterError(
                f"bus cycles must be >= 0, got {self.bus_cycles}")


@dataclass(frozen=True)
class NoCConfig:
    """Mesh network-on-chip latency model.

    Attributes
    ----------
    hop_latency:
        Cycles per mesh hop.
    router_latency:
        Fixed injection/ejection overhead per traversal.
    """

    hop_latency: int = 2
    router_latency: int = 1

    def __post_init__(self) -> None:
        if self.hop_latency < 0 or self.router_latency < 0:
            raise InvalidParameterError("NoC latencies must be >= 0")


@dataclass(frozen=True)
class SimulatedChip:
    """Full simulator configuration for one design point.

    Attributes
    ----------
    n_cores:
        Number of cores.
    core:
        Per-core microarchitecture.
    l1:
        Private L1 configuration (one instance per core).
    l2_slice:
        Per-core slice of the shared L2 (address-interleaved).
    dram:
        Memory configuration.
    noc:
        Interconnect configuration.
    """

    n_cores: int = 4
    core: CoreMicroConfig = field(default_factory=CoreMicroConfig)
    l1: CacheConfig = field(default_factory=CacheConfig)
    l2_slice: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_kib=512.0, assoc=16, hit_latency=15, mshr_entries=16, banks=4))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    noc: NoCConfig = field(default_factory=NoCConfig)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise InvalidParameterError(
                f"core count must be >= 1, got {self.n_cores}")

    @classmethod
    def from_chip_config(
        cls,
        config: ChipConfig,
        *,
        area_model: "AreaModel | None" = None,
        micro: "CoreMicroConfig | None" = None,
        reference_core_area: float = 1.0,
    ) -> "SimulatedChip":
        """Translate an analytic skeleton into a simulator configuration.

        Cache areas become capacities through ``area_model``; if ``micro``
        is not given, issue width scales with ``sqrt(A0)`` relative to a
        4-wide core at ``reference_core_area`` (Pollack's rule) and the
        ROB is sized at 32 entries per issue slot.
        """
        am = area_model if area_model is not None else AreaModel()
        if micro is None:
            width = max(1, round(4.0 * math.sqrt(
                config.a0 / reference_core_area)))
            micro = CoreMicroConfig(issue_width=width, rob_size=32 * width)
        base = cls()
        return cls(
            n_cores=config.n,
            core=micro,
            l1=replace(base.l1, size_kib=max(am.capacity_kib(config.a1), 1.0)),
            l2_slice=replace(base.l2_slice,
                             size_kib=max(am.capacity_kib(config.a2), 2.0)),
            dram=base.dram,
            noc=base.noc,
        )
