"""Simultaneous multithreading (SMT) core model.

Paper Section II-A: "out-of-order execution, multi-issue pipeline,
multi-threading and chip multiprocessor (CMP) can all increase C_H and
C_M."  The SMT core realizes the multi-threading mechanism: ``T``
hardware threads share one L1 (tags, banks and MSHRs) and the core's
issue bandwidth, while each thread keeps a private ROB partition — so a
thread stalled on a miss does not block its siblings, whose accesses
overlap with the outstanding miss and raise the measured concurrency.

Modeling choices:

- issue bandwidth is statically partitioned (``issue_width / T`` per
  thread, at least 1) — the common fetch-policy simplification;
- the ROB is split evenly across threads;
- the shared L1/MSHR/bank state is exactly the single-thread machinery
  of :class:`repro.sim.core.CoreModel`, instantiated once and shared.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig, CoreMicroConfig
from repro.sim.core import CoreModel, CoreResult
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.mshr import MSHRFile

__all__ = ["SMTCoreModel"]


class SMTCoreModel:
    """``T`` hardware threads multiplexed onto one physical core.

    Presents the same event-loop interface as
    :class:`repro.sim.core.CoreModel` (``done`` / ``peek_issue_time`` /
    ``step`` / ``result``), so the CMP simulator drives both uniformly.
    """

    def __init__(self, core_id: int, micro: CoreMicroConfig,
                 l1_config: CacheConfig,
                 thread_streams: Sequence[tuple]) -> None:
        if not thread_streams:
            raise SimulationError("need at least one thread stream")
        n_threads = len(thread_streams)
        if n_threads != micro.smt_threads:
            raise SimulationError(
                f"core configured for {micro.smt_threads} threads, "
                f"got {n_threads} streams")
        self.core_id = core_id
        self.micro = micro
        self.l1 = SetAssociativeCache(l1_config)
        self._mshr = MSHRFile(l1_config.mshr_entries)
        self._banks = [0] * l1_config.banks
        per_thread_width = max(micro.issue_width // n_threads, 1)
        per_thread_rob = max(micro.rob_size // n_threads, 1)
        thread_micro = CoreMicroConfig(
            issue_width=micro.issue_width,
            rob_size=per_thread_rob,
            smt_threads=1)
        self.threads = [
            CoreModel(core_id, thread_micro, l1_config, *stream,
                      shared_l1=self.l1, shared_mshr=self._mshr,
                      shared_banks=self._banks,
                      issue_width_override=per_thread_width)
            for stream in thread_streams
        ]

    @property
    def mshr(self) -> MSHRFile:
        """The core's (thread-shared) MSHR file."""
        return self._mshr

    # ----- event-loop interface -------------------------------------------
    @property
    def done(self) -> bool:
        """Whether every thread has drained."""
        return all(t.done for t in self.threads)

    def peek_issue_time(self) -> int:
        """Earliest issuable next op across threads."""
        times = [t.peek_issue_time() for t in self.threads if not t.done]
        if not times:
            raise SimulationError("core already finished")
        return min(times)

    def step(self, hierarchy: MemoryHierarchy) -> int:
        """Advance the thread with the earliest issuable op."""
        ready = [(t.peek_issue_time(), i)
                 for i, t in enumerate(self.threads) if not t.done]
        if not ready:
            raise SimulationError("core already finished")
        _, pick = min(ready)
        return self.threads[pick].step(hierarchy)

    def advance(self, hierarchy: MemoryHierarchy) -> "int | None":
        """Process one op; returns the next op's issue bound (or None)."""
        self.step(hierarchy)
        if self.done:
            return None
        return self.peek_issue_time()

    # ----- results ----------------------------------------------------------
    def result(self) -> CoreResult:
        """Merged per-core result (records interleaved by start cycle)."""
        parts = [t.result() for t in self.threads]
        records = sorted((r for p in parts for r in p.records),
                         key=lambda r: r[0])
        return CoreResult(
            core_id=self.core_id,
            instructions=sum(p.instructions for p in parts),
            mem_ops=sum(p.mem_ops for p in parts),
            finish_cycle=max(p.finish_cycle for p in parts),
            l1_hits=self.l1.hits,
            l1_misses=self.l1.misses,
            records=tuple(records),
            prefetches_issued=sum(p.prefetches_issued for p in parts),
            prefetches_useful=sum(p.prefetches_useful for p in parts),
        )
