"""Shared memory hierarchy: address-interleaved L2 slices + DRAM + NoC.

The L2 is physically distributed (one slice per core, line-interleaved,
as in the paper's Fig. 3 schematic) but logically shared: any core may
hit in any slice, paying the NoC round trip.  Each slice has its own tag
store, banks and MSHRs; misses go to the shared banked DRAM.

The hierarchy also records per-layer access intervals so that APC
(Fig. 13) and per-layer C-AMAT can be measured after the run via the
standard :class:`repro.camat.TraceAnalyzer`.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.camat.trace import AccessTrace
from repro.errors import SimulationError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import SimulatedChip
from repro.sim.dram import DRAMModel
from repro.sim.mshr import MSHRFile
from repro.sim.noc import MeshNoC

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """Shared L2 + DRAM servicing L1 misses from all cores."""

    def __init__(self, chip: SimulatedChip,
                 l1_caches: "list[SetAssociativeCache] | None" = None) -> None:
        self.chip = chip
        n = chip.n_cores
        self.slices = [SetAssociativeCache(chip.l2_slice) for _ in range(n)]
        self.slice_mshrs = [MSHRFile(chip.l2_slice.mshr_entries)
                            for _ in range(n)]
        # Per-slice, per-bank next-free times (pipelined lookups).
        self._bank_free = [[0] * chip.l2_slice.banks for _ in range(n)]
        # Hot-path scalars (chip config is frozen, so these cannot drift).
        self._n_cores = n
        self._line_bytes = chip.l2_slice.line_bytes
        self._l2_banks = chip.l2_slice.banks
        self._l2_hit_latency = chip.l2_slice.hit_latency
        self.dram = DRAMModel(chip.dram)
        self.noc = MeshNoC(n, chip.noc)
        # The NoC's flat latency table, indexed directly on the miss
        # path (its entries are immutable; only `traversals` advances).
        self._noc_lat = self.noc._lat
        self.l2_accesses = 0
        self.l2_hits = 0
        self._l2_records: list[tuple[int, int, int]] = []
        self._dram_records: list[tuple[int, int]] = []
        self._l2_trace_cache: "AccessTrace | None" = None
        self._dram_trace_cache: "AccessTrace | None" = None
        # MSI-lite directory: L1 line number -> set of sharer core ids.
        # Active only when the per-core L1s register themselves (the CMP
        # simulator wires this up); a None registry means non-coherent
        # private L1s, the paper's other Fig. 3 variant.
        self._l1_caches = l1_caches
        self._sharers: dict[int, set[int]] = {}
        self.invalidations = 0
        self.upgrades = 0
        self.dram_writes = 0

    def slice_of(self, line: int) -> int:
        """Home slice of a cache line (line-interleaved)."""
        return line % self.chip.n_cores

    def register_l1s(self, caches: "list[SetAssociativeCache]") -> None:
        """Attach the per-core L1s (enables the coherence directory)."""
        if len(caches) != self.chip.n_cores:
            raise SimulationError(
                f"need {self.chip.n_cores} L1s, got {len(caches)}")
        self._l1_caches = caches

    # ----- MSI-lite coherence -------------------------------------------
    def _invalidate_sharers(self, core_id: int, address: int,
                            l1_line: int) -> int:
        """Invalidate every other sharer's L1 copy; returns extra cycles.

        The writer pays one NoC round trip to the furthest sharer
        (invalidations travel in parallel); a dirty remote copy's
        writeback is accounted by the victim cache itself.
        """
        if self._l1_caches is None:
            return 0
        sharers = self._sharers.get(l1_line)
        if not sharers:
            self._sharers[l1_line] = {core_id}
            return 0
        extra = 0
        for other in list(sharers):
            if other == core_id:
                continue
            if self._l1_caches[other].invalidate(address):
                self.invalidations += 1
            extra = max(extra, self.noc.round_trip(core_id, other))
        self._sharers[l1_line] = {core_id}
        return extra

    def upgrade(self, core_id: int, address: int, time: int) -> int:
        """Write hit on a (possibly shared) line: gain ownership.

        Returns the cycle at which the write may retire — ``time`` when
        the line is already exclusive, later when other sharers must be
        invalidated first.
        """
        if self._l1_caches is None:
            return time
        l1_line = address // self.chip.l2_slice.line_bytes
        sharers = self._sharers.get(l1_line)
        if sharers is None or sharers == {core_id}:
            self._sharers[l1_line] = {core_id}
            return time
        self.upgrades += 1
        return time + self._invalidate_sharers(core_id, address, l1_line)

    def writeback(self, core_id: int, address: int, time: int) -> None:
        """Accept a dirty L1 victim into its home L2 slice."""
        line = address // self._line_bytes
        home = line % self._n_cores
        self.noc.traversals += 1
        arrive = time + self._noc_lat[core_id * self._n_cores + home]
        bank = line % self._l2_banks
        bank_free = self._bank_free[home]
        start = arrive if arrive >= bank_free[bank] else bank_free[bank]
        bank_free[bank] = start + 1
        _, l2_victim = self.slices[home].access_rw(address, write=True)
        if l2_victim is not None:
            # Dirty L2 victim drains to DRAM (fire-and-forget write).
            self.dram.access(l2_victim * self._line_bytes, start)
            self.dram_writes += 1
        self._sharers.pop(line, None)

    def service_miss(self, core_id: int, address: int, time: int,
                     write: bool = False) -> int:
        """Service an L1 miss issued by ``core_id`` at ``time``.

        Returns the cycle at which the fill reaches the requesting L1.
        Write misses additionally gain ownership (invalidating other
        sharers) when coherence is enabled.
        """
        if time < 0:
            raise SimulationError(f"negative request time {time}")
        line = address // self._line_bytes
        home = line % self._n_cores
        noc = self.noc
        noc.traversals += 1
        arrive = time + self._noc_lat[core_id * self._n_cores + home]
        if self._l1_caches is not None:
            if write:
                arrive += self._invalidate_sharers(core_id, address, line)
            else:
                self._sharers.setdefault(line, set()).add(core_id)
        bank = line % self._l2_banks
        bank_free = self._bank_free[home]
        start = arrive if arrive >= bank_free[bank] else bank_free[bank]
        bank_free[bank] = start + 1
        self.l2_accesses += 1
        hit_lat = self._l2_hit_latency
        mshr = self.slice_mshrs[home]
        # Inlined mshr.lookup (guarded retire + map probe).
        mheap = mshr._heap
        if mheap and mheap[0][0] <= start:
            mshr._retire(start)
        outstanding = mshr._pending.get(line)
        if outstanding is not None:
            # Secondary miss at L2: ride the in-flight fill.
            done = int(outstanding)
            penalty = max(done - start - hit_lat, 0)
            self._l2_records.append((start, hit_lat, penalty))
        else:
            l2_hit, l2_victim = self.slices[home].access_rw(
                address, write=False)
            if l2_victim is not None:
                self.dram.access(l2_victim * self._line_bytes, start)
                self.dram_writes += 1
            if l2_hit:
                self.l2_hits += 1
                done = start + hit_lat
                self._l2_records.append((start, hit_lat, 0))
            else:
                alloc = max(start + hit_lat,
                            int(mshr.earliest_free_time(start)))
                dram_done = int(self.dram.access(address, alloc))
                self._dram_records.append((alloc, dram_done - alloc))
                mshr.allocate(line, dram_done, alloc)
                done = dram_done
                self._l2_records.append(
                    (start, hit_lat, done - start - hit_lat))
        noc.traversals += 1
        return done + self._noc_lat[home * self._n_cores + core_id]

    # ----- per-layer traces (for APC / C-AMAT measurement) -----------------
    def l2_trace(self) -> "AccessTrace | None":
        """Cycle-level trace of all L2 accesses (None if there were none).

        Built columnar (no per-access objects) and memoized; call only
        after the event loop drains.
        """
        if not self._l2_records:
            return None
        if self._l2_trace_cache is None or len(
                self._l2_trace_cache) != len(self._l2_records):
            columns = np.fromiter(
                itertools.chain.from_iterable(self._l2_records),
                dtype=np.int64,
                count=3 * len(self._l2_records)).reshape(-1, 3)
            self._l2_trace_cache = AccessTrace.from_arrays(
                columns[:, 0], columns[:, 1], columns[:, 2])
        return self._l2_trace_cache

    def dram_trace(self) -> "AccessTrace | None":
        """Cycle-level trace of all DRAM accesses (None if there were none).

        Built columnar and memoized like :meth:`l2_trace`.
        """
        if not self._dram_records:
            return None
        if self._dram_trace_cache is None or len(
                self._dram_trace_cache) != len(self._dram_records):
            columns = np.fromiter(
                itertools.chain.from_iterable(self._dram_records),
                dtype=np.int64,
                count=2 * len(self._dram_records)).reshape(-1, 2)
            self._dram_trace_cache = AccessTrace.from_arrays(
                columns[:, 0], np.maximum(columns[:, 1], 1),
                np.zeros(len(columns), dtype=np.int64))
        return self._dram_trace_cache

    @property
    def l2_miss_rate(self) -> float:
        """Observed shared-L2 miss rate."""
        if self.l2_accesses == 0:
            return 0.0
        return 1.0 - self.l2_hits / self.l2_accesses

    def stats(self) -> dict:
        """Flat per-layer counter values for metrics publication.

        Keys are dotted metric suffixes (``l2.hits``,
        ``dram.queue_wait_cycles``, ...) so the CMP simulator can
        publish them under the ``sim.`` namespace verbatim.
        """
        out = {
            "l2.accesses": self.l2_accesses,
            "l2.hits": self.l2_hits,
            "l2.misses": self.l2_accesses - self.l2_hits,
            "l2.writebacks": sum(s.writebacks for s in self.slices),
            "coherence.invalidations": self.invalidations,
            "coherence.upgrades": self.upgrades,
            "dram.writes": self.dram_writes,
        }
        for name, value in _sum_stats(m.stats() for m in self.slice_mshrs):
            out[f"l2.mshr_{name}"] = value
        for name, value in self.dram.stats().items():
            out[f"dram.{name}"] = value
        return out


def _sum_stats(dicts) -> "list[tuple[str, float]]":
    """Element-wise sum of homogeneous stat dicts (as sorted items)."""
    totals: dict[str, float] = {}
    for d in dicts:
        for key, value in d.items():
            totals[key] = totals.get(key, 0) + value
    return sorted(totals.items())
