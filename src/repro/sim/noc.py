"""Mesh network-on-chip latency model.

Cores and L2 slices sit on a ``k x k`` mesh (``k = ceil(sqrt(N))``);
a request from core ``i`` to slice ``j`` pays router overhead plus
``hop_latency`` per Manhattan hop each way.  This is a latency-only model
(no link contention): contention effects the C2-Bound analysis cares
about are concentrated at the L2 banks and DRAM, which are modeled
explicitly.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError
from repro.sim.config import NoCConfig

__all__ = ["MeshNoC"]


class MeshNoC:
    """Latency oracle for a square mesh of ``n_nodes`` tiles."""

    def __init__(self, n_nodes: int, config: NoCConfig) -> None:
        if n_nodes < 1:
            raise InvalidParameterError(f"need >= 1 node, got {n_nodes}")
        self.n_nodes = n_nodes
        self.config = config
        self.side = max(int(math.ceil(math.sqrt(n_nodes))), 1)
        self.traversals = 0
        # Flat (src * n + dst) -> latency table: the event loop asks for
        # the same few pairs millions of times, so the Manhattan-hop
        # arithmetic is hoisted out of the hot path entirely.
        side = self.side
        coords = [(node % side, node // side) for node in range(n_nodes)]
        self._lat = [
            config.router_latency
            + config.hop_latency * (abs(sx - dx) + abs(sy - dy))
            for sx, sy in coords for dx, dy in coords
        ]

    def coordinates(self, node: int) -> tuple[int, int]:
        """(x, y) position of a tile."""
        if not 0 <= node < self.n_nodes:
            raise InvalidParameterError(
                f"node {node} outside [0, {self.n_nodes})")
        return node % self.side, node // self.side

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two tiles."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        """One-way latency in cycles."""
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise InvalidParameterError(
                f"node pair ({src}, {dst}) outside [0, {self.n_nodes})")
        self.traversals += 1
        return self._lat[src * self.n_nodes + dst]

    def round_trip(self, src: int, dst: int) -> int:
        """Request + response latency."""
        return 2 * self.latency(src, dst)

    @property
    def average_hops(self) -> float:
        """Mean hop count over uniformly random (src, dst) pairs.

        Closed form for a full ``k x k`` mesh: ``2*(k^2-1)/(3k)``; used by
        the analytic model to estimate remote-L2 latency without
        enumerating pairs.
        """
        k = self.side
        return 2.0 * (k * k - 1.0) / (3.0 * k)
