"""Out-of-order core model (interval style).

A core executes an instruction stream given as parallel arrays
``(addresses, gaps)``: access ``j`` touches ``addresses[j]`` after
``gaps[j]`` non-memory instructions.  The model captures exactly the
mechanisms that create C-AMAT's concurrency parameters:

- *issue bandwidth*: instructions issue at ``issue_width`` per cycle;
- *ROB reach*: access ``j`` cannot issue until the instruction
  ``rob_size`` older has committed (in-order commit), which bounds how
  many misses can overlap (memory-level parallelism);
- *L1 banking*: same-cycle lookups to distinct banks proceed in
  parallel (hit concurrency), same-bank lookups serialize by one cycle;
- *MSHRs*: outstanding line misses are bounded by the L1 MSHR file, with
  secondary misses merging.

Each access produces a :class:`repro.camat.MemoryAccess`-shaped record,
so a finished core yields a genuine :class:`repro.camat.AccessTrace`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.camat.trace import AccessTrace, MemoryAccess
from repro.errors import SimulationError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig, CoreMicroConfig
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.mshr import MSHRFile
from repro.sim.prefetch import NextLinePrefetcher, StridePrefetcher

__all__ = ["CoreModel", "CoreResult"]


@dataclass(frozen=True)
class CoreResult:
    """Summary of one core's execution.

    Attributes
    ----------
    core_id:
        Index of the core.
    instructions:
        Total instructions executed (memory + compute).
    mem_ops:
        Memory operations executed.
    finish_cycle:
        Cycle at which the last instruction committed.
    l1_hits, l1_misses:
        L1 outcome counts.
    records:
        Per-access ``(start, hit_cycles, miss_penalty)`` tuples.
    """

    core_id: int
    instructions: int
    mem_ops: int
    finish_cycle: int
    l1_hits: int
    l1_misses: int
    records: tuple[tuple[int, int, int], ...]
    prefetches_issued: int = 0
    prefetches_useful: int = 0

    @property
    def f_mem(self) -> float:
        """Fraction of instructions that access memory."""
        return self.mem_ops / self.instructions if self.instructions else 0.0

    @property
    def l1_miss_rate(self) -> float:
        """Observed L1 miss rate."""
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction over the whole run."""
        if self.instructions == 0:
            return 0.0
        return self.finish_cycle / self.instructions

    def trace(self) -> AccessTrace:
        """The core's L1-level access trace (for C-AMAT analysis)."""
        if not self.records:
            raise SimulationError("core executed no memory operations")
        return AccessTrace(
            MemoryAccess(start=s, hit_cycles=h, miss_penalty=p)
            for s, h, p in self.records)


class CoreModel:
    """Stepwise executor for one core (driven by the CMP event loop)."""

    def __init__(self, core_id: int, micro: CoreMicroConfig,
                 l1_config: CacheConfig,
                 addresses: np.ndarray, gaps: np.ndarray,
                 writes: "np.ndarray | None" = None, *,
                 shared_l1: "SetAssociativeCache | None" = None,
                 shared_mshr: "MSHRFile | None" = None,
                 shared_banks: "list[int] | None" = None,
                 issue_width_override: "int | None" = None) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        gaps = np.asarray(gaps, dtype=np.int64)
        if addresses.shape != gaps.shape or addresses.ndim != 1:
            raise SimulationError("addresses and gaps must be equal 1-D arrays")
        if np.any(gaps < 0) or np.any(addresses < 0):
            raise SimulationError("addresses and gaps must be non-negative")
        if writes is None:
            writes = np.zeros(addresses.shape, dtype=bool)
        writes = np.asarray(writes, dtype=bool)
        if writes.shape != addresses.shape:
            raise SimulationError("write mask must match the address array")
        self.core_id = core_id
        self.micro = micro
        self.l1 = (shared_l1 if shared_l1 is not None
                   else SetAssociativeCache(l1_config))
        self.mshr = (shared_mshr if shared_mshr is not None
                     else MSHRFile(l1_config.mshr_entries))
        self._issue_width = (issue_width_override
                             if issue_width_override is not None
                             else micro.issue_width)
        self.addresses = addresses
        self.gaps = gaps
        self.writes = writes
        # Instruction index of each memory op: gaps before it plus earlier ops.
        self.instr_index = (np.cumsum(gaps)
                            + np.arange(addresses.size, dtype=np.int64))
        self._next = 0
        self._bank_free = (shared_banks if shared_banks is not None
                           else [0] * l1_config.banks)
        self._outstanding: deque[tuple[int, int]] = deque()  # (instr idx, done)
        self._records: list[tuple[int, int, int]] = []
        self._last_done = 0
        # Structural stall: when the MSHR file fills, the pipeline blocks
        # until an entry frees, so younger ops cannot issue past this cycle.
        self._issue_barrier = 0
        if l1_config.prefetch == "nextline":
            self._prefetcher = NextLinePrefetcher(l1_config.prefetch_degree)
        elif l1_config.prefetch == "stride":
            self._prefetcher = StridePrefetcher(l1_config.prefetch_degree)
        else:
            self._prefetcher = None
        self._prefetched_lines: set[int] = set()
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    # ----- event-loop interface -------------------------------------------
    @property
    def done(self) -> bool:
        """Whether all memory ops have been processed."""
        return self._next >= self.addresses.size

    def peek_issue_time(self) -> int:
        """Lower bound on the next op's issue cycle (for event ordering)."""
        if self.done:
            raise SimulationError("core already finished")
        idx = int(self.instr_index[self._next])
        t = max(idx // self._issue_width, self._issue_barrier)
        # ROB: the op cannot issue before the instruction rob_size older
        # has committed; memory ops are the only long-latency entries.
        bound = idx - self.micro.rob_size
        for instr, done_t in self._outstanding:
            if instr <= bound:
                t = max(t, done_t)
            else:
                break
        return t

    def step(self, hierarchy: MemoryHierarchy) -> int:
        """Process one memory op; returns its completion cycle."""
        if self.done:
            raise SimulationError("core already finished")
        j = self._next
        self._next += 1
        idx = int(self.instr_index[j])
        address = int(self.addresses[j])
        is_write = bool(self.writes[j])
        issue = max(idx // self._issue_width, self._issue_barrier)
        # In-order commit / ROB occupancy.
        bound = idx - self.micro.rob_size
        while self._outstanding and self._outstanding[0][0] <= bound:
            instr, done_t = self._outstanding.popleft()
            issue = max(issue, done_t)
        # L1 bank port (1-cycle pipelined occupancy per bank).
        cfg = self.l1.config
        bank = self.l1.bank_of(address)
        issue = max(issue, self._bank_free[bank])
        self._bank_free[bank] = issue + 1
        hit_lat = cfg.hit_latency
        line = self.l1.line_of(address)
        outstanding_fill = self.mshr.lookup(line, issue)
        if outstanding_fill is not None:
            # Secondary miss: ride the in-flight fill (counts as a miss).
            self.l1.misses += 1
            self.mshr.merge(line, issue)
            if is_write:
                self.l1.set_dirty(address)
            done = max(int(outstanding_fill), issue + hit_lat)
        else:
            hit, victim = self.l1.access_rw(address, write=is_write)
            if victim is not None:
                hierarchy.writeback(self.core_id,
                                    victim * cfg.line_bytes, issue)
            if hit:
                done = issue + hit_lat
                if is_write:
                    # Coherence upgrade: gain ownership if shared.
                    done = max(done, hierarchy.upgrade(
                        self.core_id, address, issue) + hit_lat)
            else:
                alloc = max(issue + hit_lat,
                            int(self.mshr.earliest_free_time(issue)))
                if alloc > issue + hit_lat:
                    # The file was full: the pipeline blocks until the
                    # entry frees; no younger instruction issues earlier.
                    self._issue_barrier = max(self._issue_barrier, alloc)
                done = hierarchy.service_miss(self.core_id, address, alloc,
                                              write=is_write)
                self.mshr.allocate(line, done, alloc)
        penalty = max(done - issue - hit_lat, 0)
        self._records.append((issue, hit_lat, penalty))
        self._outstanding.append((idx, done))
        self._last_done = max(self._last_done, done)
        if self._prefetcher is not None:
            was_hit = penalty == 0 and outstanding_fill is None
            if was_hit and line in self._prefetched_lines:
                self.prefetches_useful += 1
                self._prefetched_lines.discard(line)
            targets = (self._prefetcher.on_hit(line) if was_hit
                       else self._prefetcher.on_miss(line))
            self._issue_prefetches(hierarchy, targets, issue + hit_lat)
        return done

    def _issue_prefetches(self, hierarchy: MemoryHierarchy,
                          lines: "list[int]", time: int) -> None:
        """Fire-and-forget prefetch fills, bounded by spare MSHRs.

        Prefetches never steal the last MSHR entry from demand misses
        and never stall the pipeline; a dirty victim displaced by a
        prefetch fill is written back like any other.
        """
        cfg = self.l1.config
        for line in lines:
            if self.mshr.outstanding(time) >= cfg.mshr_entries - 1:
                break
            address = line * cfg.line_bytes
            if (self.l1.probe(address)
                    or self.mshr.lookup(line, time) is not None):
                continue
            fill_time = hierarchy.service_miss(self.core_id, address, time)
            self.mshr.allocate(line, fill_time, time)
            victim = self.l1.fill(address)
            if victim is not None:
                hierarchy.writeback(self.core_id,
                                    victim * cfg.line_bytes, time)
            self._prefetched_lines.add(line)
            self.prefetches_issued += 1

    # ----- results --------------------------------------------------------
    def result(self) -> CoreResult:
        """Finalize and summarize (call after the event loop drains)."""
        if not self.done:
            raise SimulationError("core has unprocessed memory ops")
        total_instr = (int(self.gaps.sum()) + self.addresses.size)
        bw_finish = total_instr // max(self._issue_width, 1)
        return CoreResult(
            core_id=self.core_id,
            instructions=total_instr,
            mem_ops=int(self.addresses.size),
            finish_cycle=max(self._last_done, bw_finish),
            l1_hits=self.l1.hits,
            l1_misses=self.l1.misses,
            records=tuple(self._records),
            prefetches_issued=self.prefetches_issued,
            prefetches_useful=self.prefetches_useful,
        )
