"""Out-of-order core model (interval style).

A core executes an instruction stream given as parallel arrays
``(addresses, gaps)``: access ``j`` touches ``addresses[j]`` after
``gaps[j]`` non-memory instructions.  The model captures exactly the
mechanisms that create C-AMAT's concurrency parameters:

- *issue bandwidth*: instructions issue at ``issue_width`` per cycle;
- *ROB reach*: access ``j`` cannot issue until the instruction
  ``rob_size`` older has committed (in-order commit), which bounds how
  many misses can overlap (memory-level parallelism);
- *L1 banking*: same-cycle lookups to distinct banks proceed in
  parallel (hit concurrency), same-bank lookups serialize by one cycle;
- *MSHRs*: outstanding line misses are bounded by the L1 MSHR file, with
  secondary misses merging.

Hot-path layout: the per-access loop reads plain Python lists (NumPy
scalar indexing costs ~10x a list index) and writes records into
preallocated int64 column arrays, which at the end become a genuine
:class:`repro.camat.AccessTrace` through the columnar
:meth:`~repro.camat.trace.AccessTrace.from_arrays` fast path — no
per-access object is ever built.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.camat.trace import AccessTrace
from repro.errors import SimulationError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig, CoreMicroConfig
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.mshr import MSHRFile
from repro.sim.prefetch import NextLinePrefetcher, StridePrefetcher

__all__ = ["CoreModel", "CoreResult"]


@dataclass(frozen=True)
class CoreResult:
    """Summary of one core's execution.

    Attributes
    ----------
    core_id:
        Index of the core.
    instructions:
        Total instructions executed (memory + compute).
    mem_ops:
        Memory operations executed.
    finish_cycle:
        Cycle at which the last instruction committed.
    l1_hits, l1_misses:
        L1 outcome counts.
    records:
        Per-access ``(start, hit_cycles, miss_penalty)`` tuples.
    """

    core_id: int
    instructions: int
    mem_ops: int
    finish_cycle: int
    l1_hits: int
    l1_misses: int
    records: tuple[tuple[int, int, int], ...]
    prefetches_issued: int = 0
    prefetches_useful: int = 0

    @property
    def f_mem(self) -> float:
        """Fraction of instructions that access memory."""
        return self.mem_ops / self.instructions if self.instructions else 0.0

    @property
    def l1_miss_rate(self) -> float:
        """Observed L1 miss rate."""
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction over the whole run."""
        if self.instructions == 0:
            return 0.0
        return self.finish_cycle / self.instructions

    def trace(self) -> AccessTrace:
        """The core's L1-level access trace (for C-AMAT analysis).

        Built once through the columnar fast path and memoized, so
        repeated analyses (``layer_apc`` + ``core_stats``) never re-parse
        the records.
        """
        cached = self.__dict__.get("_trace")
        if cached is None:
            if not self.records:
                raise SimulationError("core executed no memory operations")
            columns = np.asarray(self.records, dtype=np.int64)
            cached = AccessTrace.from_arrays(
                columns[:, 0], columns[:, 1], columns[:, 2])
            # Frozen dataclass: memoize past the __setattr__ guard.
            object.__setattr__(self, "_trace", cached)
        return cached


class CoreModel:
    """Stepwise executor for one core (driven by the CMP event loop)."""

    def __init__(self, core_id: int, micro: CoreMicroConfig,
                 l1_config: CacheConfig,
                 addresses: np.ndarray, gaps: np.ndarray,
                 writes: "np.ndarray | None" = None, *,
                 shared_l1: "SetAssociativeCache | None" = None,
                 shared_mshr: "MSHRFile | None" = None,
                 shared_banks: "list[int] | None" = None,
                 issue_width_override: "int | None" = None) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        gaps = np.asarray(gaps, dtype=np.int64)
        if addresses.shape != gaps.shape or addresses.ndim != 1:
            raise SimulationError("addresses and gaps must be equal 1-D arrays")
        if np.any(gaps < 0) or np.any(addresses < 0):
            raise SimulationError("addresses and gaps must be non-negative")
        if writes is None:
            writes = np.zeros(addresses.shape, dtype=bool)
        writes = np.asarray(writes, dtype=bool)
        if writes.shape != addresses.shape:
            raise SimulationError("write mask must match the address array")
        self.core_id = core_id
        self.micro = micro
        self.l1 = (shared_l1 if shared_l1 is not None
                   else SetAssociativeCache(l1_config))
        self.mshr = (shared_mshr if shared_mshr is not None
                     else MSHRFile(l1_config.mshr_entries))
        self._issue_width = (issue_width_override
                             if issue_width_override is not None
                             else micro.issue_width)
        self._rob_size = micro.rob_size
        cfg = self.l1.config
        self._line_bytes = cfg.line_bytes
        self._l1_banks = cfg.banks
        self._hit_latency = cfg.hit_latency
        self._mshr_entries = cfg.mshr_entries
        # The MSHR file's live containers (mutated in place, never
        # rebound — see the MSHRFile docstring), probed directly on the
        # per-op fast path.
        self._mshr_pending = self.mshr._pending
        self._mshr_heap = self.mshr._heap
        self.addresses = addresses
        self.gaps = gaps
        self.writes = writes
        # Instruction index of each memory op: gaps before it plus earlier ops.
        self.instr_index = (np.cumsum(gaps)
                            + np.arange(addresses.size, dtype=np.int64))
        # Hot-loop views: plain lists index ~10x faster than ndarrays.
        # The address/write columns are built lazily (__getattr__): only
        # the scalar path reads them, so a kernel run that never falls
        # back skips boxing them entirely.
        self._instr_list: list[int] = self.instr_index.tolist()
        # Bandwidth-limited issue cycle of each op, divided out once.
        self._base_issue: list[int] = (
            self.instr_index // self._issue_width).tolist()
        self._n_ops = addresses.size
        self._next = 0
        self._bank_free = (shared_banks if shared_banks is not None
                           else [0] * l1_config.banks)
        self._outstanding: deque[tuple[int, int]] = deque()  # (instr idx, done)
        # Preallocated record slots — one ``(start, hit, penalty)``
        # tuple per memory op.  A single tuple store per access is
        # cheaper than three column stores or NumPy element assignment;
        # both the scalar path and the epoch kernel
        # (:mod:`repro.sim.kernel`) write the same list in place, and
        # :meth:`result` turns it into int64 columns once.
        self._records: "list[tuple[int, int, int]]" = (
            [(0, 0, 0)] * self._n_ops)
        self._last_done = 0
        # Committed-done watermark: the max completion time among entries
        # retired for the *current* op (reset per op), so peek/step never
        # rescan the deque.
        self._retire_op = -1
        self._retire_max = 0
        # Structural stall: when the MSHR file fills, the pipeline blocks
        # until an entry frees, so younger ops cannot issue past this cycle.
        self._issue_barrier = 0
        if l1_config.prefetch == "nextline":
            self._prefetcher = NextLinePrefetcher(l1_config.prefetch_degree)
        elif l1_config.prefetch == "stride":
            self._prefetcher = StridePrefetcher(l1_config.prefetch_degree)
        else:
            self._prefetcher = None
        self._prefetched_lines: set[int] = set()
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    def __getattr__(self, name: str):
        # Lazily boxed scalar-path columns: only ``advance`` reads
        # them, so a kernel run with no fallbacks never pays the
        # NumPy-to-list conversion.  Cached on first access.
        if name == "_addr_list":
            value: list = self.addresses.tolist()
        elif name == "_write_list":
            value = self.writes.tolist()
        else:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}")
        self.__dict__[name] = value
        return value

    # ----- event-loop interface -------------------------------------------
    @property
    def done(self) -> bool:
        """Whether all memory ops have been processed."""
        return self._next >= self._n_ops

    def peek_issue_time(self) -> int:
        """Lower bound on the next op's issue cycle (for event ordering).

        The committed-done watermark (``_retire_op``/``_retire_max``)
        makes the ROB check amortized O(1): it resets per op, each deque
        entry pops exactly once, and a repeated peek of the same op
        returns the accumulated maximum — matching the historical
        semantics where every peek rescanned the whole deque.  The same
        watermark is shared with :meth:`step` (inlined in both, this is
        the innermost event-loop code).
        """
        j = self._next
        if j >= self._n_ops:
            raise SimulationError("core already finished")
        t = self._base_issue[j]
        if self._issue_barrier > t:
            t = self._issue_barrier
        # ROB: the op cannot issue before the instruction rob_size older
        # has committed; memory ops are the only long-latency entries.
        if self._retire_op != j:
            self._retire_op = j
            self._retire_max = 0
        bound = self._instr_list[j] - self._rob_size
        outstanding = self._outstanding
        committed = self._retire_max
        while outstanding and outstanding[0][0] <= bound:
            done_t = outstanding.popleft()[1]
            if done_t > committed:
                committed = done_t
        self._retire_max = committed
        return t if t >= committed else committed

    def advance(self, hierarchy: MemoryHierarchy) -> "int | None":
        """Process one op; returns the next op's issue bound (or None).

        The fused step-then-peek the event loop spins on — one method
        call per op instead of ``step``/``done``/``peek_issue_time``,
        with the peek body inlined (the golden differential tests pin
        it to :meth:`peek_issue_time` exactly).
        """
        self.step(hierarchy)
        j = self._next
        if j >= self._n_ops:
            return None
        t = self._base_issue[j]
        barrier = self._issue_barrier
        if barrier > t:
            t = barrier
        if self._retire_op != j:
            self._retire_op = j
            self._retire_max = 0
        bound = self._instr_list[j] - self._rob_size
        outstanding = self._outstanding
        committed = self._retire_max
        while outstanding and outstanding[0][0] <= bound:
            done_t = outstanding.popleft()[1]
            if done_t > committed:
                committed = done_t
        self._retire_max = committed
        return t if t >= committed else committed

    def step(self, hierarchy: MemoryHierarchy) -> int:
        """Process one memory op; returns its completion cycle."""
        j = self._next
        if j >= self._n_ops:
            raise SimulationError("core already finished")
        self._next = j + 1
        idx = self._instr_list[j]
        address = self._addr_list[j]
        is_write = self._write_list[j]
        issue = self._base_issue[j]
        if self._issue_barrier > issue:
            issue = self._issue_barrier
        # In-order commit / ROB occupancy (same watermark as peek).
        if self._retire_op != j:
            self._retire_op = j
            self._retire_max = 0
        bound = idx - self._rob_size
        outstanding = self._outstanding
        committed = self._retire_max
        while outstanding and outstanding[0][0] <= bound:
            done_t = outstanding.popleft()[1]
            if done_t > committed:
                committed = done_t
        self._retire_max = committed
        if committed > issue:
            issue = committed
        # L1 bank port (1-cycle pipelined occupancy per bank).
        line = address // self._line_bytes
        bank = line % self._l1_banks
        bank_free = self._bank_free
        if bank_free[bank] > issue:
            issue = bank_free[bank]
        bank_free[bank] = issue + 1
        hit_lat = self._hit_latency
        mshr = self.mshr
        l1 = self.l1
        # Inlined mshr.lookup (guarded retire + map probe).
        mheap = self._mshr_heap
        if mheap and mheap[0][0] <= issue:
            mshr._retire(issue)
        outstanding_fill = self._mshr_pending.get(line)
        if outstanding_fill is not None:
            # Secondary miss: ride the in-flight fill (counts as a miss).
            l1.misses += 1
            mshr.merge(line, issue)
            if is_write:
                l1.set_dirty(address)
            done = max(int(outstanding_fill), issue + hit_lat)
        else:
            hit, victim = l1.access_rw(address, write=is_write)
            if victim is not None:
                hierarchy.writeback(self.core_id,
                                    victim * self._line_bytes, issue)
            if hit:
                done = issue + hit_lat
                if is_write:
                    # Coherence upgrade: gain ownership if shared.
                    done = max(done, hierarchy.upgrade(
                        self.core_id, address, issue) + hit_lat)
            else:
                alloc = max(issue + hit_lat,
                            int(mshr.earliest_free_time(issue)))
                if alloc > issue + hit_lat:
                    # The file was full: the pipeline blocks until the
                    # entry frees; no younger instruction issues earlier.
                    self._issue_barrier = max(self._issue_barrier, alloc)
                done = hierarchy.service_miss(self.core_id, address, alloc,
                                              write=is_write)
                mshr.allocate(line, done, alloc)
        penalty = done - issue - hit_lat
        self._records[j] = (issue, hit_lat, penalty if penalty > 0 else 0)
        outstanding.append((idx, done))
        if done > self._last_done:
            self._last_done = done
        if self._prefetcher is not None:
            was_hit = penalty <= 0 and outstanding_fill is None
            if was_hit and line in self._prefetched_lines:
                self.prefetches_useful += 1
                self._prefetched_lines.discard(line)
            targets = (self._prefetcher.on_hit(line) if was_hit
                       else self._prefetcher.on_miss(line))
            self._issue_prefetches(hierarchy, targets, issue + hit_lat)
        return done

    def _issue_prefetches(self, hierarchy: MemoryHierarchy,
                          lines: "list[int]", time: int) -> None:
        """Fire-and-forget prefetch fills, bounded by spare MSHRs.

        Prefetches never steal the last MSHR entry from demand misses
        and never stall the pipeline; a dirty victim displaced by a
        prefetch fill is written back like any other.
        """
        for line in lines:
            if self.mshr.outstanding(time) >= self._mshr_entries - 1:
                break
            address = line * self._line_bytes
            if (self.l1.probe(address)
                    or self.mshr.lookup(line, time) is not None):
                continue
            fill_time = hierarchy.service_miss(self.core_id, address, time)
            self.mshr.allocate(line, fill_time, time)
            victim = self.l1.fill(address)
            if victim is not None:
                hierarchy.writeback(self.core_id,
                                    victim * self._line_bytes, time)
            self._prefetched_lines.add(line)
            self.prefetches_issued += 1

    # ----- results --------------------------------------------------------
    def result(self) -> CoreResult:
        """Finalize and summarize (call after the event loop drains)."""
        if not self.done:
            raise SimulationError("core has unprocessed memory ops")
        total_instr = (int(self.gaps.sum()) + self._n_ops)
        bw_finish = total_instr // max(self._issue_width, 1)
        result = CoreResult(
            core_id=self.core_id,
            instructions=total_instr,
            mem_ops=int(self._n_ops),
            finish_cycle=max(self._last_done, bw_finish),
            l1_hits=self.l1.hits,
            l1_misses=self.l1.misses,
            records=tuple(self._records),
            prefetches_issued=self.prefetches_issued,
            prefetches_useful=self.prefetches_useful,
        )
        if self._n_ops:
            # Seed the memoized trace straight from the record tuples,
            # skipping the records->array round trip in trace().
            # fromiter over a chained flat stream converts n small
            # tuples several times faster than asarray's
            # sequence-of-sequences path.
            columns = np.fromiter(
                itertools.chain.from_iterable(self._records),
                dtype=np.int64, count=3 * self._n_ops).reshape(-1, 3)
            object.__setattr__(result, "_trace", AccessTrace.from_arrays(
                columns[:, 0], columns[:, 1], columns[:, 2]))
        return result
