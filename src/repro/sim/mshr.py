"""Miss-status holding registers (non-blocking cache support).

MSHRs are what create *miss concurrency* (``C_M`` in C-AMAT): a cache
with ``k`` MSHRs can overlap up to ``k`` outstanding line misses.
Requests to a line that is already outstanding merge into the existing
entry (secondary misses) instead of consuming a new one.

Retirement is heap-driven: alongside the ``line -> fill_time`` map the
file keeps a min-heap of ``(fill_time, line)`` pairs, so each
``lookup``/``allocate``/``merge``/``outstanding`` call retires expired
entries in amortized O(log k) instead of scanning every live entry.
Because a line can only be re-allocated after its previous entry has
retired (and retiring pops the matching heap pair), heap pairs map
one-to-one onto live entries; the lazy-invalidation guard in
:meth:`earliest_free_time` is a belt-and-braces check, not a hot path.
"""

from __future__ import annotations

import heapq

from repro.errors import InvalidParameterError

__all__ = ["MSHRFile"]


class MSHRFile:
    """A fixed-size file of outstanding line misses.

    Entries are keyed by line number and store the fill completion time.
    The file is time-driven: entries whose fill time has passed are
    retired lazily on each call.

    Hot-path contract: ``_pending`` and ``_heap`` are mutated in place
    and never rebound, so callers (``CoreModel``) may cache references
    to them and probe directly between calls.
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise InvalidParameterError(f"MSHR entries must be >= 1, got {entries}")
        self.capacity = entries
        self._pending: dict[int, float] = {}
        self._heap: list[tuple[float, int]] = []
        self.primary_misses = 0
        self.secondary_merges = 0
        self.stall_events = 0

    def _retire(self, now: float) -> None:
        heap = self._heap
        if not heap or heap[0][0] > now:
            return
        pending = self._pending
        while heap and heap[0][0] <= now:
            fill_time, line = heapq.heappop(heap)
            if pending.get(line) == fill_time:
                del pending[line]

    def outstanding(self, now: float) -> int:
        """Number of live entries at ``now``."""
        heap = self._heap
        if heap and heap[0][0] <= now:
            self._retire(now)
        return len(self._pending)

    def lookup(self, line: int, now: float) -> "float | None":
        """Fill time of an outstanding miss to ``line``, if any."""
        heap = self._heap
        if heap and heap[0][0] <= now:
            self._retire(now)
        return self._pending.get(line)

    def earliest_free_time(self, now: float) -> float:
        """Earliest time a new entry can be allocated.

        ``now`` if an entry is free; otherwise the smallest fill time
        among outstanding entries (allocation stalls until then).
        """
        heap = self._heap
        if heap and heap[0][0] <= now:
            self._retire(now)
        if len(self._pending) < self.capacity:
            return now
        self.stall_events += 1
        heap = self._heap
        while heap:
            fill_time, line = heap[0]
            if self._pending.get(line) == fill_time:
                return fill_time
            heapq.heappop(heap)  # stale pair: drop and keep looking
        raise InvalidParameterError(
            "MSHR bookkeeping corrupt: full file with an empty heap")

    def allocate(self, line: int, fill_time: float, now: float) -> None:
        """Record a new outstanding miss (primary).

        Raises if the file is full — callers must first consult
        :meth:`earliest_free_time` and delay allocation accordingly.
        """
        heap = self._heap
        if heap and heap[0][0] <= now:
            self._retire(now)
        if line in self._pending:
            raise InvalidParameterError(
                f"line {line} already outstanding; merge instead")
        if len(self._pending) >= self.capacity:
            raise InvalidParameterError("MSHR file full at allocation time")
        self._pending[line] = fill_time
        heapq.heappush(self._heap, (fill_time, line))
        self.primary_misses += 1

    def merge(self, line: int, now: float) -> float:
        """Attach to an outstanding miss; returns its fill time."""
        heap = self._heap
        if heap and heap[0][0] <= now:
            self._retire(now)
        if line not in self._pending:
            raise InvalidParameterError(f"no outstanding miss to line {line}")
        self.secondary_merges += 1
        return self._pending[line]

    def stats(self) -> dict:
        """Counter values for metrics publication (plain dict)."""
        return {"primary_misses": self.primary_misses,
                "secondary_merges": self.secondary_merges,
                "stall_events": self.stall_events}
