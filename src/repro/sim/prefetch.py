"""Hardware prefetchers (paper Section II-A lists prefetch-like
mechanisms — runahead, non-blocking structures — among the contributors
to hit and miss concurrency).

Two classic L1 prefetchers are modeled:

- :class:`NextLinePrefetcher` — on a miss to line L, fetch L+1.
- :class:`StridePrefetcher` — a PC-less stride table keyed by line
  region; detects constant-stride streams and prefetches ``degree``
  lines ahead.

A prefetch occupies an MSHR entry like a demand miss (that is the
hardware cost that bounds aggressiveness) and fills the cache when it
completes.  Timely prefetches convert demand misses into hits or
secondary merges, raising measured concurrency ``C`` and lowering
C-AMAT — the effect the ablation benchmark quantifies.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

__all__ = ["NextLinePrefetcher", "StridePrefetcher"]


class NextLinePrefetcher:
    """Sequential (next-line) prefetcher."""

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise InvalidParameterError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.issued = 0

    def on_miss(self, line: int) -> list[int]:
        """Lines to prefetch after a demand miss to ``line``."""
        targets = [line + d for d in range(1, self.degree + 1)]
        self.issued += len(targets)
        return targets

    def on_hit(self, line: int) -> list[int]:
        """Next-line prefetchers are miss-triggered only."""
        return []


class StridePrefetcher:
    """Stride-detecting prefetcher with a small history table."""

    def __init__(self, degree: int = 2, table_size: int = 16) -> None:
        if degree < 1:
            raise InvalidParameterError(f"degree must be >= 1, got {degree}")
        if table_size < 1:
            raise InvalidParameterError(
                f"table size must be >= 1, got {table_size}")
        self.degree = degree
        self.table_size = table_size
        # region -> (last line, last stride, confidence)
        self._table: dict[int, tuple[int, int, int]] = {}
        self.issued = 0

    def _observe(self, line: int) -> list[int]:
        region = line >> 6  # 64-line (4 KiB) regions as stream keys
        last = self._table.get(region)
        targets: list[int] = []
        if last is None:
            self._table[region] = (line, 0, 0)
        else:
            last_line, last_stride, confidence = last
            stride = line - last_line
            if stride != 0 and stride == last_stride:
                confidence = min(confidence + 1, 3)
            elif stride != 0:
                confidence = 0
            if stride != 0 and confidence >= 1:
                targets = [line + stride * d
                           for d in range(1, self.degree + 1)]
            self._table[region] = (line, stride if stride else last_stride,
                                   confidence)
        if len(self._table) > self.table_size:
            # Evict the oldest entry (insertion order ~ LRU enough).
            self._table.pop(next(iter(self._table)))
        self.issued += len(targets)
        return [t for t in targets if t >= 0]

    def on_miss(self, line: int) -> list[int]:
        """Observe a demand miss; maybe emit prefetch targets."""
        return self._observe(line)

    def on_hit(self, line: int) -> list[int]:
        """Stride detection also trains on hits (stream continuation)."""
        return self._observe(line)
