"""The CMP simulator: globally time-ordered multi-core execution.

Cores are advanced one memory operation at a time through a min-heap
keyed on each core's next issue time, so requests reach the shared L2
slices and DRAM banks in (approximately) chronological order and
contention is modeled faithfully.  The result bundles per-core traces,
per-layer traces and the aggregate statistics consumed by the C2-Bound
validation experiments (Figs. 12-13).
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass

import numpy as np

from repro.camat.analyzer import TraceAnalyzer, TraceStatistics
from repro.camat.trace import AccessTrace
from repro.errors import SimulationError
from repro.metrics.apc import APCMeasurement, LayerAPC
from repro.obs import get_registry, get_tracer
from repro.sim.config import SimulatedChip
from repro.sim.core import CoreModel, CoreResult
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.kernel import (KernelStats, kernel_eligible, kernel_enabled,
                              run_epoch_kernel)

__all__ = ["CMPSimulator", "SimulationResult", "simulate_chip_cost"]


def simulate_chip_cost(chip: SimulatedChip, workload, seed: int) -> float:
    """Cycles per instruction of ``workload`` on ``chip`` — one design point.

    A module-level entry (not a method or closure) so a process pool can
    pickle the ``(chip, workload, seed)`` triple and fan design points
    across workers: this is the unit of work
    :class:`repro.dse.batch.ParallelEvaluator` dispatches.  Streams are
    drawn from a generator seeded per call, so the cost of a
    configuration is a pure function of its arguments — identical in
    every process.
    """
    rng = np.random.default_rng(seed)
    result = CMPSimulator(chip).run(workload.streams(chip.n_cores, rng))
    instructions = result.total_instructions
    if instructions == 0:
        return float("inf")
    return result.exec_cycles / instructions


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one CMP simulation.

    Attributes
    ----------
    chip:
        The simulated configuration.
    cores:
        Per-core results (length ``n_cores``).
    exec_cycles:
        Chip-level execution time: the slowest core's finish cycle.
    l2_trace, dram_trace:
        Cycle-level traces of the shared layers (``None`` if unused).
    """

    chip: SimulatedChip
    cores: tuple[CoreResult, ...]
    exec_cycles: int
    l2_trace: "AccessTrace | None"
    dram_trace: "AccessTrace | None"
    l1_writebacks: int = 0
    invalidations: int = 0
    upgrades: int = 0
    dram_writes: int = 0

    @property
    def total_instructions(self) -> int:
        """Instructions summed over cores."""
        return sum(c.instructions for c in self.cores)

    @property
    def ipc(self) -> float:
        """Chip-level instructions per cycle."""
        if self.exec_cycles == 0:
            return 0.0
        return self.total_instructions / self.exec_cycles

    def core_trace(self, core_id: int) -> AccessTrace:
        """L1-level access trace of one core."""
        return self.cores[core_id].trace()

    def summary(self):
        """One-glance result table (chip stats + per-core highlights)."""
        from repro.io.results import ResultTable
        table = ResultTable(["metric", "value"],
                            title="Simulation summary")
        table.add_row("cores", self.chip.n_cores)
        table.add_row("instructions", self.total_instructions)
        table.add_row("cycles", self.exec_cycles)
        table.add_row("IPC", self.ipc)
        mem_ops = sum(c.mem_ops for c in self.cores)
        table.add_row("memory ops", mem_ops)
        if mem_ops:
            misses = sum(c.l1_misses for c in self.cores)
            table.add_row("L1 miss rate", misses / mem_ops)
        table.add_row("L1 writebacks", self.l1_writebacks)
        table.add_row("coherence invalidations", self.invalidations)
        table.add_row("coherence upgrades", self.upgrades)
        table.add_row("DRAM writes", self.dram_writes)
        return table

    def core_stats(self, core_id: int) -> TraceStatistics:
        """Full C-AMAT statistics of one core's trace (memoized)."""
        cache = self.__dict__.get("_stats_cache")
        if cache is None:
            cache = {}
            # Frozen dataclass: stash the memo dict past __setattr__.
            object.__setattr__(self, "_stats_cache", cache)
        stats = cache.get(core_id)
        if stats is None:
            stats = TraceAnalyzer().analyze(self.core_trace(core_id))
            cache[core_id] = stats
        return stats

    def layer_apc(self) -> LayerAPC:
        """APC for L1 / LLC / DRAM (the paper's Fig. 13 measurement).

        L1 counts all processor accesses across cores; active cycles are
        measured per core and summed (each core's L1 is a separate
        device, matching the per-layer APC definition).  The per-core
        analyzer pass is shared with :meth:`core_stats` — each trace is
        analyzed at most once per result, and the final measurement is
        memoized.
        """
        cached = self.__dict__.get("_layer_apc_cache")
        if cached is not None:
            return cached
        analyzer = TraceAnalyzer()
        # Same collector pause as CMPSimulator.run: the analyzer sweep
        # allocates only arrays that stay live until the measurement is
        # assembled, so mid-analysis passes free nothing.
        enabled = gc.isenabled()
        if enabled:
            gc.disable()
        try:
            l1_acc = 0
            l1_active = 0
            for core_id in range(len(self.cores)):
                stats = self.core_stats(core_id)
                l1_acc += stats.accesses
                l1_active += stats.memory_active_wall_cycles
            def layer(trace: "AccessTrace | None") -> APCMeasurement:
                if trace is None:
                    return APCMeasurement(accesses=0, active_cycles=0)
                stats = analyzer.analyze(trace)
                return APCMeasurement(
                    accesses=stats.accesses,
                    active_cycles=stats.memory_active_wall_cycles)
            result = LayerAPC(
                l1=APCMeasurement(accesses=l1_acc, active_cycles=l1_active),
                llc=layer(self.l2_trace),
                dram=layer(self.dram_trace),
            )
        finally:
            if enabled:
                gc.enable()
        object.__setattr__(self, "_layer_apc_cache", result)
        return result


class CMPSimulator:
    """Run per-core instruction streams through a shared hierarchy.

    Parameters
    ----------
    chip:
        The configuration to simulate.
    coherent:
        Whether the per-core L1s join the MSI-lite directory.
    use_kernel:
        Force the batched epoch kernel (:mod:`repro.sim.kernel`) on or
        off; ``None`` (default) follows the ambient
        :func:`repro.sim.kernel.kernel_enabled` toggle.  Results are
        bit-identical either way (pinned by the golden differential
        tests); the flag therefore never enters ``SimCacheStore``
        fingerprints.  Ineligible configurations (SMT, prefetch) run
        the scalar loop regardless and count a
        ``sim.kernel.bypass_runs``.
    """

    def __init__(self, chip: SimulatedChip, *, coherent: bool = True,
                 use_kernel: "bool | None" = None) -> None:
        self.chip = chip
        self.coherent = coherent
        self.use_kernel = use_kernel
        # Flat per-layer counters of the most recent run() — the same
        # dict the metrics publication uses, minus the kernel.* keys
        # (so it digests identically with the kernel on or off).
        self.last_layer_stats: dict = {}

    def run(self, streams: "list[tuple]") -> SimulationResult:
        """Simulate the chip on per-core streams.

        Each stream is ``(addresses, gaps)`` or
        ``(addresses, gaps, writes)`` with a boolean write mask.  With
        single-threaded cores the list supplies one stream per core;
        with SMT (``chip.core.smt_threads > 1``) it supplies
        ``n_cores * smt_threads`` streams, grouped consecutively per
        core.  With ``coherent=True`` (default) the per-core L1s
        participate in the MSI-lite directory at the shared L2 (the
        paper's "coherent ... L2 cache" variant).

        The collector is paused for the whole run (and restored on
        return, even on error): a simulation allocates hundreds of
        thousands of small record tuples that all stay reachable until
        the result is built, so generational passes mid-run are pure
        overhead — they scan the entire live heap and free nothing.
        """
        enabled = gc.isenabled()
        if enabled:
            gc.disable()
        try:
            return self._run(streams)
        finally:
            if enabled:
                gc.enable()

    def _run(self, streams: "list[tuple]") -> SimulationResult:
        smt = self.chip.core.smt_threads
        expected = self.chip.n_cores * smt
        if len(streams) != expected:
            raise SimulationError(
                f"need {expected} streams "
                f"({self.chip.n_cores} cores x {smt} threads), "
                f"got {len(streams)}")
        hierarchy = MemoryHierarchy(self.chip)
        if smt == 1:
            cores = [
                CoreModel(i, self.chip.core, self.chip.l1, *stream)
                for i, stream in enumerate(streams)
            ]
        else:
            from repro.sim.smt import SMTCoreModel
            cores = [
                SMTCoreModel(i, self.chip.core, self.chip.l1,
                             streams[i * smt:(i + 1) * smt])
                for i in range(self.chip.n_cores)
            ]
        if self.coherent:
            hierarchy.register_l1s([core.l1 for core in cores])
        requested = (self.use_kernel if self.use_kernel is not None
                     else kernel_enabled())
        kernel_stats: "KernelStats | None" = None
        bypassed = False
        with get_tracer().span("sim.run", cores=self.chip.n_cores,
                               smt=smt, coherent=self.coherent):
            if requested and kernel_eligible(self.chip):
                kernel_stats = run_epoch_kernel(cores, hierarchy)
            else:
                bypassed = requested
                heap: list[tuple[int, int]] = []
                for core in cores:
                    if not core.done:
                        heapq.heappush(
                            heap, (core.peek_issue_time(), core.core_id))
                heappush = heapq.heappush
                heappop = heapq.heappop
                while heap:
                    _, cid = heappop(heap)
                    nxt = cores[cid].advance(hierarchy)
                    if nxt is not None:
                        heappush(heap, (nxt, cid))
        results = tuple(core.result() for core in cores)
        exec_cycles = max((r.finish_cycle for r in results), default=0)
        self.last_layer_stats = self._publish_metrics(
            cores, results, hierarchy, exec_cycles, kernel_stats, bypassed)
        return SimulationResult(
            chip=self.chip,
            cores=results,
            exec_cycles=exec_cycles,
            l2_trace=hierarchy.l2_trace(),
            dram_trace=hierarchy.dram_trace(),
            l1_writebacks=sum(core.l1.writebacks for core in cores),
            invalidations=hierarchy.invalidations,
            upgrades=hierarchy.upgrades,
            dram_writes=hierarchy.dram_writes,
        )

    @staticmethod
    def _publish_metrics(cores, results, hierarchy, exec_cycles,
                         kernel_stats: "KernelStats | None",
                         bypassed: bool) -> dict:
        """Publish this run's per-layer counters under the ``sim.``
        namespace (cumulative over a process; one batch per run, so the
        cost is independent of the instruction count).  Returns the
        layer-counter dict *without* the ``kernel.*`` keys — the
        kernel-invariant view the golden digests pin."""
        registry = get_registry()
        stats: dict[str, float] = {
            "runs": 1,
            "instructions": sum(r.instructions for r in results),
            "mem_ops": sum(r.mem_ops for r in results),
            "cycles": exec_cycles,
            "l1.hits": sum(r.l1_hits for r in results),
            "l1.misses": sum(r.l1_misses for r in results),
            "l1.writebacks": sum(core.l1.writebacks for core in cores),
            "prefetches.issued": sum(r.prefetches_issued for r in results),
            "prefetches.useful": sum(r.prefetches_useful for r in results),
        }
        for core in cores:
            for name, value in core.mshr.stats().items():
                key = f"l1.mshr_{name}"
                stats[key] = stats.get(key, 0) + value
        stats.update(hierarchy.stats())
        layer_stats = dict(stats)
        if kernel_stats is not None:
            stats.update(kernel_stats.as_dict())
        if bypassed:
            stats["kernel.bypass_runs"] = 1
        for name, value in stats.items():
            if value:
                registry.counter(f"sim.{name}").inc(value)
        return layer_stats
