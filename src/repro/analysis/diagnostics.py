"""Diagnostics: severities, findings and suppression bookkeeping.

A :class:`Diagnostic` is one finding — rule code, severity, location and
message — ordered by location so reports are stable across rule
execution order.  Suppressions are carried by the source files (parsed
from ``# c2lint:`` comments, see :mod:`repro.analysis.source`); the
engine consults them when it collects findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.IntEnum):
    """Finding severity; ordered so thresholds compare naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """``"error"`` → :attr:`ERROR` (case-insensitive)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}") from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes
    ----------
    path:
        File the finding is anchored to (repo-relative when possible).
    line, col:
        1-based line and 0-based column of the offending node (line 0
        for whole-file findings such as a missing ``__all__``).
    code:
        Rule code (``C2L001`` ...).
    severity:
        One of :class:`Severity`.
    message:
        Human-readable description, actionable in place.
    """

    path: str
    line: int
    col: int
    code: str = field(compare=False)
    severity: Severity = field(compare=False)
    message: str = field(compare=False)

    def render(self) -> str:
        """``path:line:col: severity C2Lxxx message`` (one line)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity} {self.code} {self.message}")

    def to_dict(self) -> "dict[str, object]":
        """JSON-ready mapping (used by the ``--format json`` reporter)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "severity": str(self.severity),
                "message": self.message}
