"""Source model for the lint pass: parsed files and the project view.

:class:`SourceFile` bundles everything a rule may need about one file —
its AST, its text, its dotted module parts, and the ``# c2lint:``
suppression comments found in it.  :class:`Project` is the whole-tree
view that cross-file rules (cache-key completeness, metric-catalog
consistency) operate on, including the location of the observability
catalog document.

Suppression syntax (documented in ``docs/STATIC_ANALYSIS.md``)::

    x = time.time()          # c2lint: disable=C2L001
    value = risky()          # c2lint: disable=C2L001,C2L101
    anything = whatever()    # c2lint: disable=all
    # c2lint: disable-file=C2L103     (anywhere in the file)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import AnalysisError

__all__ = ["SourceFile", "Project", "load_project", "collect_paths"]

_SUPPRESS_RE = re.compile(
    r"#\s*c2lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)")

#: Directory names never descended into when expanding lint targets.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist", ".eggs"}


def _parse_suppressions(
        text: str) -> "tuple[dict[int, set[str]], set[str]]":
    """``(line -> codes, file-wide codes)`` from ``# c2lint:`` comments."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        codes = {c.strip().upper() for c in match.group(2).split(",")
                 if c.strip()}
        codes = {"ALL" if c == "ALL" else c for c in codes}
        if match.group(1) == "disable-file":
            file_wide |= codes
        else:
            per_line.setdefault(tok.start[0], set()).update(codes)
    return per_line, file_wide


class SourceFile:
    """One parsed Python file.

    Attributes
    ----------
    path:
        Absolute location on disk.
    rel:
        Path relative to the project root (used in diagnostics).
    module_parts:
        Dotted-module components, e.g. ``("repro", "sim", "config")`` —
        derived from the path with any leading ``src`` stripped; rules
        use these for scope decisions (``"sim" in module_parts``).
    tree:
        The parsed :class:`ast.Module`, or ``None`` when the file does
        not parse (the engine reports ``C2L000`` for it).
    read_error:
        The :class:`OSError` raised reading the file, or ``None``.  An
        unreadable file (permissions, vanished mid-run) keeps its slot
        in the project — the engine reports ``C2L000`` naming the OS
        error class instead of pretending the file is empty.
    """

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        try:
            self.rel = str(path.relative_to(root))
        except ValueError:
            self.rel = str(path)
        self.module_parts = self._derive_module(path, root)
        self.read_error: "OSError | None" = None
        try:
            self.text = path.read_text(encoding="utf-8")
        except OSError as exc:
            self.read_error = exc
            self.text = ""
        self.lines: Sequence[str] = self.text.splitlines()
        self.syntax_error: "SyntaxError | None" = None
        self.tree: "ast.Module | None" = None
        if self.read_error is None:
            try:
                self.tree = ast.parse(self.text, filename=str(path))
            except SyntaxError as exc:
                self.syntax_error = exc
        self.line_suppressions, self.file_suppressions = (
            _parse_suppressions(self.text))

    @staticmethod
    def _derive_module(path: Path, root: Path) -> "tuple[str, ...]":
        try:
            parts = list(path.relative_to(root).parts)
        except ValueError:
            parts = list(path.parts)
        while "src" in parts:
            parts = parts[parts.index("src") + 1:]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return tuple(parts)

    @property
    def module(self) -> str:
        """Dotted module name (may be empty for a bare ``__init__``)."""
        return ".".join(self.module_parts)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` is disabled on ``line`` or file-wide."""
        wide = self.file_suppressions
        if "ALL" in wide or code in wide:
            return True
        here = self.line_suppressions.get(line, ())
        return "ALL" in here or code in here


class Project:
    """The whole analyzed tree, as cross-file rules see it."""

    def __init__(self, root: Path, files: "list[SourceFile]",
                 catalog_path: "Path | None" = None) -> None:
        self.root = root
        self.files = files
        self.catalog_path = catalog_path

    def file_ending_with(self, *suffixes: str) -> "SourceFile | None":
        """First file whose posix path ends with one of ``suffixes``."""
        for source in self.files:
            posix = source.path.as_posix()
            if any(posix.endswith(suffix) for suffix in suffixes):
                return source
        return None


def collect_paths(paths: Iterable[Path]) -> "list[Path]":
    """Expand files/directories into a sorted, deduplicated file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise AnalysisError(f"lint target does not exist: {path}")
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts)))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(resolved)
    return out


def _find_root(paths: "list[Path]") -> Path:
    """Nearest ancestor that looks like the repository root.

    Walks up from the first target looking for ``pyproject.toml`` or
    ``.git``; falls back to the target's own directory.
    """
    start = paths[0] if paths else Path.cwd()
    start = start if start.is_dir() else start.parent
    for ancestor in [start, *start.parents]:
        if ((ancestor / "pyproject.toml").exists()
                or (ancestor / ".git").exists()):
            return ancestor
    return start


def load_project(targets: Iterable[Path], *, root: "Path | None" = None,
                 catalog: "Path | None" = None) -> Project:
    """Build the :class:`Project` for a lint run.

    ``catalog`` defaults to ``<root>/docs/OBSERVABILITY.md`` when that
    file exists (rules that need it skip cleanly when it does not).
    """
    files = collect_paths(Path(t) for t in targets)
    root = Path(root).resolve() if root is not None else _find_root(files)
    if catalog is None:
        default = root / "docs" / "OBSERVABILITY.md"
        catalog = default if default.exists() else None
    else:
        catalog = Path(catalog)
        if not catalog.exists():
            raise AnalysisError(f"metric catalog does not exist: {catalog}")
    return Project(root, [SourceFile(path, root) for path in files],
                   catalog_path=catalog)
