"""Static analysis (``c2bound lint``): machine-checked invariants.

PR 2 (parallel batch DSE) and PR 3 (the content-addressed simulation
cache) made correctness rest on invariants no unit test fully covers:
hot paths must stay deterministic or golden digests and warm cache hits
lie, every config field must reach the cache key, metric names must
match their documented catalog, and pool-crossing callables must stay
picklable.  This package checks those invariants statically on every
commit:

- :mod:`repro.analysis.engine` — the driver (rules over a project view,
  ``# c2lint: disable=...`` suppressions honored);
- :mod:`repro.analysis.rules` — the pluggable rule set (``C2L001`` ...;
  catalog with rationale in ``docs/STATIC_ANALYSIS.md``);
- :mod:`repro.analysis.reporters` — text and JSON (``c2bound.lint/1``)
  output;
- :mod:`repro.analysis.cli` — the ``c2bound lint`` /
  ``python -m repro.analysis`` front end.
"""

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import LintEngine, LintResult, lint_paths
from repro.analysis.reporters import (
    REPORT_SCHEMA,
    render_json,
    render_text,
)
from repro.analysis.rules import DEFAULT_RULES, Rule, make_rules, rule_catalog
from repro.analysis.source import Project, SourceFile, load_project

__all__ = [
    "Diagnostic",
    "Severity",
    "LintEngine",
    "LintResult",
    "lint_paths",
    "REPORT_SCHEMA",
    "render_json",
    "render_text",
    "DEFAULT_RULES",
    "Rule",
    "make_rules",
    "rule_catalog",
    "Project",
    "SourceFile",
    "load_project",
]
