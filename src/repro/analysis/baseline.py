"""Finding baselines: land new rules without a mega-fix commit.

``c2bound lint --write-baseline findings.json`` records the current
findings; a later ``c2bound lint --baseline findings.json`` subtracts
them, so the run fails only on *new* findings.  Matching is a multiset
keyed by ``(path, code, message)`` — deliberately line-insensitive, so
unrelated edits that shift a known finding up or down a file do not
resurrect it, while a second instance of the same finding in the same
file is still new.

Schema (``c2bound.lint-baseline/1``)::

    {"schema": "c2bound.lint-baseline/1",
     "findings": [{"path": ..., "code": ..., "message": ..., "count": N}]}
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.engine import LintResult
from repro.errors import AnalysisError

__all__ = ["BASELINE_SCHEMA", "write_baseline", "load_baseline",
           "apply_baseline"]

BASELINE_SCHEMA = "c2bound.lint-baseline/1"


def _key_of(path: str, code: str, message: str) -> "tuple[str, str, str]":
    return (path, code, message)


def write_baseline(result: LintResult, path: Path) -> int:
    """Record ``result``'s findings at ``path``; returns the count."""
    counts: "Counter[tuple[str, str, str]]" = Counter(
        _key_of(d.path, d.code, d.message) for d in result.diagnostics)
    findings = [
        {"path": p, "code": c, "message": m, "count": n}
        for (p, c, m), n in sorted(counts.items())
    ]
    doc = {"schema": BASELINE_SCHEMA, "findings": findings}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return sum(counts.values())


def load_baseline(path: Path) -> "Counter[tuple[str, str, str]]":
    """Parse a baseline file into its finding multiset."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise AnalysisError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise AnalysisError(
            f"baseline {path} has unexpected schema "
            f"{doc.get('schema') if isinstance(doc, dict) else doc!r}; "
            f"expected {BASELINE_SCHEMA}")
    counts: "Counter[tuple[str, str, str]]" = Counter()
    for finding in doc.get("findings", []):
        key = _key_of(str(finding["path"]), str(finding["code"]),
                      str(finding["message"]))
        counts[key] += int(finding.get("count", 1))
    return counts


def apply_baseline(result: LintResult,
                   baseline: "Counter[tuple[str, str, str]]",
                   ) -> "tuple[LintResult, int]":
    """Subtract baselined findings; returns (filtered result, matched).

    Each baseline entry absorbs at most ``count`` matching findings;
    extra occurrences — and anything not in the baseline — stay.
    """
    remaining = Counter(baseline)
    kept = []
    matched = 0
    for diag in result.diagnostics:
        key = _key_of(diag.path, diag.code, diag.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            kept.append(diag)
    filtered = LintResult(diagnostics=kept, suppressed=result.suppressed,
                          files_checked=result.files_checked)
    return filtered, matched
