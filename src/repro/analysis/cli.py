"""Command-line front end: ``c2bound lint`` / ``python -m repro.analysis``.

Exit codes: ``0`` clean (below the ``--fail-on`` threshold), ``1``
findings at or above the threshold, ``2`` usage errors (unknown rule,
missing target, bad catalog path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.diagnostics import Severity
from repro.analysis.engine import lint_paths
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import rule_catalog
from repro.errors import AnalysisError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="c2bound lint",
        description="Repo-aware static analysis: determinism, cache-key "
                    "completeness, metric-catalog consistency, "
                    "picklability, trace invariants and hygiene "
                    "(rule catalog in docs/STATIC_ANALYSIS.md).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        metavar="PATH",
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--catalog", type=Path, default=None,
                        metavar="FILE",
                        help="metric catalog for C2L003 (default: "
                             "<root>/docs/OBSERVABILITY.md when present)")
    parser.add_argument("--root", type=Path, default=None, metavar="DIR",
                        help="project root for relative paths and the "
                             "catalog default (default: auto-detected)")
    parser.add_argument("--fail-on", default="warning",
                        choices=("error", "warning", "info", "never"),
                        help="lowest severity that fails the run "
                             "(default: warning)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for code, cls in sorted(rule_catalog().items()):
        lines.append(f"{code}  {cls.name:22s} [{cls.severity}] "
                     f"{cls.description}")
    return "\n".join(lines)


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(
        list(argv) if argv is not None else None)
    if args.list_rules:
        print(_list_rules())
        return 0
    rules = ([c for c in args.rules.split(",") if c.strip()]
             if args.rules else None)
    try:
        result = lint_paths(args.paths, rules=rules, root=args.root,
                            catalog=args.catalog)
    except AnalysisError as exc:
        print(f"c2bound lint: error: {exc}", file=sys.stderr)
        return 2
    report = (render_json(result) if args.format == "json"
              else render_text(result) + "\n")
    sys.stdout.write(report)
    if args.fail_on == "never":
        return 0
    return result.exit_code(Severity.parse(args.fail_on))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
