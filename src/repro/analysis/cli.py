"""Command-line front end: ``c2bound lint`` / ``python -m repro.analysis``.

Exit codes: ``0`` clean (below the ``--fail-on`` threshold), ``1``
findings at or above the threshold, ``2`` usage errors (unknown rule,
missing target, bad catalog path, bad baseline).

Interprocedural analysis (the C2L2xx rules) is ON by default;
``--no-flow`` is the per-file fast path for editor/pre-commit loops.
``--baseline FILE`` subtracts previously recorded findings so only new
ones fail the run; ``--write-baseline FILE`` records the current state.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     write_baseline)
from repro.analysis.diagnostics import Severity
from repro.analysis.engine import lint_paths
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import rule_catalog
from repro.errors import AnalysisError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="c2bound lint",
        description="Repo-aware static analysis: determinism, cache-key "
                    "completeness, metric-catalog consistency, "
                    "picklability, trace invariants and hygiene "
                    "(rule catalog in docs/STATIC_ANALYSIS.md).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        metavar="PATH",
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", "--reporter", dest="format",
                        choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--flow", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="run the interprocedural C2L2xx rules "
                             "(default: on; --no-flow is the per-file "
                             "fast path)")
    parser.add_argument("--baseline", type=Path, default=None,
                        metavar="FILE",
                        help="subtract findings recorded in FILE; only "
                             "new findings are reported and fail the run")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="FILE",
                        help="record the current findings to FILE and "
                             "exit 0")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--catalog", type=Path, default=None,
                        metavar="FILE",
                        help="metric catalog for C2L003 (default: "
                             "<root>/docs/OBSERVABILITY.md when present)")
    parser.add_argument("--root", type=Path, default=None, metavar="DIR",
                        help="project root for relative paths and the "
                             "catalog default (default: auto-detected)")
    parser.add_argument("--fail-on", default="warning",
                        choices=("error", "warning", "info", "never"),
                        help="lowest severity that fails the run "
                             "(default: warning)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for code, cls in sorted(rule_catalog().items()):
        lines.append(f"{code}  {cls.name:22s} [{cls.severity}] "
                     f"{cls.description}")
    return "\n".join(lines)


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(
        list(argv) if argv is not None else None)
    if args.list_rules:
        print(_list_rules())
        return 0
    rules = ([c for c in args.rules.split(",") if c.strip()]
             if args.rules else None)
    try:
        result = lint_paths(args.paths, rules=rules, root=args.root,
                            catalog=args.catalog, flow=args.flow)
        if args.write_baseline is not None:
            count = write_baseline(result, args.write_baseline)
            print(f"c2bound lint: baseline with {count} finding(s) "
                  f"written to {args.write_baseline}")
            return 0
        if args.baseline is not None:
            result, matched = apply_baseline(
                result, load_baseline(args.baseline))
            if matched:
                print(f"c2bound lint: {matched} baselined finding(s) "
                      f"suppressed via {args.baseline}",
                      file=sys.stderr)
    except AnalysisError as exc:
        print(f"c2bound lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result) + "\n"
    sys.stdout.write(report)
    if args.fail_on == "never":
        return 0
    return result.exit_code(Severity.parse(args.fail_on))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
