"""Runtime concurrency sanitizer: the dynamic half of the C2L2xx rules.

The static flow pass (:mod:`repro.analysis.flow`) proves what it can
see; this module watches what actually happens.  When
``C2BOUND_SANITIZE=1`` is set, :class:`~repro.sim.cache_store.
SimCacheStore` arms a per-instance check at its disk-write choke point
(``_persist``): a write landing in a shard the store does not own is a
single-writer violation — by construction unreachable through the
public ``put()`` path, so any finding is a real bug (state smuggled
into the write-behind buffer, a scoping bug in the fabric, a future
refactor breaking ownership).  The fabric stamps each scoped slot store
with ``sanitize_slot`` so findings name the offending worker slot.

Findings are JSONL records (schema ``c2bound.sanitize/1``), appended to
``$C2BOUND_SANITIZE_LOG`` when set, and always counted on the
``analysis.sanitize.findings`` metric — so the chaos/fabric equivalence
suites double as a race detector by asserting the log stays empty.

Disabled (the default), the cost is one cached boolean test on a path
that is about to do file I/O anyway — unmeasurable, which
``tests/analysis/test_sanitizer_overhead.py`` guards.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Iterable, Protocol

from repro.obs import get_registry

__all__ = ["SANITIZE_SCHEMA", "ENV_FLAG", "ENV_LOG", "sanitize_enabled",
           "sanitize_log_path", "record_finding", "check_shard_write",
           "load_findings"]

SANITIZE_SCHEMA = "c2bound.sanitize/1"
ENV_FLAG = "C2BOUND_SANITIZE"
ENV_LOG = "C2BOUND_SANITIZE_LOG"

#: serializes appends from threads sharing one process (pool workers
#: are separate processes and rely on O_APPEND line atomicity instead)
_LOG_LOCK = threading.Lock()


class _ShardedStore(Protocol):
    """What :func:`check_shard_write` needs from a store."""

    owned_shards: "frozenset[int] | None"

    @property
    def root(self) -> Any: ...


def sanitize_enabled() -> bool:
    """Whether the sanitizer is armed (``C2BOUND_SANITIZE`` truthy)."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def sanitize_log_path() -> "str | None":
    """Findings log destination (``C2BOUND_SANITIZE_LOG``), if any."""
    return os.environ.get(ENV_LOG) or None


def record_finding(kind: str, **fields: Any) -> "dict[str, Any]":
    """Emit one sanitizer finding; returns the record.

    The record always reaches the ``analysis.sanitize.findings``
    counter; it additionally lands in the JSONL log when
    ``C2BOUND_SANITIZE_LOG`` points somewhere.  Recording never raises:
    a sanitizer must not turn an observation into a crash.
    """
    record: "dict[str, Any]" = {"schema": SANITIZE_SCHEMA, "kind": kind,
                                "pid": os.getpid()}
    record.update(fields)
    get_registry().counter("analysis.sanitize.findings").inc()
    path = sanitize_log_path()
    if path is not None:
        line = json.dumps(record, sort_keys=True)
        try:
            with _LOG_LOCK:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        except OSError:
            pass
    return record


def check_shard_write(store: "_ShardedStore", key: str,
                      shard: int) -> "dict[str, Any] | None":
    """Ownership assertion at the disk-write choke point.

    Returns the finding for a foreign-shard write, ``None`` when the
    write is legal (unrestricted store, or shard owned).
    """
    owned = store.owned_shards
    if owned is None or shard in owned:
        return None
    return record_finding(
        "foreign-shard-write",
        shard=shard,
        key=key,
        owned_shards=sorted(owned),
        slot=getattr(store, "sanitize_slot", None),
        store_root=str(store.root),
    )


def load_findings(path: "str | os.PathLike[str]",
                  ) -> "list[dict[str, Any]]":
    """Parse a findings log; missing file reads as no findings."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines: "Iterable[str]" = handle.readlines()
    except OSError:
        return []
    out: "list[dict[str, Any]]" = []
    for line in lines:
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
