"""``python -m repro.analysis`` — alias of ``c2bound lint``."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
