"""Module-aware call-graph construction for the flow analysis.

The graph is built in two passes over an already-parsed
:class:`~repro.analysis.source.Project`:

1. **Index** — every module-level function and every method of a
   top-level class becomes a :class:`FunctionInfo` keyed by its dotted
   qualified name (``repro.sim.core.CoreModel.advance``).  Alongside,
   each module's import aliases (including *relative* imports, which
   :func:`~repro.analysis.rules.base.walk_imports` skips), its top-level
   global assignments, and — for package ``__init__`` files — its
   re-export map are recorded.
2. **Types** — per class, instance-attribute types are inferred from
   ``self.x = ClassName(...)`` assignments anywhere in the class body
   (conditional expressions contribute both arms; conflicting
   assignments degrade to *unknown*).  Base classes are resolved so
   method lookup can walk the inheritance chain.

Resolution is deliberately *under*-approximate: a call the resolver
cannot attribute to a project function produces no edge (and is listed
in the summary's ``unresolved`` set), so flow rules never reason from a
guessed edge.  Decorated functions keep their def-site identity — the
analysis assumes decorators wrap rather than replace.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.rules.base import dotted_name
from repro.analysis.source import Project, SourceFile

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "CallGraph"]


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qual: str
    name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    source: SourceFile
    module: str
    class_qual: "str | None" = None

    @property
    def is_method(self) -> bool:
        return self.class_qual is not None


@dataclass
class ClassInfo:
    """One top-level class: methods, bases and inferred attribute types."""

    qual: str
    name: str
    node: ast.ClassDef
    source: SourceFile
    module: str
    #: method name -> function qual
    methods: "dict[str, str]" = field(default_factory=dict)
    #: raw base expressions as written (dotted names)
    base_names: "list[str]" = field(default_factory=list)
    #: resolved base class quals (project classes only)
    bases: "list[str]" = field(default_factory=list)
    #: instance attribute -> class qual (from ``self.x = Cls(...)``)
    attr_types: "dict[str, str]" = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module context the resolver consults."""

    name: str
    source: SourceFile
    #: local alias -> canonical dotted origin (absolute, relative-aware)
    imports: "dict[str, str]" = field(default_factory=dict)
    #: top-level global name -> "assigned value is a mutable literal"
    globals: "dict[str, bool]" = field(default_factory=dict)
    #: names of module-level defs (functions and classes)
    defs: "set[str]" = field(default_factory=set)


_MUTABLE_CTORS = {"list", "dict", "set", "collections.OrderedDict",
                  "collections.defaultdict", "collections.deque"}


def _is_mutable_literal(node: ast.AST, imports: "dict[str, str]") -> bool:
    """Whether a top-level assigned value is observably mutable."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        return imports.get(name, name) in _MUTABLE_CTORS
    return False


def _relative_base(source: SourceFile, level: int) -> "tuple[str, ...]":
    """Package parts a ``from . import x`` style import resolves against."""
    parts = source.module_parts
    if source.path.name != "__init__.py":
        parts = parts[:-1]
    drop = level - 1
    return parts[:len(parts) - drop] if drop else parts


def module_imports(source: SourceFile) -> "dict[str, str]":
    """Alias -> canonical dotted origin, absolute *and* relative aware.

    ``from ..sim import cache_store as cs`` inside ``repro/dse/fabric.py``
    maps ``cs`` to ``repro.sim.cache_store``.
    """
    aliases: "dict[str, str]" = {}
    tree = source.tree
    if tree is None:
        return aliases
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname:
                    aliases[item.asname] = item.name
                else:
                    head = item.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = ".".join(_relative_base(source, node.level))
                mod = f"{base}.{node.module}" if node.module else base
            elif node.module:
                mod = node.module
            else:  # pragma: no cover - `from  import x` cannot parse
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{mod}.{item.name}"
    return aliases


class CallGraph:
    """The project-wide function/class index plus name resolution.

    Edges themselves are attached by the summary scan
    (:func:`repro.analysis.flow.summaries.scan_function`); this class
    owns the *index* (who exists) and *resolution* (what a dotted name
    or a typed method call refers to).
    """

    def __init__(self) -> None:
        self.functions: "dict[str, FunctionInfo]" = {}
        self.classes: "dict[str, ClassInfo]" = {}
        self.modules: "dict[str, ModuleInfo]" = {}
        #: re-exported dotted name -> origin dotted name (one hop)
        self.exports: "dict[str, str]" = {}

    # ---- construction -----------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        for source in project.files:
            if source.tree is not None:
                graph._index_module(source)
        for info in graph.classes.values():
            graph._resolve_bases(info)
        for info in graph.classes.values():
            graph._infer_attr_types(info)
        return graph

    def _index_module(self, source: SourceFile) -> None:
        tree = source.tree
        assert tree is not None
        mod = ModuleInfo(name=source.module, source=source,
                         imports=module_imports(source))
        is_pkg_init = source.path.name == "__init__.py"
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod.name}.{node.name}" if mod.name else node.name
                self.functions[qual] = FunctionInfo(
                    qual=qual, name=node.name, node=node, source=source,
                    module=mod.name)
                mod.defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                cqual = f"{mod.name}.{node.name}" if mod.name else node.name
                cinfo = ClassInfo(qual=cqual, name=node.name, node=node,
                                  source=source, module=mod.name)
                cinfo.base_names = [n for n in map(dotted_name, node.bases)
                                    if n is not None]
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        fqual = f"{cqual}.{sub.name}"
                        self.functions[fqual] = FunctionInfo(
                            qual=fqual, name=sub.name, node=sub,
                            source=source, module=mod.name,
                            class_qual=cqual)
                        cinfo.methods[sub.name] = fqual
                self.classes[cqual] = cinfo
                mod.defs.add(node.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutable = (value is not None and
                                   _is_mutable_literal(value, mod.imports))
                        mod.globals.setdefault(target.id, False)
                        if mutable:
                            mod.globals[target.id] = True
                        mod.defs.add(target.id)
        if is_pkg_init and mod.name:
            for alias, origin in mod.imports.items():
                self.exports[f"{mod.name}.{alias}"] = origin
        self.modules[mod.name] = mod

    def _resolve_bases(self, info: ClassInfo) -> None:
        mod = self.modules[info.module]
        for base in info.base_names:
            target = self.resolve_global(
                self.canonicalize(base, mod), kind="class")
            if target is not None:
                info.bases.append(target)

    def _infer_attr_types(self, info: ClassInfo) -> None:
        mod = self.modules[info.module]
        inferred: "dict[str, set[str | None]]" = {}
        for method_qual in info.methods.values():
            method = self.functions[method_qual]
            env = self._param_env(method.node, mod)
            for sub in ast.walk(method.node):
                target: "ast.expr | None" = None
                value: "ast.expr | None" = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                if (not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self" or value is None):
                    continue
                inferred.setdefault(target.attr, set()).update(
                    self._constructed_classes(value, mod, env))
        for attr, types in inferred.items():
            concrete = {t for t in types if t is not None}
            if len(concrete) == 1 and None not in types:
                info.attr_types[attr] = concrete.pop()

    def _param_env(self, node: "ast.FunctionDef | ast.AsyncFunctionDef",
                   mod: ModuleInfo) -> "dict[str, str]":
        env: "dict[str, str]" = {}
        for param in (list(node.args.posonlyargs) + list(node.args.args)
                      + list(node.args.kwonlyargs)):
            cls = self.annotation_class(param.annotation, mod)
            if cls is not None:
                env[param.arg] = cls
        return env

    def _constructed_classes(self, value: ast.expr, mod: ModuleInfo,
                             env: "dict[str, str]") -> "set[str | None]":
        """Class quals a value expression may construct (None = unknown)."""
        if isinstance(value, ast.IfExp):
            return (self._constructed_classes(value.body, mod, env)
                    | self._constructed_classes(value.orelse, mod, env))
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is not None:
                target = self.resolve_global(
                    self.canonicalize(name, mod), kind="class")
                if target is not None:
                    return {target}
        if isinstance(value, ast.Name) and value.id in env:
            # parameter with a class annotation (`Cls | None` arms of an
            # IfExp agree with the constructor arm)
            return {env[value.id]}
        if isinstance(value, ast.Constant) and value.value is None:
            # `x if cond else None`: the None arm does not conflict.
            return set()
        return {None}

    # ---- resolution -------------------------------------------------------

    def canonicalize(self, name: str, mod: ModuleInfo) -> str:
        """Rewrite a local dotted name through the module's imports."""
        head, _, rest = name.partition(".")
        origin = mod.imports.get(head)
        if origin is None:
            if head in mod.defs and mod.name:
                origin = f"{mod.name}.{head}"
            else:
                return name
        return f"{origin}.{rest}" if rest else origin

    def resolve_export(self, name: str) -> str:
        """Follow package re-exports (``repro.dse.fabric`` chains)."""
        seen = set()
        while name in self.exports and name not in seen:
            seen.add(name)
            name = self.exports[name]
        return name

    def resolve_global(self, dotted: str, *,
                       kind: str = "any") -> "str | None":
        """Project function/class qual for a canonical dotted name."""
        dotted = self.resolve_export(dotted)
        if kind in ("any", "function") and dotted in self.functions:
            return dotted
        if kind in ("any", "class") and dotted in self.classes:
            return dotted
        return None

    def resolve_method(self, class_qual: str,
                       method: str) -> "str | None":
        """Method lookup through the class and its resolved bases."""
        seen: "set[str]" = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def annotation_class(self, ann: "ast.expr | None",
                         mod: ModuleInfo) -> "str | None":
        """Class qual named by a (possibly stringified) annotation.

        Handles ``Cls``, ``"Cls"``, ``Cls | None``, ``Optional[Cls]``
        and quoted variants; anything more exotic resolves to ``None``.
        """
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self.annotation_class(ann.left, mod)
            right = self.annotation_class(ann.right, mod)
            return left or right
        if (isinstance(ann, ast.Subscript)
                and dotted_name(ann.value) in ("Optional",
                                               "typing.Optional")):
            return self.annotation_class(ann.slice, mod)
        if isinstance(ann, ast.Constant) and ann.value is None:
            return None
        name = dotted_name(ann)
        if name is None:
            return None
        return self.resolve_global(self.canonicalize(name, mod),
                                   kind="class")

    def iter_functions(self) -> "Iterator[FunctionInfo]":
        yield from self.functions.values()
