"""Reachability and taint propagation over the call graph.

:class:`FlowAnalysis` glues the pieces together: it builds the
:class:`~repro.analysis.flow.callgraph.CallGraph`, scans every function
into a :class:`~repro.analysis.flow.summaries.FunctionSummary`, and
closes two taints over the resolved edges:

- **boundary** — reachable from a callable submitted to a process pool
  (these functions execute in a worker, so anything they touch must
  survive pickling and must not lean on parent-process state);
- **hot** — reachable from a simulator hot root
  (``CoreModel.advance`` / ``SMTCoreModel.advance`` /
  ``run_epoch_kernel``), matched by qualified-name *suffix* so fixture
  packages can replicate the layout under any root package.

Because edge construction is under-approximate (unresolvable calls add
no edge), both taints are too — rules built on them favor missed
findings over false positives, and the runtime sanitizer
(:mod:`repro.analysis.sanitizer`) exists to cover the dynamic remainder.

The analysis is cached on the :class:`~repro.analysis.source.Project`
instance via :func:`get_flow`, so the four C2L2xx rules pay for one
pass between them.
"""

from __future__ import annotations

import ast
from typing import Callable

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.summaries import (FunctionSummary, SubmitSite,
                                           scan_function)
from repro.analysis.source import Project

__all__ = ["HOT_ROOT_SUFFIXES", "FlowAnalysis", "get_flow"]

#: Hot-path entry points, matched by qualified-name suffix.
HOT_ROOT_SUFFIXES = (
    "sim.core.CoreModel.advance",
    "sim.smt.SMTCoreModel.advance",
    "sim.kernel.run_epoch_kernel",
)

_FLOW_CACHE_ATTR = "_c2bound_flow_analysis"


class FlowAnalysis:
    """Whole-project call graph, summaries, and taint closures."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = CallGraph.build(project)
        self.summaries: "dict[str, FunctionSummary]" = {
            info.qual: scan_function(info, self.graph)
            for info in self.graph.iter_functions()
        }
        self.edges: "dict[str, set[str]]" = {
            qual: summary.callees
            for qual, summary in self.summaries.items()
        }
        #: (submitting function qual, site) for every pool submission
        self.submit_sites: "list[tuple[str, SubmitSite]]" = [
            (qual, site)
            for qual, summary in self.summaries.items()
            for site in summary.submits
        ]
        #: functions called while building submit payloads (parent side)
        self.builders: "set[str]" = {
            builder
            for _, site in self.submit_sites
            for builder in site.builder_quals
        }
        self.hot_roots: "list[str]" = [
            qual for qual in self.summaries
            if self.is_hot_root(qual)
        ]
        boundary_seeds = [site.callee_qual
                          for _, site in self.submit_sites
                          if site.callee_qual is not None]
        self.boundary_from = self._closure(boundary_seeds)
        self.hot_from = self._closure(self.hot_roots)

    # ---- taints -----------------------------------------------------------

    @staticmethod
    def is_hot_root(qual: str) -> bool:
        return any(qual == suffix or qual.endswith(f".{suffix}")
                   for suffix in HOT_ROOT_SUFFIXES)

    def _closure(self, seeds: "list[str]") -> "dict[str, str]":
        """BFS closure: reached qual -> the seed it is reachable from."""
        origin: "dict[str, str]" = {}
        queue = []
        for seed in seeds:
            if seed in self.summaries and seed not in origin:
                origin[seed] = seed
                queue.append(seed)
        while queue:
            current = queue.pop(0)
            for callee in self.edges.get(current, ()):
                if callee not in origin and callee in self.summaries:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin

    @property
    def boundary(self) -> "set[str]":
        """Functions that (may) execute inside a pool worker."""
        return set(self.boundary_from)

    @property
    def hot(self) -> "set[str]":
        """Functions reachable from a simulator hot root."""
        return set(self.hot_from)

    # ---- queries ----------------------------------------------------------

    def reachable(self, seeds: "list[str]") -> "set[str]":
        return set(self._closure(seeds))

    def first_transitive(
        self, start: str,
        pick: "Callable[[FunctionSummary], list[tuple[str, ast.AST]]]",
    ) -> "tuple[str, str, ast.AST] | None":
        """First (function, description, node) effect reachable from start.

        ``pick`` selects the effect list from a summary — e.g.
        ``lambda s: s.io_calls``.  The walk is breadth-first from
        ``start`` (inclusive), so the nearest offender is reported.
        """
        seen = {start}
        queue = [start]
        while queue:
            current = queue.pop(0)
            summary = self.summaries.get(current)
            if summary is None:
                continue
            effects = pick(summary)
            if effects:
                desc, node = effects[0]
                return current, desc, node
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return None

    def calls_within(self, qual: str,
                     nodes: "set[int]") -> "list[str]":
        """Resolved callees whose call node is one of ``nodes`` (by id)."""
        summary = self.summaries.get(qual)
        if summary is None:
            return []
        return [callee for callee, node in summary.calls
                if id(node) in nodes]


def get_flow(project: Project) -> FlowAnalysis:
    """The (cached) flow analysis for a project."""
    cached = getattr(project, _FLOW_CACHE_ATTR, None)
    if isinstance(cached, FlowAnalysis):
        return cached
    flow = FlowAnalysis(project)
    setattr(project, _FLOW_CACHE_ATTR, flow)
    return flow
