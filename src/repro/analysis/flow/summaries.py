"""Per-function effect summaries.

One scan pass per function produces a :class:`FunctionSummary`: which
module globals it writes, what I/O, tracing spans and locks it touches,
where it submits work to a pool, how it scopes or assigns cache stores,
and — the call-graph edges — which project functions it calls, resolved
through a small local type environment (parameter annotations, ``self``,
and ``x = self.attr`` / ``x = Cls(...)`` local bindings).

Everything carries the originating AST node so rules can point
diagnostics at the exact line, and so branch-local checks (C2L204's
front-tier hit paths) can intersect effect nodes with a branch body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.callgraph import (CallGraph, FunctionInfo,
                                           ModuleInfo)
from repro.analysis.rules.base import dotted_name

__all__ = ["SubmitSite", "FunctionSummary", "scan_function",
           "SUBMIT_METHODS", "POOL_MODULES"]

SUBMIT_METHODS = frozenset({"submit", "map", "apply_async", "starmap"})
POOL_MODULES = ("concurrent.futures", "multiprocessing")

_MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "pop", "clear", "setdefault",
    "remove", "discard", "insert", "popitem", "appendleft", "popleft",
})
_IO_ATTR_METHODS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes", "unlink",
    "mkdir", "rename", "touch", "rmdir",
})
_IO_MODULE_PREFIXES = ("os.", "shutil.", "subprocess.")
_LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
})


@dataclass
class SubmitSite:
    """One ``pool.submit(...)``-style call, pre-digested for the rules."""

    node: ast.Call
    method: str
    #: resolved qual of the submitted callable, when the first argument
    #: is a project function
    callee_qual: "str | None" = None
    #: project functions *called while building* the submit arguments —
    #: they run on the parent side but produce what ships to the worker
    builder_quals: "list[str]" = field(default_factory=list)
    lambda_args: "list[ast.Lambda]" = field(default_factory=list)
    #: (node, rendered name) — args like ``self.evaluate``
    bound_method_args: "list[tuple[ast.expr, str]]" = \
        field(default_factory=list)
    #: (node, global name) — args naming a mutable module global
    mutable_global_args: "list[tuple[ast.expr, str]]" = \
        field(default_factory=list)


@dataclass
class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    qual: str
    #: (global name, node) — writes/mutations of module-level state
    global_writes: "list[tuple[str, ast.AST]]" = field(default_factory=list)
    #: (description, node) — file/OS/stdout side effects
    io_calls: "list[tuple[str, ast.AST]]" = field(default_factory=list)
    #: ``.span(...)`` / ``.record_span(...)`` call nodes
    span_calls: "list[ast.Call]" = field(default_factory=list)
    #: (description, node) — lock construction/acquisition
    lock_uses: "list[tuple[str, ast.AST]]" = field(default_factory=list)
    submits: "list[SubmitSite]" = field(default_factory=list)
    #: ``.scoped(...)`` call nodes on any receiver
    scoped_calls: "list[ast.Call]" = field(default_factory=list)
    #: ``<expr>.cache = <value>`` assignments
    cache_assigns: "list[ast.Assign]" = field(default_factory=list)
    #: (method name, node) for ``.put(...)`` / ``.flush(...)`` attr calls
    store_calls: "list[tuple[str, ast.Call]]" = field(default_factory=list)
    #: resolved call edges: (callee qual, call node)
    calls: "list[tuple[str, ast.Call]]" = field(default_factory=list)
    #: dotted names the resolver could not attribute
    unresolved: "set[str]" = field(default_factory=set)

    @property
    def callees(self) -> "set[str]":
        return {qual for qual, _ in self.calls}


def _scoped_has_owned_shards(call: ast.Call) -> bool:
    return any(kw.arg == "owned_shards" for kw in call.keywords)


class _FunctionScanner(ast.NodeVisitor):
    """One walk over a function body, filling a :class:`FunctionSummary`."""

    def __init__(self, info: FunctionInfo, graph: CallGraph) -> None:
        self.info = info
        self.graph = graph
        self.mod: ModuleInfo = graph.modules[info.module]
        self.summary = FunctionSummary(qual=info.qual)
        self.global_decls: "set[str]" = set()
        self.locals: "set[str]" = set()
        #: local name -> class qual
        self.env: "dict[str, str]" = {}
        self._bind_params()

    # ---- environment ------------------------------------------------------

    def _bind_params(self) -> None:
        args = self.info.node.args
        params = list(args.posonlyargs) + list(args.args) + \
            list(args.kwonlyargs)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra)
        for index, param in enumerate(params):
            self.locals.add(param.arg)
            if (index == 0 and self.info.is_method
                    and param.arg in ("self", "cls")
                    and self.info.class_qual is not None):
                self.env[param.arg] = self.info.class_qual
                continue
            cls = self.graph.annotation_class(param.annotation, self.mod)
            if cls is not None:
                self.env[param.arg] = cls

    def _expr_class(self, expr: ast.expr) -> "str | None":
        """Best-effort class qual of an expression's value."""
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._expr_class(expr.value)
            if owner is None:
                return None
            seen: "set[str]" = set()
            stack = [owner]
            while stack:
                qual = stack.pop(0)
                if qual in seen:
                    continue
                seen.add(qual)
                cinfo = self.graph.classes.get(qual)
                if cinfo is None:
                    continue
                if expr.attr in cinfo.attr_types:
                    return cinfo.attr_types[expr.attr]
                stack.extend(cinfo.bases)
            return None
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is not None and not self._is_local_head(name):
                return self.graph.resolve_global(
                    self.graph.canonicalize(name, self.mod), kind="class")
        return None

    def _is_local_head(self, name: str) -> bool:
        return name.partition(".")[0] in self.locals

    def _is_module_global(self, name: str) -> bool:
        return ((name in self.global_decls)
                or (name in self.mod.globals and name not in self.locals))

    # ---- resolution helpers ----------------------------------------------

    def _resolve_call(self, call: ast.Call) -> "str | None":
        func = call.func
        name = dotted_name(func)
        if name is not None and not self._is_local_head(name):
            target = self.graph.resolve_global(
                self.graph.canonicalize(name, self.mod))
            if target is not None:
                if target in self.graph.classes:
                    ctor = self.graph.resolve_method(target, "__init__")
                    return ctor if ctor is not None else target
                return target
        if isinstance(func, ast.Attribute):
            owner = self._expr_class(func.value)
            if owner is not None:
                return self.graph.resolve_method(owner, func.attr)
        if name is not None and not self._is_local_head(name):
            self.summary.unresolved.add(name)
        return None

    def _resolve_callable_ref(self, expr: ast.expr) -> "str | None":
        """A *reference* to a project function (not a call of it)."""
        name = dotted_name(expr)
        if name is None or self._is_local_head(name):
            return None
        target = self.graph.resolve_global(
            self.graph.canonicalize(name, self.mod), kind="function")
        return target

    def _bound_method_name(self, expr: ast.expr) -> "str | None":
        """``obj.method`` where ``method`` is a project method."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner = self._expr_class(expr.value)
        if owner is None:
            return None
        if self.graph.resolve_method(owner, expr.attr) is not None:
            return f"{owner.rsplit('.', 1)[-1]}.{expr.attr}"
        return None

    # ---- visitors ---------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.global_decls.update(node.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.info.node:
            # nested defs are closures: bind the name, skip the body
            # (effects inside only matter if the closure escapes, which
            # the submit-site checks catch separately)
            self.locals.add(node.name)
            return
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store_target(target, node)
        if (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            name = node.targets[0].id
            if name not in self.global_decls:
                self.locals.add(name)
                cls = self._expr_class(node.value)
                if cls is not None:
                    self.env[name] = cls
                else:
                    self.env.pop(name, None)
        if any(isinstance(t, ast.Attribute) and t.attr == "cache"
               for t in node.targets):
            self.summary.cache_assigns.append(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_store_target(node.target, node)
        if isinstance(node.target, ast.Name):
            name = node.target.id
            if name not in self.global_decls:
                self.locals.add(name)
                cls = self.graph.annotation_class(node.annotation, self.mod)
                if cls is None and node.value is not None:
                    cls = self._expr_class(node.value)
                if cls is not None:
                    self.env[name] = cls
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store_target(node.target, node)
        self.generic_visit(node)

    def _record_store_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self.summary.global_writes.append((target.id, node))
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            if (isinstance(base, ast.Name)
                    and self._is_module_global(base.id)):
                self.summary.global_writes.append((base.id, node))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store_target(element, node)

    def visit_With(self, node: ast.With) -> None:
        self._scan_with(node)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._scan_with(node)
        self.generic_visit(node)

    def _scan_with(self, node: "ast.With | ast.AsyncWith") -> None:
        for item in node.items:
            expr = item.context_expr
            probe = expr.func if isinstance(expr, ast.Call) else expr
            name = dotted_name(probe)
            if name is not None and "lock" in name.rsplit(".", 1)[-1].lower():
                self.summary.lock_uses.append((f"with {name}", node))

    def visit_Call(self, node: ast.Call) -> None:
        self._scan_call(node)
        self.generic_visit(node)

    def _scan_call(self, node: ast.Call) -> None:
        func = node.func
        name = dotted_name(func)
        canonical = (self.graph.canonicalize(name, self.mod)
                     if name is not None and not self._is_local_head(name)
                     else None)

        if canonical in ("open", "print"):
            self.summary.io_calls.append((f"{canonical}()", node))
        elif canonical is not None and (
                canonical.startswith(_IO_MODULE_PREFIXES)
                or canonical.startswith("sys.std")):
            self.summary.io_calls.append((f"{canonical}()", node))
        if canonical in _LOCK_CTORS:
            self.summary.lock_uses.append((f"{canonical}()", node))

        if isinstance(func, ast.Attribute):
            method = func.attr
            if method in ("span", "record_span"):
                self.summary.span_calls.append(node)
            elif method == "acquire":
                self.summary.lock_uses.append((".acquire()", node))
            elif method == "scoped":
                self.summary.scoped_calls.append(node)
            elif method in ("put", "flush"):
                self.summary.store_calls.append((method, node))
            elif (method in _IO_ATTR_METHODS and canonical is None
                    and self._expr_class(func.value) is None):
                self.summary.io_calls.append((f".{method}()", node))
            elif (method in _MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and self._is_module_global(func.value.id)):
                self.summary.global_writes.append((func.value.id, node))
            if method in SUBMIT_METHODS and self._module_uses_pools():
                self._scan_submit(node, method)

        target = self._resolve_call(node)
        if target is not None:
            self.summary.calls.append((target, node))

    def _module_uses_pools(self) -> bool:
        return any(origin == mod or origin.startswith(f"{mod}.")
                   for origin in self.mod.imports.values()
                   for mod in POOL_MODULES)

    def _scan_submit(self, node: ast.Call, method: str) -> None:
        site = SubmitSite(node=node, method=method)
        args = list(node.args) + [kw.value for kw in node.keywords]
        if node.args:
            site.callee_qual = self._resolve_callable_ref(node.args[0])
        payload = args[1:] if site.callee_qual is not None else args
        for index, arg in enumerate(args):
            is_payload = arg in payload
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    site.lambda_args.append(sub)
                elif isinstance(sub, ast.Call) and is_payload:
                    builder = self._resolve_call(sub)
                    if builder is not None:
                        site.builder_quals.append(builder)
            if not is_payload:
                continue
            bound = self._bound_method_name(arg)
            if bound is not None:
                site.bound_method_args.append((arg, bound))
            if (isinstance(arg, ast.Name)
                    and self._is_module_global(arg.id)
                    and self.mod.globals.get(arg.id, False)):
                site.mutable_global_args.append((arg, arg.id))
        self.summary.submits.append(site)


def scan_function(info: FunctionInfo, graph: CallGraph) -> FunctionSummary:
    """Build the effect summary for one function."""
    scanner = _FunctionScanner(info, graph)
    scanner.visit(info.node)
    return scanner.summary
