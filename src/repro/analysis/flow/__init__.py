"""Interprocedural flow analysis under ``c2bound lint --flow``.

The per-file rules of :mod:`repro.analysis.rules` see one AST at a time,
but the invariants PRs 7–8 introduced are *interprocedural*: whether a
function runs inside a pool worker depends on who submits it, whether
the epoch kernel stays pure depends on everything reachable from
``CoreModel.advance``, and whether a cache-store write honors
single-writer shard ownership depends on how its store view was scoped
three frames up.  This package supplies the shared machinery the
``C2L2xx`` concurrency rules are built on:

- :mod:`repro.analysis.flow.callgraph` — a module-aware function/class
  index with alias-, re-export- and annotation-aware name resolution
  (``self.mshr._retire`` resolves through the ``self.mshr = MSHRFile(…)``
  assignment in ``__init__``);
- :mod:`repro.analysis.flow.summaries` — one effect summary per
  function: module-global reads/writes, I/O, tracing spans, lock use,
  pool submissions, store-scoping calls, resolved call sites;
- :mod:`repro.analysis.flow.dataflow` — the fixpoint layer: call-graph
  edges, reachability closures, the *crosses-process-boundary* and
  *hot-path* taints, and transitive effect queries, cached per
  :class:`~repro.analysis.source.Project` so the four rules pay for one
  analysis between them.
"""

from repro.analysis.flow.callgraph import CallGraph, ClassInfo, FunctionInfo
from repro.analysis.flow.dataflow import FlowAnalysis, get_flow
from repro.analysis.flow.summaries import FunctionSummary, SubmitSite

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "FlowAnalysis",
    "get_flow",
    "FunctionSummary",
    "SubmitSite",
]
