"""Reporters: render a :class:`~repro.analysis.engine.LintResult`.

Three formats: ``text`` (one ``path:line:col: severity code message``
line per finding plus a summary line — the human and pre-commit view),
``json`` (a stable machine-readable document with schema tag
``c2bound.lint/1`` — the CI view), and ``sarif`` (SARIF 2.1.0 — the
code-scanning upload format, one run with one result per finding).
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Severity
from repro.analysis.engine import LintResult

__all__ = ["render_text", "render_json", "render_sarif", "REPORT_SCHEMA",
           "SARIF_VERSION"]

REPORT_SCHEMA = "c2bound.lint/1"
SARIF_VERSION = "2.1.0"

_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning",
                 Severity.INFO: "note"}


def _summary_counts(result: LintResult) -> "dict[str, int]":
    return {str(severity): result.count(severity)
            for severity in (Severity.ERROR, Severity.WARNING,
                             Severity.INFO)}


def render_text(result: LintResult) -> str:
    """Human-readable report; empty-diagnostics runs still summarize."""
    lines = [d.render() for d in result.diagnostics]
    counts = _summary_counts(result)
    tail = (f"{result.files_checked} file(s) checked: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info, {result.suppressed} suppressed")
    if not result.diagnostics:
        tail = f"clean — {tail}"
    lines.append(tail)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (sorted, schema-tagged, newline-ended)."""
    doc = {
        "schema": REPORT_SCHEMA,
        "files_checked": result.files_checked,
        "summary": {**_summary_counts(result),
                    "suppressed": result.suppressed},
        "diagnostics": [d.to_dict() for d in result.diagnostics],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 document for code-scanning uploads."""
    from repro.analysis.rules import rule_catalog

    catalog = rule_catalog()
    seen_codes = sorted({d.code for d in result.diagnostics})
    rules = []
    for code in seen_codes:
        cls = catalog.get(code)
        rules.append({
            "id": code,
            "shortDescription": {
                "text": cls.description if cls is not None
                else "file-level failure (unreadable or unparsable)"},
        })
    results = []
    for diag in result.diagnostics:
        results.append({
            "ruleId": diag.code,
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(diag.line, 1),
                               "startColumn": diag.col + 1},
                },
            }],
        })
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "c2bound-lint",
                "informationUri":
                    "docs/STATIC_ANALYSIS.md",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
