"""Reporters: render a :class:`~repro.analysis.engine.LintResult`.

Two formats: ``text`` (one ``path:line:col: severity code message`` line
per finding plus a summary line — the human and pre-commit view) and
``json`` (a stable machine-readable document with schema tag
``c2bound.lint/1`` — the CI view).
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Severity
from repro.analysis.engine import LintResult

__all__ = ["render_text", "render_json", "REPORT_SCHEMA"]

REPORT_SCHEMA = "c2bound.lint/1"


def _summary_counts(result: LintResult) -> "dict[str, int]":
    return {str(severity): result.count(severity)
            for severity in (Severity.ERROR, Severity.WARNING,
                             Severity.INFO)}


def render_text(result: LintResult) -> str:
    """Human-readable report; empty-diagnostics runs still summarize."""
    lines = [d.render() for d in result.diagnostics]
    counts = _summary_counts(result)
    tail = (f"{result.files_checked} file(s) checked: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info, {result.suppressed} suppressed")
    if not result.diagnostics:
        tail = f"clean — {tail}"
    lines.append(tail)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (sorted, schema-tagged, newline-ended)."""
    doc = {
        "schema": REPORT_SCHEMA,
        "files_checked": result.files_checked,
        "summary": {**_summary_counts(result),
                    "suppressed": result.suppressed},
        "diagnostics": [d.to_dict() for d in result.diagnostics],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
