"""C2L001 — determinism of the simulation and evaluation paths.

The golden-digest tests (``tests/sim/test_differential_golden.py``) and
the content-addressed simulation cache both assume that everything under
``repro.sim``, ``repro.camat`` and ``repro.dse`` is a pure function of
its inputs: the same chip/workload/seed triple must produce bit-identical
results in every process, forever.  One wall-clock read or one draw from
an *unseeded* RNG quietly breaks that — warm cache hits then return
costs the current code would not produce, and C-AMAT's
``memory-active-cycles / accesses`` identity stops being reproducible.

This rule bans, inside those modules:

- wall-clock reads that can flow into results: ``time.time``,
  ``time.time_ns``, ``datetime.now``/``utcnow``/``today`` (monotonic
  *timing* reads such as ``time.perf_counter`` stay legal — they feed
  observability histograms, never results);
- the process-global stdlib RNG (any ``random.*`` call except
  constructing a seeded ``random.Random(seed)``);
- NumPy's module-level RNG state (``np.random.rand``, ``np.random.seed``
  and friends);
- **unseeded** ``np.random.default_rng()`` / ``random.Random()``.

The allowed idiom is an explicitly seeded generator threaded through
parameters: ``rng = np.random.default_rng(seed)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import (
    Rule,
    iter_calls,
    resolve_call_name,
    walk_imports,
)
from repro.analysis.source import Project, SourceFile

__all__ = ["DeterminismRule"]

#: Module-path segments that put a file in scope for this rule.
SCOPED_SEGMENTS = ("sim", "camat", "dse")

#: Wall-clock reads whose values could flow into simulation results.
_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: ``numpy.random`` attributes that are *not* the global-state RNG.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
}


def _is_unseeded(call: ast.Call) -> bool:
    """No positional seed and no ``seed=`` keyword → unseeded."""
    if call.args:
        return False
    return not any(kw.arg == "seed" for kw in call.keywords)


class DeterminismRule(Rule):
    code = "C2L001"
    name = "determinism"
    description = ("no wall-clock reads or unseeded/global RNG state in "
                   "repro.sim / repro.camat / repro.dse")

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None:
            return
        if not any(seg in source.module_parts for seg in SCOPED_SEGMENTS):
            return
        aliases = walk_imports(source.tree)
        for call in iter_calls(source.tree):
            name = resolve_call_name(call.func, aliases)
            if name is None:
                continue
            if name in _CLOCK_CALLS:
                yield self.diag(
                    source, call,
                    f"wall-clock read {name}() in a deterministic path; "
                    "results must be pure functions of their inputs "
                    "(time.perf_counter is fine for timing metrics)")
            elif name == "numpy.random.default_rng":
                if _is_unseeded(call):
                    yield self.diag(
                        source, call,
                        "unseeded np.random.default_rng(); thread an "
                        "explicit seed through the call's parameters")
            elif name.startswith("numpy.random."):
                attr = name[len("numpy.random."):]
                if attr not in _NP_RANDOM_OK:
                    yield self.diag(
                        source, call,
                        f"np.random.{attr}() uses NumPy's module-level "
                        "RNG state; use a seeded np.random.default_rng("
                        "seed) Generator instead")
            elif name == "random.Random":
                if _is_unseeded(call):
                    yield self.diag(
                        source, call,
                        "unseeded random.Random(); pass an explicit seed")
            elif name.startswith("random.") and name.count(".") == 1:
                yield self.diag(
                    source, call,
                    f"{name}() draws from the process-global stdlib RNG; "
                    "use a seeded np.random.default_rng(seed) Generator "
                    "threaded via parameters")
