"""C2L004 — callables crossing the process pool must be picklable.

:class:`repro.dse.batch.ParallelEvaluator` ships its work to
``concurrent.futures`` pool workers, which pickle the submitted callable
by *qualified name*.  A lambda or a function defined inside another
function pickles fine on no platform at all — the failure is a runtime
``PicklingError`` that only appears once ``workers > 1``, i.e. exactly
not under the default test configuration.  This rule makes the
constraint static: in any module that uses a process pool, the first
argument of ``pool.submit(...)`` / ``pool.map(...)`` must resolve to a
module-level function (or an imported name / dotted attribute), never a
lambda and never a nested ``def``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import Rule, iter_calls, walk_imports
from repro.analysis.source import Project, SourceFile

__all__ = ["PicklabilityRule"]

_POOL_IMPORTS = ("concurrent.futures", "multiprocessing")
_SUBMIT_METHODS = {"submit", "map", "apply_async", "starmap"}


def _uses_process_pool(source: SourceFile) -> bool:
    text = source.text
    return any(mod in text for mod in _POOL_IMPORTS)


def _def_scopes(tree: ast.Module):
    """(module-level defs, nested def names) in one pass."""
    top: set[str] = set()
    nested: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            top.add(node.name)
            for sub in ast.walk(node):
                if (sub is not node
                        and isinstance(sub, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))):
                    nested.add(sub.name)
        elif isinstance(node, ast.ClassDef):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(sub.name)
    return top, nested


class PicklabilityRule(Rule):
    code = "C2L004"
    name = "picklability"
    description = ("callables submitted to a process pool must be "
                   "module-level functions (no lambdas, no closures)")

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None or not _uses_process_pool(source):
            return
        top, nested = _def_scopes(source.tree)
        imported = set(walk_imports(source.tree))
        for call in iter_calls(source.tree):
            func = call.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _SUBMIT_METHODS and call.args):
                continue
            target = call.args[0]
            if isinstance(target, ast.Lambda):
                yield self.diag(
                    source, target,
                    f"lambda submitted to .{func.attr}(): pool workers "
                    "pickle tasks by qualified name — move the body to a "
                    "module-level function")
            elif isinstance(target, ast.Name):
                name = target.id
                if name in nested and name not in top:
                    yield self.diag(
                        source, target,
                        f"{name!r} is defined inside another scope; a "
                        "process pool cannot pickle a closure — hoist it "
                        "to module level")
            # Attribute targets (module.fn) and unknown names (call
            # parameters, instance attributes) are accepted: the pickle
            # contract is the callee's to keep, and cross-module
            # resolution is out of static reach here.
