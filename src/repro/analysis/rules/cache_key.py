"""C2L002 — cache-key completeness for the simulation result cache.

The content-addressed store (:mod:`repro.sim.cache_store`) is only
correct if *every* field that can change a simulation's outcome reaches
the cache key.  ``fingerprint()`` walks dataclass fields generically, so
the failure mode is subtle: add a field to a chip dataclass, forget that
old persisted entries were keyed without it, and warm runs silently
return costs computed under different semantics.

The defense is a declared manifest: ``cache_store.py`` lists the exact
fields it covers per config class (``FINGERPRINT_SCHEMA``).  This rule
re-derives the field lists from the dataclass definitions in
``sim/config.py`` and flags any drift in either direction, with the
required remedy spelled out (update the manifest *and* bump
``SIM_MODEL_VERSION`` so stale entries are orphaned, never returned).
It also checks the structural anchors the whole scheme rests on:

- ``fingerprint()`` still walks ``dataclasses.fields`` (generic
  coverage) and sorts generic-object attributes (workload coverage);
- ``SIM_MODEL_VERSION`` is still a literal string (a computed version
  could differ across processes sharing one store);
- ``dse/evaluate.py::canonical_key`` still sorts the config items, so
  budget-cache identity is insertion-order independent;
- the sweep fabric's shard identity stays *derived from the key*:
  ``SHARD_PREFIX_LEN`` is a literal int, ``SHARD_COUNT`` equals
  ``16 ** SHARD_PREFIX_LEN``, ``shard_of_key`` parses exactly that hex
  prefix, ``path_for`` carves directories by the same constant (no
  re-introduced magic width), and ``sim_cache_key`` still emits
  SHA-256 *hex* — the property the prefix arithmetic rests on.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules.base import Rule, dotted_name
from repro.analysis.source import Project, SourceFile

__all__ = ["CacheKeyRule"]

_BUMP = "update FINGERPRINT_SCHEMA and bump SIM_MODEL_VERSION"


def _dataclass_fields(tree: ast.Module) -> "dict[str, tuple[ast.ClassDef, list[str]]]":
    """Class name → (node, annotated field names) for dataclasses."""
    out: dict[str, tuple[ast.ClassDef, list[str]]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        decorated = False
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = dotted_name(target) or ""
            if name.split(".")[-1] == "dataclass":
                decorated = True
        if not decorated:
            continue
        fields = [
            stmt.target.id for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and "ClassVar" not in ast.dump(stmt.annotation)
        ]
        out[node.name] = (node, fields)
    return out


def _top_level_assign(tree: ast.Module, name: str) -> "ast.AST | None":
    """Value node of a module-level ``name = ...`` / ``name: T = ...``."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (isinstance(node.target, ast.Name) and node.target.id == name
                    and node.value is not None):
                return node.value
    return None


def _schema_literal(node: ast.AST) -> "dict[str, tuple[list[str], ast.AST]] | None":
    """Parse a ``{"Cls": ("f1", ...)}`` dict literal; None if not one."""
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, tuple[list[str], ast.AST]] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        names: list[str] = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            names.append(element.value)
        out[key.value] = (names, value)
    return out


def _find_function(tree: ast.Module, name: str) -> "ast.FunctionDef | None":
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _find_method(tree: ast.Module, name: str) -> "ast.FunctionDef | None":
    """First method called ``name`` in any top-level class."""
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return stmt
    return None


def _names_in(node: ast.AST) -> "set[str]":
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _parses_hex_prefix(node: ast.AST) -> bool:
    """True if ``node`` contains an ``int(..., 16)`` call."""
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and dotted_name(sub.func) == "int"
                and len(sub.args) == 2
                and isinstance(sub.args[1], ast.Constant)
                and sub.args[1].value == 16):
            return True
    return False


def _calls_in(node: ast.AST) -> "set[str]":
    """Leaf names of every call target inside ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None:
                out.add(name.split(".")[-1])
            elif isinstance(sub.func, ast.Attribute):
                # e.g. ``sha256(...).hexdigest()`` — the base is a call,
                # not a name chain, but the method leaf still matters.
                out.add(sub.func.attr)
    return out


class CacheKeyRule(Rule):
    code = "C2L002"
    name = "cache-key-completeness"
    description = ("sim/config.py dataclass fields must match the "
                   "FINGERPRINT_SCHEMA manifest in sim/cache_store.py")

    def check_project(self, project: Project) -> "Iterable[Diagnostic]":
        config = project.file_ending_with("sim/config.py")
        store = project.file_ending_with("sim/cache_store.py")
        if config is None or store is None:
            return  # not this repo's shape (e.g. a partial lint target)
        if config.tree is None or store.tree is None:
            return  # syntax errors are reported separately as C2L000

        yield from self._check_schema(config, store)
        yield from self._check_anchors(store)
        yield from self._check_shards(store)
        evaluate = project.file_ending_with("dse/evaluate.py")
        if evaluate is not None and evaluate.tree is not None:
            yield from self._check_canonical_key(evaluate)

    def _check_schema(self, config: SourceFile,
                      store: SourceFile) -> "Iterable[Diagnostic]":
        assert config.tree is not None and store.tree is not None
        classes = _dataclass_fields(config.tree)
        schema_node = _top_level_assign(store.tree, "FINGERPRINT_SCHEMA")
        if schema_node is None:
            yield self.diag(
                store, store.tree,
                "sim/cache_store.py must declare a FINGERPRINT_SCHEMA "
                "literal mapping each config dataclass to the fields its "
                "cache key covers")
            return
        schema = _schema_literal(schema_node)
        if schema is None:
            yield self.diag(
                store, schema_node,
                "FINGERPRINT_SCHEMA must be a literal dict of "
                '{"ClassName": ("field", ...)} so it can be checked '
                "statically")
            return
        for cls_name, (node, fields) in sorted(classes.items()):
            if cls_name not in schema:
                yield self.diag(
                    config, node,
                    f"config dataclass {cls_name} is absent from "
                    f"FINGERPRINT_SCHEMA in {store.rel}; its fields would "
                    f"be fingerprinted without a declared contract — "
                    f"{_BUMP}")
                continue
            declared, value_node = schema[cls_name]
            for field in fields:
                if field not in declared:
                    yield self.diag(
                        config, node,
                        f"field {cls_name}.{field} is not covered by "
                        f"FINGERPRINT_SCHEMA; cached costs keyed without "
                        f"it would be silently wrong — {_BUMP}")
            for field in declared:
                if field not in fields:
                    yield self.diag(
                        store, value_node,
                        f"FINGERPRINT_SCHEMA lists {cls_name}.{field} "
                        f"but the dataclass has no such field — {_BUMP}")
        for cls_name, (declared, value_node) in sorted(schema.items()):
            if cls_name not in classes:
                yield self.diag(
                    store, value_node,
                    f"FINGERPRINT_SCHEMA entry {cls_name} has no matching "
                    f"dataclass in {config.rel} — {_BUMP}")

    def _check_anchors(self, store: SourceFile) -> "Iterable[Diagnostic]":
        assert store.tree is not None
        version = _top_level_assign(store.tree, "SIM_MODEL_VERSION")
        if not (isinstance(version, ast.Constant)
                and isinstance(version.value, str)):
            yield self.diag(
                store, version or store.tree,
                "SIM_MODEL_VERSION must be a literal string: a computed "
                "version could differ between processes sharing a store")
        fingerprint = _find_function(store.tree, "fingerprint")
        if fingerprint is None:
            yield self.diag(
                store, store.tree,
                "sim/cache_store.py must define fingerprint(); the cache "
                "key derivation has moved or been renamed")
            return
        calls = _calls_in(fingerprint)
        if "fields" not in calls:
            yield self.diag(
                store, fingerprint,
                "fingerprint() no longer walks dataclasses.fields(); "
                "generic coverage of chip dataclass fields is lost")
        if "sorted" not in calls:
            yield self.diag(
                store, fingerprint,
                "fingerprint() no longer sorts generic-object attributes; "
                "workload fingerprints would depend on dict order")

    def _check_shards(self, store: SourceFile) -> "Iterable[Diagnostic]":
        assert store.tree is not None
        prefix = _top_level_assign(store.tree, "SHARD_PREFIX_LEN")
        prefix_ok = (isinstance(prefix, ast.Constant)
                     and type(prefix.value) is int)
        if not prefix_ok:
            yield self.diag(
                store, prefix or store.tree,
                "SHARD_PREFIX_LEN must be a literal int: every process "
                "sharing a store must carve identical shard directories")
        count = _top_level_assign(store.tree, "SHARD_COUNT")
        if not (isinstance(count, ast.Constant)
                and type(count.value) is int):
            yield self.diag(
                store, count or store.tree,
                "SHARD_COUNT must be a literal int so fabric ownership "
                "ranges can be checked statically")
        elif prefix_ok and count.value != 16 ** prefix.value:
            yield self.diag(
                store, count,
                f"SHARD_COUNT is {count.value} but a {prefix.value}-char "
                f"hex prefix spans 16 ** {prefix.value} = "
                f"{16 ** prefix.value} shards; keys would map outside the "
                f"fabric's owned ranges")
        shard_fn = _find_function(store.tree, "shard_of_key")
        if shard_fn is None:
            yield self.diag(
                store, store.tree,
                "sim/cache_store.py must define shard_of_key(); shard "
                "identity has to stay derived from the key, never stored")
        else:
            if "SHARD_PREFIX_LEN" not in _names_in(shard_fn):
                yield self.diag(
                    store, shard_fn,
                    "shard_of_key() no longer references "
                    "SHARD_PREFIX_LEN; a hardcoded prefix width drifts "
                    "silently when the constant changes")
            if not _parses_hex_prefix(shard_fn):
                yield self.diag(
                    store, shard_fn,
                    "shard_of_key() must parse the key prefix with "
                    "int(..., 16); any other derivation breaks the "
                    "prefix <-> shard-directory correspondence")
        key_fn = _find_function(store.tree, "sim_cache_key")
        if key_fn is None:
            yield self.diag(
                store, store.tree,
                "sim/cache_store.py must define sim_cache_key(); the "
                "content-hash entry point has moved or been renamed")
        elif not {"sha256", "hexdigest"} <= _calls_in(key_fn):
            yield self.diag(
                store, key_fn,
                "sim_cache_key() must produce sha256(...).hexdigest(): "
                "shard_of_key()'s int(prefix, 16) is only uniform over "
                "hex digests")
        path_fn = _find_method(store.tree, "path_for")
        if path_fn is None:
            yield self.diag(
                store, store.tree,
                "SimCacheStore.path_for() is gone; the shard-directory "
                "disk layout has moved or been renamed",
                severity=Severity.WARNING)
        elif "SHARD_PREFIX_LEN" not in _names_in(path_fn):
            yield self.diag(
                store, path_fn,
                "path_for() must slice the shard directory with "
                "SHARD_PREFIX_LEN, not a magic width — the disk layout "
                "would drift from shard_of_key()")

    def _check_canonical_key(
            self, evaluate: SourceFile) -> "Iterable[Diagnostic]":
        assert evaluate.tree is not None
        fn = _find_function(evaluate.tree, "canonical_key")
        if fn is None:
            yield self.diag(
                evaluate, evaluate.tree,
                "dse/evaluate.py must define canonical_key(); budget "
                "memoization identity has moved or been renamed",
                severity=Severity.WARNING)
            return
        calls = _calls_in(fn)
        if "sorted" not in calls or "items" not in calls:
            yield self.diag(
                evaluate, fn,
                "canonical_key() must sort config.items(): identity has "
                "to be insertion-order independent or batching re-charges "
                "duplicate configurations")
