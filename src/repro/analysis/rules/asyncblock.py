"""C2L205 — no blocking calls inside coroutine bodies of the service.

The job server's availability argument rests on one invariant: the
asyncio event loop never blocks.  A single ``time.sleep``, synchronous
file read, or pool-future ``.result()`` wait inside a coroutine stalls
*every* connection — health checks time out, backpressure stops
responding, and the whole admission story collapses.  The server's own
convention is to push blocking work through ``loop.run_in_executor``
into plain synchronous functions; this rule makes that convention
machine-checked for every module under ``repro.service``.

Only statements *lexically inside* an ``async def`` body count.  Nested
synchronous ``def``/``lambda`` bodies are exempt — they are exactly the
functions handed to ``run_in_executor``, where blocking is the point.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import (
    Rule,
    resolve_call_name,
    walk_imports,
)
from repro.analysis.source import Project, SourceFile

__all__ = ["AsyncBlockingRule"]

#: Canonical dotted names (after import-alias resolution) that block.
_BLOCKING_CALLS = {
    "time.sleep": "sleeps the whole event loop",
    "open": "synchronous file I/O",
    "io.open": "synchronous file I/O",
    "os.system": "blocks on a subprocess",
    "os.popen": "blocks on a subprocess",
    "os.makedirs": "synchronous filesystem call",
    "os.replace": "synchronous filesystem call",
    "os.remove": "synchronous filesystem call",
    "os.rename": "synchronous filesystem call",
    "subprocess.run": "blocks on a subprocess",
    "subprocess.call": "blocks on a subprocess",
    "subprocess.check_call": "blocks on a subprocess",
    "subprocess.check_output": "blocks on a subprocess",
    "subprocess.Popen": "spawns with blocking pipes",
    "shutil.rmtree": "synchronous filesystem call",
    "shutil.copy": "synchronous filesystem call",
    "shutil.copytree": "synchronous filesystem call",
    "shutil.move": "synchronous filesystem call",
    "urllib.request.urlopen": "synchronous network I/O",
    "socket.create_connection": "synchronous network I/O",
}

#: Method names that block regardless of receiver: pool/future waits
#: and the pathlib file-I/O surface.  ``.replace``/``.open`` are left
#: out on purpose — ``str.replace`` collisions would drown the signal.
_BLOCKING_METHODS = {
    "result": "waits on a pool future",
    "read_text": "synchronous file I/O",
    "read_bytes": "synchronous file I/O",
    "write_text": "synchronous file I/O",
    "write_bytes": "synchronous file I/O",
    "mkdir": "synchronous filesystem call",
    "rmdir": "synchronous filesystem call",
    "unlink": "synchronous filesystem call",
    "touch": "synchronous filesystem call",
}


def _own_nodes(fn: ast.AsyncFunctionDef) -> "Iterator[ast.AST]":
    """Nodes lexically inside ``fn``'s body, excluding nested function
    scopes (each ``async def`` is visited on its own; nested sync
    ``def``/``lambda`` bodies are the executor's domain)."""
    stack: "list[ast.AST]" = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncBlockingRule(Rule):
    """C2L205: coroutine bodies in ``repro.service`` never block."""

    code = "C2L205"
    name = "async-blocking"
    description = ("no blocking calls (time.sleep, sync file I/O, pool "
                   ".result() waits) inside coroutine bodies under "
                   "repro.service; route them through "
                   "loop.run_in_executor")

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None or "service" not in source.module_parts:
            return
        aliases = walk_imports(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in _own_nodes(node):
                if not isinstance(inner, ast.Call):
                    continue
                name = resolve_call_name(inner.func, aliases)
                why = _BLOCKING_CALLS.get(name) if name is not None else None
                if why is None and isinstance(inner.func, ast.Attribute):
                    why = _BLOCKING_METHODS.get(inner.func.attr)
                    name = inner.func.attr
                if why is None:
                    continue
                yield self.diag(
                    source, inner,
                    f"{name}() {why} inside coroutine "
                    f"'{node.name}'; the event loop must never block — "
                    "move the call into a sync helper and await "
                    "loop.run_in_executor(...)")
