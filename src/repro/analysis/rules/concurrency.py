"""C2L2xx — interprocedural concurrency and purity rules.

These rules machine-check the invariants PRs 7–8 introduced and are
built on :mod:`repro.analysis.flow` (they run only under
``c2bound lint --flow``, or when selected explicitly):

- **C2L201 single-writer discipline** — in any module that both handles
  a ``SimCacheStore`` and submits work to a process pool, store views
  shipped to workers must be scoped with ``owned_shards=``, and
  worker-side code must not call ``.put()``/``.flush()`` on a store
  directly (the write-behind buffer and the reconciling parent are the
  only legal write paths).
- **C2L202 cross-boundary escape** — nothing that drags parent-process
  state may cross a pool boundary: no lambdas, no bound methods, no
  mutable module globals in submit arguments, and code that executes in
  a worker must not write module globals (a worker-side write mutates a
  *copy* and silently diverges).
- **C2L203 hot-path purity** — functions reachable from the simulator
  hot roots (``CoreModel.advance`` / ``SMTCoreModel.advance`` /
  ``run_epoch_kernel``) may not write module globals, perform I/O, or
  take locks.
- **C2L204 front-tier hit discipline** — the membership-guarded hit
  branches of a tiered store's ``get`` (``if key in mem:``) must stay
  free of tracing spans, disk I/O and locks, directly or through
  anything they call: a front hit is the fabric's hot path.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.callgraph import ClassInfo
from repro.analysis.flow.dataflow import FlowAnalysis, get_flow
from repro.analysis.flow.summaries import FunctionSummary
from repro.analysis.rules.base import Rule, dotted_name
from repro.analysis.source import Project

__all__ = ["SingleWriterRule", "BoundaryEscapeRule", "HotPathPurityRule",
           "FrontTierHitRule"]

_STORE_CLASS = "SimCacheStore"
#: function-name prefixes allowed to lazily initialize a private module
#: global (the ``get_tracer()``-style singleton idiom)
_SINGLETON_PREFIXES = ("get_", "set_", "configure_", "enable_",
                      "disable_", "reset_", "install_")


def _module_handles_store(flow: FlowAnalysis, module: str) -> bool:
    """Module imports or defines a ``SimCacheStore``(-named) class."""
    mod = flow.graph.modules.get(module)
    if mod is None:
        return False
    for origin in mod.imports.values():
        if origin.rsplit(".", 1)[-1] == _STORE_CLASS:
            return True
    return f"{module}.{_STORE_CLASS}" in flow.graph.classes


def _functions_of_module(flow: FlowAnalysis,
                         module: str) -> "list[str]":
    return [qual for qual, info in flow.graph.functions.items()
            if info.module == module]


class _FlowRule(Rule):
    """Base for rules that need the interprocedural analysis."""

    requires_flow = True

    def _source_rel(self, flow: FlowAnalysis, qual: str) -> str:
        return flow.graph.functions[qual].source.rel


class SingleWriterRule(_FlowRule):
    """C2L201: shard ownership on every worker-bound store view."""

    code = "C2L201"
    name = "single-writer"
    severity = Severity.ERROR
    description = ("store views shipped to pool workers must be scoped "
                   "with owned_shards=, and worker code must not call "
                   ".put()/.flush() directly")

    def check_project(self, project: Project) -> "Iterable[Diagnostic]":
        flow = get_flow(project)
        out: "list[Diagnostic]" = []
        submit_modules = {flow.graph.functions[qual].module
                          for qual, _ in flow.submit_sites}
        scoped_modules = {m for m in submit_modules
                          if _module_handles_store(flow, m)}
        submitters = {qual for qual, _ in flow.submit_sites}
        parent_side = submitters | flow.builders
        for module in sorted(scoped_modules):
            for qual in _functions_of_module(flow, module):
                summary = flow.summaries[qual]
                rel = self._source_rel(flow, qual)
                if qual in parent_side:
                    out.extend(self._check_parent_side(summary, rel))
                if qual in flow.boundary_from:
                    for method, node in summary.store_calls:
                        out.append(self.diag(
                            rel, node,
                            f"direct .{method}() in pool-worker code "
                            f"({qual} runs inside a worker via "
                            f"{flow.boundary_from[qual]}); route writes "
                            f"through the scoped write-behind buffer or "
                            f"the reconciling parent"))
        return out

    def _check_parent_side(self, summary: FunctionSummary,
                           rel: str) -> "Iterable[Diagnostic]":
        for call in summary.scoped_calls:
            if not any(kw.arg == "owned_shards" for kw in call.keywords):
                yield self.diag(
                    rel, call,
                    f".scoped() without owned_shards= in {summary.qual}; "
                    f"a worker-bound store view must own an explicit "
                    f"shard set or every slot becomes a writer")
        for assign in summary.cache_assigns:
            value = assign.value
            ok = (isinstance(value, ast.Call)
                  and isinstance(value.func, ast.Attribute)
                  and value.func.attr == "scoped"
                  and any(kw.arg == "owned_shards"
                          for kw in value.keywords))
            if not ok:
                yield self.diag(
                    rel, assign,
                    f"cache assigned without owned_shards scoping in "
                    f"{summary.qual}; worker-bound evaluators must get "
                    f"a .scoped(owned_shards=...) store view")


class BoundaryEscapeRule(_FlowRule):
    """C2L202: nothing mutable or parent-bound crosses a pool boundary."""

    code = "C2L202"
    name = "boundary-escape"
    severity = Severity.ERROR
    description = ("no lambdas, bound methods, or mutable module globals "
                   "in pool submissions; pool-worker code must not write "
                   "module globals")

    def check_project(self, project: Project) -> "Iterable[Diagnostic]":
        flow = get_flow(project)
        out: "list[Diagnostic]" = []
        for qual, site in flow.submit_sites:
            rel = self._source_rel(flow, qual)
            for lam in site.lambda_args:
                out.append(self.diag(
                    rel, lam,
                    f"lambda crosses the pool boundary in {qual}; "
                    f"lambdas do not pickle — use a module-level "
                    f"function"))
            for node, name in site.bound_method_args:
                out.append(self.diag(
                    rel, node,
                    f"bound method {name} crosses the pool boundary in "
                    f"{qual}; it drags its whole instance into the "
                    f"worker — pass data plus a module-level function"))
            for node, name in site.mutable_global_args:
                out.append(self.diag(
                    rel, node,
                    f"mutable module global {name!r} crosses the pool "
                    f"boundary in {qual}; the worker mutates a copy — "
                    f"pass an explicit argument instead"))
        for qual, origin in sorted(flow.boundary_from.items()):
            summary = flow.summaries[qual]
            rel = self._source_rel(flow, qual)
            for name, node in summary.global_writes:
                if self._is_singleton_init(qual, name):
                    continue
                out.append(self.diag(
                    rel, node,
                    f"module global {name!r} written in pool-worker "
                    f"code ({qual} runs inside a worker via {origin}); "
                    f"the write mutates the worker's copy and silently "
                    f"diverges from the parent"))
        return out

    @staticmethod
    def _is_singleton_init(qual: str, global_name: str) -> bool:
        func_name = qual.rsplit(".", 1)[-1]
        return (global_name.startswith("_")
                and func_name.startswith(_SINGLETON_PREFIXES))


class HotPathPurityRule(_FlowRule):
    """C2L203: the epoch loop's reachable set stays pure."""

    code = "C2L203"
    name = "hot-path-purity"
    severity = Severity.ERROR
    description = ("functions reachable from CoreModel.advance / "
                   "SMTCoreModel.advance / run_epoch_kernel may not "
                   "write module globals, perform I/O, or take locks")

    def check_project(self, project: Project) -> "Iterable[Diagnostic]":
        flow = get_flow(project)
        out: "list[Diagnostic]" = []
        for qual, root in sorted(flow.hot_from.items()):
            summary = flow.summaries[qual]
            rel = self._source_rel(flow, qual)
            for name, node in summary.global_writes:
                out.append(self.diag(
                    rel, node,
                    f"hot-path function {qual} (reachable from {root}) "
                    f"writes module global {name!r}"))
            for desc, node in summary.io_calls:
                out.append(self.diag(
                    rel, node,
                    f"hot-path function {qual} (reachable from {root}) "
                    f"performs I/O: {desc}"))
            for desc, node in summary.lock_uses:
                out.append(self.diag(
                    rel, node,
                    f"hot-path function {qual} (reachable from {root}) "
                    f"takes a lock: {desc}"))
        return out


def _front_attrs(cinfo: ClassInfo) -> "set[str]":
    """``self.X = OrderedDict()/dict()/{}`` attrs assigned in the class."""
    attrs: "set[str]" = set()
    for sub in ast.walk(cinfo.node):
        if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
            continue
        target = sub.targets[0]
        if (not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"):
            continue
        value = sub.value
        ctor = (dotted_name(value.func)
                if isinstance(value, ast.Call) else None)
        if isinstance(value, ast.Dict) and not value.keys:
            attrs.add(target.attr)
        elif ctor is not None and ctor.rsplit(".", 1)[-1] in (
                "OrderedDict", "dict"):
            attrs.add(target.attr)
    return attrs


class FrontTierHitRule(_FlowRule):
    """C2L204: no spans, disk I/O or locks inside front-tier hits."""

    code = "C2L204"
    name = "front-tier-hit"
    severity = Severity.ERROR
    description = ("membership-guarded hit branches of a tiered store's "
                   "get() must stay free of tracing spans, disk I/O and "
                   "locks — directly or transitively")

    def check_project(self, project: Project) -> "Iterable[Diagnostic]":
        flow = get_flow(project)
        out: "list[Diagnostic]" = []
        for cinfo in flow.graph.classes.values():
            get_qual = cinfo.methods.get("get")
            if get_qual is None:
                continue
            fronts = _front_attrs(cinfo)
            if not fronts:
                continue
            out.extend(self._check_get(flow, get_qual, fronts))
        return out

    def _check_get(self, flow: FlowAnalysis, qual: str,
                   fronts: "set[str]") -> "Iterable[Diagnostic]":
        info = flow.graph.functions[qual]
        summary = flow.summaries[qual]
        rel = info.source.rel
        local_fronts: "set[str]" = set()
        for sub in ast.walk(info.node):
            if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Attribute)
                    and isinstance(sub.value.value, ast.Name)
                    and sub.value.value.id == "self"
                    and sub.value.attr in fronts):
                local_fronts.add(sub.targets[0].id)
        for branch in ast.walk(info.node):
            if not isinstance(branch, ast.If):
                continue
            if not self._is_front_membership(branch.test, fronts,
                                             local_fronts):
                continue
            body_ids = {id(n) for stmt in branch.body
                        for n in ast.walk(stmt)}
            for node in summary.span_calls:
                if id(node) in body_ids:
                    yield self.diag(
                        rel, node,
                        f"tracing span inside the front-tier hit branch "
                        f"of {qual}; a span per memory hit swamps the "
                        f"trace and re-adds hot-path overhead")
            for desc, node in summary.io_calls:
                if id(node) in body_ids:
                    yield self.diag(
                        rel, node,
                        f"disk I/O ({desc}) inside the front-tier hit "
                        f"branch of {qual}; a memory hit must not touch "
                        f"the filesystem")
            for desc, node in summary.lock_uses:
                if id(node) in body_ids:
                    yield self.diag(
                        rel, node,
                        f"lock use ({desc}) inside the front-tier hit "
                        f"branch of {qual}; the front tier is lock-free "
                        f"by design")
            for callee in flow.calls_within(qual, body_ids):
                hit = flow.first_transitive(callee, _span_io_lock_effects)
                if hit is not None:
                    offender, desc, _node = hit
                    first = next(node for c, node in summary.calls
                                 if c == callee and id(node) in body_ids)
                    yield self.diag(
                        rel, first,
                        f"front-tier hit branch of {qual} reaches "
                        f"{desc} in {offender} (via {callee})")

    @staticmethod
    def _is_front_membership(test: ast.expr, fronts: "set[str]",
                             local_fronts: "set[str]") -> bool:
        if (not isinstance(test, ast.Compare)
                or len(test.ops) != 1
                or not isinstance(test.ops[0], ast.In)):
            return False
        target = test.comparators[0]
        if isinstance(target, ast.Name):
            return target.id in local_fronts
        return (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in fronts)


def _span_io_lock_effects(
        summary: FunctionSummary) -> "list[tuple[str, ast.AST]]":
    effects: "list[tuple[str, ast.AST]]" = [
        ("a tracing span", node) for node in summary.span_calls]
    effects.extend(("disk I/O (%s)" % desc, node)
                   for desc, node in summary.io_calls)
    effects.extend(("lock use (%s)" % desc, node)
                   for desc, node in summary.lock_uses)
    return effects
