"""C2L005 — AccessTrace columns are immutable outside their module.

:class:`repro.camat.trace.AccessTrace` keeps derived columns
(``hit_ends = starts + hit_lengths``, ``miss_ends = hit_ends +
miss_penalties``) and memoizes analyzer passes over them; the simulator
fast path shares those arrays without copying.  Mutating a column from
outside the class desynchronizes the derived columns and every memoized
view — the C-AMAT identity ``memory-active-cycles / accesses`` then
fails in ways no local test notices.

This rule flags any *store* to an attribute named like a trace column
(plain, augmented, or through a subscript: ``t.starts = ...``,
``t.starts[i] = ...``, ``t.hit_ends += 1``) when the receiver is not
``self`` — a class managing columns it owns (the trace itself, the
simulator core's record arrays) stays free to.  The defining module
(``camat/trace.py``) is exempt wholesale; everyone else must build
traces through ``AccessTrace.from_arrays`` or the object constructor.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import Rule
from repro.analysis.source import Project, SourceFile

__all__ = ["TraceGuardRule", "TRACE_COLUMNS"]

#: The columnar attributes of AccessTrace (authoritative + derived).
TRACE_COLUMNS = frozenset({
    "starts", "hit_lengths", "miss_penalties", "addresses",
    "hit_ends", "miss_ends",
})


def _column_store(node: ast.AST) -> "ast.Attribute | None":
    """The written-to trace-column attribute inside a store target."""
    if isinstance(node, ast.Attribute) and node.attr in TRACE_COLUMNS:
        return node
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr in TRACE_COLUMNS:
            return value
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            found = _column_store(element)
            if found is not None:
                return found
    return None


class TraceGuardRule(Rule):
    code = "C2L005"
    name = "trace-invariants"
    description = ("AccessTrace columns may only be written by the "
                   "owning object (camat/trace.py or self attributes)")

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None:
            return
        if source.path.as_posix().endswith("camat/trace.py"):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                attr = _column_store(target)
                if attr is None:
                    continue
                receiver = attr.value
                if isinstance(receiver, ast.Name) and receiver.id == "self":
                    continue  # a class mutating its own column arrays
                yield self.diag(
                    source, target,
                    f"write to trace column .{attr.attr} outside its "
                    "owner desynchronizes derived columns and memoized "
                    "analyzer views; rebuild via AccessTrace.from_arrays")
