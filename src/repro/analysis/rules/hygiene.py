"""Hygiene rules: C2L101 bare except, C2L102 mutable defaults, C2L103 exports.

These are the generic companions to the repo-aware rules: failure modes
that bite any library, with remedies local to the flagged line.

- **C2L101** — a bare ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit``; catch a concrete exception (the repo's hierarchy
  roots at :class:`repro.errors.ReproError`) or ``Exception``.
- **C2L102** — a mutable default argument (``def f(x=[])``) is shared
  across *all* calls; the repo idiom is ``None`` plus an in-body
  default.
- **C2L103** — a public module (one defining public top-level functions
  or classes) must declare ``__all__``; the star-import surface and the
  documented API must be an explicit decision, not an accident of
  naming.  ``__main__`` modules and scripts are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules.base import Rule, dotted_name
from repro.analysis.source import Project, SourceFile

__all__ = ["BareExceptRule", "MutableDefaultRule", "ExportsRule"]

_MUTABLE_CALLS = {"list", "dict", "set"}


class BareExceptRule(Rule):
    code = "C2L101"
    name = "bare-except"
    description = "no bare except: clauses (they swallow KeyboardInterrupt)"

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diag(
                    source, node,
                    "bare 'except:' also catches KeyboardInterrupt and "
                    "SystemExit; catch a concrete exception type "
                    "(ReproError, OSError, ...) or Exception")


class MutableDefaultRule(Rule):
    code = "C2L102"
    name = "mutable-default"
    description = "no mutable default arguments (shared across calls)"

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            for default in [*args.defaults, *args.kw_defaults]:
                if default is None:
                    continue
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if isinstance(default, ast.Call):
                    name = dotted_name(default.func)
                    bad = name in _MUTABLE_CALLS
                if bad:
                    yield self.diag(
                        source, default,
                        "mutable default argument is evaluated once and "
                        "shared by every call; default to None and "
                        "construct inside the body")


class ExportsRule(Rule):
    code = "C2L103"
    name = "missing-all"
    severity = Severity.WARNING
    description = "public modules must declare __all__"

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None:
            return
        stem = source.path.stem
        if stem == "__main__" or stem.startswith("_") and stem != "__init__":
            return
        has_all = False
        public: list[str] = []
        for node in source.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        has_all = True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                if not node.name.startswith("_"):
                    public.append(node.name)
        if public and not has_all:
            yield self.diag(
                source, None,
                f"module defines public names ({', '.join(public[:3])}"
                f"{', ...' if len(public) > 3 else ''}) but no __all__; "
                "declare the export surface explicitly")
