"""The pluggable rule set of ``c2bound lint``.

``DEFAULT_RULES`` is the ordered registry the engine runs when no
explicit selection is given; :func:`make_rules` instantiates a
selection by code.  Adding a rule: subclass
:class:`~repro.analysis.rules.base.Rule`, implement ``check_file`` or
``check_project``, append the class here (see
``docs/STATIC_ANALYSIS.md`` for a worked example).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Type

from repro.analysis.rules.asyncblock import AsyncBlockingRule
from repro.analysis.rules.base import Rule
from repro.analysis.rules.cache_key import CacheKeyRule
from repro.analysis.rules.concurrency import (
    BoundaryEscapeRule,
    FrontTierHitRule,
    HotPathPurityRule,
    SingleWriterRule,
)
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.hygiene import (
    BareExceptRule,
    ExportsRule,
    MutableDefaultRule,
)
from repro.analysis.rules.metrics_catalog import MetricsCatalogRule
from repro.analysis.rules.picklability import PicklabilityRule
from repro.analysis.rules.resilience import ResilienceRule
from repro.analysis.rules.trace_guard import TraceGuardRule
from repro.errors import AnalysisError

__all__ = ["Rule", "DEFAULT_RULES", "make_rules", "rule_catalog",
           "DeterminismRule", "CacheKeyRule", "MetricsCatalogRule",
           "PicklabilityRule", "TraceGuardRule", "BareExceptRule",
           "MutableDefaultRule", "ExportsRule", "ResilienceRule",
           "SingleWriterRule", "BoundaryEscapeRule", "HotPathPurityRule",
           "FrontTierHitRule", "AsyncBlockingRule"]

DEFAULT_RULES: "tuple[Type[Rule], ...]" = (
    DeterminismRule,
    CacheKeyRule,
    MetricsCatalogRule,
    PicklabilityRule,
    TraceGuardRule,
    BareExceptRule,
    MutableDefaultRule,
    ExportsRule,
    ResilienceRule,
    SingleWriterRule,
    BoundaryEscapeRule,
    HotPathPurityRule,
    FrontTierHitRule,
    AsyncBlockingRule,
)


def rule_catalog() -> "dict[str, Type[Rule]]":
    """Rule code → class, for selection and ``--list-rules``."""
    return {cls.code: cls for cls in DEFAULT_RULES}


def make_rules(codes: "Sequence[str] | None" = None, *,
               flow: bool = False) -> "list[Rule]":
    """Instances of the selected rules (all of them by default).

    With no explicit selection, rules that need the interprocedural
    flow analysis are included only when ``flow`` is true.  Explicit
    codes always win — ``--rules C2L203`` runs the flow pass on its own.
    """
    if codes is None:
        return [cls() for cls in DEFAULT_RULES
                if flow or not cls.requires_flow]
    catalog = rule_catalog()
    out: list[Rule] = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in catalog:
            raise AnalysisError(
                f"unknown rule {code!r}; known rules: "
                f"{', '.join(sorted(catalog))}")
        out.append(catalog[normalized]())
    return out
