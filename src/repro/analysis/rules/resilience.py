"""C2L006 — deterministic retry paths (no wall-clock sleeps, no RNG jitter).

The resilience layer's promise is that a run which survives faults is
*bit-identical* to one that never saw them — and that a failing retry
schedule can be replayed exactly.  Two idioms quietly break that
promise:

- a **direct** ``time.sleep(...)`` call buried in a retry loop: tests
  and the chaos harness can no longer run the schedule instantly or
  observe it, and the delay disappears from the deterministic record.
  The sanctioned idiom is an injectable hook with the real clock as the
  *default parameter value*::

      def retry_call(..., sleep: Callable[[float], None] = time.sleep):
          ...
          sleep(policy.delay(attempt))   # injected, recordable

  (referencing ``time.sleep`` is legal; *calling* it is not);
- jitter drawn from **global or unseeded RNG state**: two runs of the
  same failing workload then back off on different schedules.  Jitter
  must come from :func:`repro.resilience.policy.deterministic_unit`
  (a hash of ``(seed, attempt)``) or a seeded generator threaded
  through parameters.

Scope: ``repro.resilience`` and ``repro.dse`` (the retry/backoff
surface).  The RNG checks apply only under ``repro.resilience`` —
inside ``repro.dse`` they are already covered by ``C2L001``, and one
finding per offense is enough.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import (
    Rule,
    iter_calls,
    resolve_call_name,
    walk_imports,
)
from repro.analysis.source import Project, SourceFile

__all__ = ["ResilienceRule"]

#: Module-path segments that put a file in scope for the sleep check.
SCOPED_SEGMENTS = ("resilience", "dse")

#: Segments where this rule also polices RNG state (``C2L001`` already
#: covers ``dse``).
RNG_SEGMENTS = ("resilience",)

#: Blocking sleeps that must go through an injectable hook instead.
_SLEEP_CALLS = {"time.sleep", "asyncio.sleep"}

#: ``numpy.random`` attributes that are *not* the global-state RNG
#: (mirrors ``C2L001``).
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
}


def _is_unseeded(call) -> bool:
    """No positional seed and no ``seed=`` keyword → unseeded."""
    if call.args:
        return False
    return not any(kw.arg == "seed" for kw in call.keywords)


class ResilienceRule(Rule):
    code = "C2L006"
    name = "resilience-determinism"
    description = ("no direct wall-clock sleeps or unseeded jitter in "
                   "retry paths (repro.resilience / repro.dse); inject "
                   "sleep hooks and use deterministic_unit for jitter")

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        if source.tree is None:
            return
        parts = source.module_parts
        if not any(seg in parts for seg in SCOPED_SEGMENTS):
            return
        check_rng = any(seg in parts for seg in RNG_SEGMENTS)
        aliases = walk_imports(source.tree)
        for call in iter_calls(source.tree):
            name = resolve_call_name(call.func, aliases)
            if name is None:
                continue
            if name in _SLEEP_CALLS:
                yield self.diag(
                    source, call,
                    f"direct {name}() call in a retry path; accept an "
                    "injectable hook instead (e.g. ``sleep: Callable"
                    "[[float], None] = time.sleep`` as a default "
                    "parameter) so tests and the chaos harness control "
                    "the clock")
            elif not check_rng:
                continue
            elif name == "numpy.random.default_rng":
                if _is_unseeded(call):
                    yield self.diag(
                        source, call,
                        "unseeded np.random.default_rng() in a "
                        "resilience path; thread an explicit seed, or "
                        "derive jitter from deterministic_unit(...)")
            elif name.startswith("numpy.random."):
                attr = name[len("numpy.random."):]
                if attr not in _NP_RANDOM_OK:
                    yield self.diag(
                        source, call,
                        f"np.random.{attr}() draws from NumPy's global "
                        "RNG state; retry jitter must be reproducible — "
                        "use deterministic_unit(...) or a seeded "
                        "generator")
            elif name == "random.Random":
                if _is_unseeded(call):
                    yield self.diag(
                        source, call,
                        "unseeded random.Random() in a resilience path; "
                        "pass an explicit seed")
            elif name.startswith("random.") and name.count(".") == 1:
                yield self.diag(
                    source, call,
                    f"{name}() draws from the process-global stdlib "
                    "RNG; retry jitter must be reproducible — use "
                    "deterministic_unit(...) instead")
