"""C2L003 — metric names in code and docs/OBSERVABILITY.md must agree.

The observability layer's value rests on the catalog being trustworthy:
an undocumented counter is invisible to anyone reading the docs, and a
documented-but-removed one sends readers hunting for numbers that no
longer exist.  This rule extracts:

- **from code** — every literal first argument of a
  ``registry.counter/gauge/histogram(...)`` call (any receiver), every
  literal ``metric="..."`` keyword, and every *dynamic prefix* from
  f-string names (``f"sim.{name}"`` registers the ``sim.`` namespace as
  dynamically published);
- **from the catalog** — every backticked dotted lowercase identifier
  in the ``## Metric catalog`` section.  ``{k=v}`` label suffixes are
  stripped; ``{a,b,c}`` brace alternation is expanded
  (``fig12.{aps,ann}_sims`` → ``fig12.aps_sims``, ``fig12.ann_sims``).

Every code literal must appear in the catalog; every catalog name must
be a code literal or fall under a dynamic prefix.  Metric calls whose
name cannot be resolved statically (a variable) are ignored.

The rule also anchors the **profiler contract** the same way C2L002
anchors the cache key: when the tree contains ``obs/profile.py``, its
``PROFILE_SCHEMA`` string must be a literal documented in the catalog
file, and ``PROFILE_BUCKETS`` must be a literal
``{"bucket": ("prefix", ...)}`` dict whose bucket names agree — in
both directions — with the backticked names in the catalog's
``## Profile bucket catalog`` section.  A bucket that exists only in
code is invisible to readers of a profile; one that exists only in the
docs promises attribution the profiler never produces.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import Rule, iter_calls
from repro.analysis.rules.cache_key import _schema_literal, _top_level_assign
from repro.analysis.source import Project, SourceFile

__all__ = ["MetricsCatalogRule", "catalog_metric_names",
           "catalog_bucket_names"]

_METRIC_METHODS = {"counter", "gauge", "histogram"}
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_BUCKET_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_BACKTICK_RE = re.compile(r"`([^`]+)`")
_SECTION_HEAD = "## Metric catalog"
_BUCKET_SECTION_HEAD = "## Profile bucket catalog"


def _expand_braces(token: str) -> "list[str]":
    """``a.{x,y}_s`` → ``["a.x_s", "a.y_s"]``; label braces drop."""
    match = re.search(r"\{([^{}]*)\}", token)
    if match is None:
        return [token]
    inner = match.group(1)
    head, tail = token[:match.start()], token[match.end():]
    if "=" in inner:  # a label pattern like {method=aps|ann}: strip it
        return _expand_braces(head + tail)
    out: list[str] = []
    for alt in inner.split(","):
        out.extend(_expand_braces(head + alt.strip() + tail))
    return out


def catalog_metric_names(text: str) -> "dict[str, int]":
    """Metric name → first line number, from the catalog section."""
    names: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = line.strip() == _SECTION_HEAD
            continue
        if not in_section:
            continue
        for raw in _BACKTICK_RE.findall(line):
            for token in _expand_braces(raw.replace("\\", "")):
                if _NAME_RE.match(token):
                    names.setdefault(token, lineno)
    return names


def catalog_bucket_names(text: str) -> "dict[str, int]":
    """Bucket name → first line number, from the profile-bucket section.

    Only dot-free lowercase identifiers count as bucket names; dotted
    tokens in that section are span-name prefixes, not buckets.
    """
    names: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = line.strip() == _BUCKET_SECTION_HEAD
            continue
        if not in_section:
            continue
        for raw in _BACKTICK_RE.findall(line):
            token = raw.replace("\\", "")
            if _BUCKET_RE.match(token):
                names.setdefault(token, lineno)
    return names


def _code_metrics(source: SourceFile):
    """(literal name, node) pairs and dynamic prefixes in one file."""
    literals: list[tuple[str, ast.AST]] = []
    prefixes: set[str] = set()
    assert source.tree is not None
    for call in iter_calls(source.tree):
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _METRIC_METHODS and call.args):
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                literals.append((arg.value, call))
            elif (isinstance(arg, ast.JoinedStr) and arg.values
                  and isinstance(arg.values[0], ast.Constant)
                  and isinstance(arg.values[0].value, str)
                  and "." in arg.values[0].value):
                prefixes.add(arg.values[0].value)
        for kw in call.keywords:
            if (kw.arg == "metric" and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)):
                literals.append((kw.value.value, call))
    return literals, prefixes


class MetricsCatalogRule(Rule):
    code = "C2L003"
    name = "metric-catalog"
    description = ("registry metric names and the docs/OBSERVABILITY.md "
                   "catalog must match in both directions")

    def check_project(self, project: Project) -> "Iterable[Diagnostic]":
        if project.catalog_path is None:
            return  # no catalog in this tree: nothing to check against
        catalog = catalog_metric_names(
            project.catalog_path.read_text(encoding="utf-8"))
        try:
            catalog_rel = str(project.catalog_path.relative_to(project.root))
        except ValueError:
            catalog_rel = str(project.catalog_path)

        used: set[str] = set()
        prefixes: set[str] = set()
        pending: list[tuple[SourceFile, str, ast.AST]] = []
        for source in project.files:
            if source.tree is None:
                continue
            literals, file_prefixes = _code_metrics(source)
            prefixes |= file_prefixes
            for name, node in literals:
                used.add(name)
                if name not in catalog:
                    pending.append((source, name, node))
        for source, name, node in pending:
            yield self.diag(
                source, node,
                f"metric {name!r} is not documented in the "
                f"'{_SECTION_HEAD[3:]}' section of {catalog_rel}")
        for name, lineno in sorted(catalog.items()):
            if name in used:
                continue
            if any(name.startswith(prefix) for prefix in prefixes):
                continue  # published through a dynamic f-string namespace
            yield Diagnostic(
                path=catalog_rel, line=lineno, col=0, code=self.code,
                severity=self.severity,
                message=(f"documented metric {name!r} is never published "
                         "by the code; remove the catalog row or restore "
                         "the metric"))

        profile = project.file_ending_with("obs/profile.py")
        if profile is not None and profile.tree is not None:
            catalog_text = project.catalog_path.read_text(encoding="utf-8")
            yield from self._check_profile_anchors(
                profile, catalog_text, catalog_rel)

    def _check_profile_anchors(self, profile: SourceFile,
                               catalog_text: str,
                               catalog_rel: str) -> "Iterable[Diagnostic]":
        """The profiler's literal anchors vs the documented contract."""
        assert profile.tree is not None
        schema = _top_level_assign(profile.tree, "PROFILE_SCHEMA")
        if not (isinstance(schema, ast.Constant)
                and isinstance(schema.value, str)):
            yield self.diag(
                profile, schema or profile.tree,
                "PROFILE_SCHEMA must be a literal string: profile "
                "artifacts from different processes must carry the same "
                "schema tag")
        elif f"`{schema.value}`" not in catalog_text:
            yield self.diag(
                profile, schema,
                f"profile schema {schema.value!r} is not documented in "
                f"{catalog_rel}; add a backticked reference describing "
                "the artifact layout")

        buckets_node = _top_level_assign(profile.tree, "PROFILE_BUCKETS")
        if buckets_node is None:
            yield self.diag(
                profile, profile.tree,
                "obs/profile.py must declare a PROFILE_BUCKETS literal "
                "mapping each attribution bucket to its span-name "
                "prefixes")
            return
        buckets = _schema_literal(buckets_node)
        if buckets is None:
            yield self.diag(
                profile, buckets_node,
                "PROFILE_BUCKETS must be a literal dict of "
                '{"bucket": ("span-prefix", ...)} so it can be checked '
                "statically")
            return
        documented = catalog_bucket_names(catalog_text)
        for name, (_prefixes, value_node) in sorted(buckets.items()):
            if name not in documented:
                yield self.diag(
                    profile, value_node,
                    f"profile bucket {name!r} is not documented in the "
                    f"'{_BUCKET_SECTION_HEAD[3:]}' section of "
                    f"{catalog_rel}")
        for name, lineno in sorted(documented.items()):
            if name not in buckets:
                yield Diagnostic(
                    path=catalog_rel, line=lineno, col=0, code=self.code,
                    severity=self.severity,
                    message=(f"documented profile bucket {name!r} does "
                             "not exist in PROFILE_BUCKETS; remove the "
                             "row or restore the bucket"))
