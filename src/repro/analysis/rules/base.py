"""Rule protocol shared by every ``c2lint`` check.

A rule is a small stateless object with a ``code`` (``C2L001`` ...), a
default :class:`~repro.analysis.diagnostics.Severity`, and two hooks:

- :meth:`Rule.check_file` — called once per parsed file; the place for
  purely local checks (AST pattern matching).
- :meth:`Rule.check_project` — called once per run with the whole
  :class:`~repro.analysis.source.Project`; the place for cross-file
  checks (cache-key completeness, catalog consistency).

Adding a rule = subclass, implement a hook, append to
``repro.analysis.rules.DEFAULT_RULES`` (the recipe with a worked
example lives in ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.source import Project, SourceFile

__all__ = ["Rule", "dotted_name", "walk_imports"]


class Rule:
    """Base class: identity plus no-op hooks."""

    code: str = "C2L000"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: rules built on :mod:`repro.analysis.flow` are skipped by the
    #: default selection unless the run enables interprocedural analysis
    #: (``c2bound lint --flow``); selecting them by code always works
    requires_flow: bool = False

    def check_file(self, source: SourceFile,
                   project: Project) -> "Iterable[Diagnostic]":
        """Findings local to one file (default: none)."""
        return ()

    def check_project(self, project: Project) -> "Iterable[Diagnostic]":
        """Findings needing the whole project view (default: none)."""
        return ()

    def diag(self, source: "SourceFile | str", node: "ast.AST | None",
             message: str, *,
             severity: "Severity | None" = None) -> Diagnostic:
        """Build a finding anchored to ``node`` (or the whole file)."""
        path = source if isinstance(source, str) else source.rel
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Diagnostic(path=path, line=line, col=col, code=self.code,
                          severity=severity or self.severity,
                          message=message)


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_imports(tree: ast.Module) -> "dict[str, str]":
    """Local alias → canonical dotted origin, for name resolution.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy import random as npr`` → ``{"npr": "numpy.random"}``;
    ``from time import time`` → ``{"time": "time.time"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}")
    return aliases


def resolve_call_name(node: ast.AST,
                      aliases: "dict[str, str]") -> "str | None":
    """Canonical dotted name of a call target, through import aliases."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def iter_calls(tree: ast.Module) -> "Iterator[ast.Call]":
    """Every call expression in the module."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
