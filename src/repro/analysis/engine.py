"""The lint engine: run rules over a project, honor suppressions.

:class:`LintEngine` owns a rule selection; :meth:`LintEngine.run` loads
the project view, executes every per-file and per-project hook, drops
findings disabled by ``# c2lint:`` comments, and returns a sorted
:class:`LintResult`.  Files that fail to parse surface as ``C2L000``
errors rather than aborting the run — a broken file must not hide
findings in the rest of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import Rule, make_rules
from repro.analysis.source import Project, load_project

__all__ = ["LintEngine", "LintResult", "lint_paths"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: "list[Diagnostic]" = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    def count(self, severity: Severity) -> int:
        """Findings at exactly ``severity``."""
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def worst(self) -> "Severity | None":
        """Highest severity present, or ``None`` when clean."""
        return max((d.severity for d in self.diagnostics), default=None)

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        """``1`` when any finding reaches ``fail_on``, else ``0``."""
        worst = self.worst()
        return 1 if worst is not None and worst >= fail_on else 0


class LintEngine:
    """Run a rule selection over lint targets."""

    def __init__(self, rules: "Sequence[Rule] | None" = None) -> None:
        self.rules: "list[Rule]" = (list(rules) if rules is not None
                                    else make_rules())

    def run(self, targets: "Iterable[Path | str]", *,
            root: "Path | None" = None,
            catalog: "Path | None" = None) -> LintResult:
        """Lint ``targets`` (files or directories)."""
        project = load_project([Path(t) for t in targets], root=root,
                               catalog=catalog)
        return self.run_project(project)

    def run_project(self, project: Project) -> LintResult:
        """Lint an already-loaded :class:`Project`."""
        result = LintResult(files_checked=len(project.files))
        by_path = {source.rel: source for source in project.files}
        raw: list[Diagnostic] = []
        for source in project.files:
            if source.read_error is not None:
                os_err = source.read_error
                detail = os_err.strerror or str(os_err)
                raw.append(Diagnostic(
                    path=source.rel, line=0, col=0, code="C2L000",
                    severity=Severity.ERROR,
                    message=f"file unreadable "
                            f"({type(os_err).__name__}): {detail}"))
            elif source.syntax_error is not None:
                err = source.syntax_error
                raw.append(Diagnostic(
                    path=source.rel, line=err.lineno or 0,
                    col=(err.offset or 1) - 1, code="C2L000",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {err.msg}"))
            for rule in self.rules:
                raw.extend(rule.check_file(source, project))
        for rule in self.rules:
            raw.extend(rule.check_project(project))
        for diagnostic in raw:
            source = by_path.get(diagnostic.path)
            if source is not None and source.is_suppressed(
                    diagnostic.code, diagnostic.line):
                result.suppressed += 1
                continue
            result.diagnostics.append(diagnostic)
        result.diagnostics.sort()
        return result


def lint_paths(targets: "Iterable[Path | str]", *,
               rules: "Sequence[str] | None" = None,
               root: "Path | None" = None,
               catalog: "Path | None" = None,
               flow: bool = False) -> LintResult:
    """One-call API: lint ``targets`` with a rule-code selection.

    ``flow=True`` adds the interprocedural C2L2xx rules to the default
    selection (the CLI turns this on unless ``--no-flow`` is given).
    """
    return LintEngine(make_rules(rules, flow=flow)).run(targets, root=root,
                                                        catalog=catalog)
