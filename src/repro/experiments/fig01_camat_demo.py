"""Fig. 1 reproduction: the C-AMAT worked example.

Analyzes the exact five-access trace of the paper's Fig. 1 and reports
every derived parameter next to the paper's value.  This is the one
experiment expected to match *numerically*, not just in shape.
"""

from __future__ import annotations

from repro.camat import TraceAnalyzer, fig1_trace, hit_phases, pure_miss_phases
from repro.io.results import ResultTable

__all__ = ["run_fig1", "PAPER_VALUES"]

#: The paper's stated values for the Fig. 1 example.
PAPER_VALUES: dict[str, float] = {
    "H": 3.0,
    "MR": 0.4,
    "AMP": 2.0,
    "AMAT": 3.8,
    "C_H": 2.5,
    "pMR": 0.2,
    "pAMP": 2.0,
    "C_M": 1.0,
    "C-AMAT": 1.6,
}


def run_fig1() -> ResultTable:
    """Analyze the Fig. 1 trace; one row per parameter."""
    stats = TraceAnalyzer().analyze(fig1_trace())
    measured = {
        "H": stats.hit_time,
        "MR": stats.miss_rate,
        "AMP": stats.avg_miss_penalty,
        "AMAT": stats.amat,
        "C_H": stats.hit_concurrency,
        "pMR": stats.pure_miss_rate,
        "pAMP": stats.pure_avg_miss_penalty,
        "C_M": stats.miss_concurrency,
        "C-AMAT": stats.camat,
    }
    table = ResultTable(["parameter", "paper", "measured", "match"],
                        title="Fig. 1: C-AMAT worked example")
    for key, paper in PAPER_VALUES.items():
        got = measured[key]
        table.add_row(key, paper, got, abs(got - paper) < 1e-12)
    return table


def phase_summary() -> dict:
    """The hit/pure-miss phase decomposition quoted in Section II-A."""
    trace = fig1_trace()
    return {
        "hit_phases": [(p.concurrency, p.duration)
                       for p in hit_phases(trace)],
        "pure_miss_phases": [(p.concurrency, p.duration)
                             for p in pure_miss_phases(trace)],
    }
