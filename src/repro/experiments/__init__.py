"""Per-figure experiment runners.

Each module regenerates one table or figure of the paper as a
:class:`repro.io.results.ResultTable` (series identical to the paper's
axes).  The benchmark harness under ``benchmarks/`` wraps these runners
with pytest-benchmark; the CLI (``c2bound``) exposes them directly.
"""

from repro.experiments.fig01_camat_demo import run_fig1
from repro.experiments.table1_gfactors import run_table1
from repro.experiments.figs08_11_scaling import run_scaling_figure
from repro.experiments.fig07_allocation import run_fig7
from repro.experiments.fig12_aps import run_fig12
from repro.experiments.fig13_apc import run_fig13
from repro.experiments.capacity_bound import run_capacity_bound
from repro.experiments.aps_accuracy import run_aps_accuracy

__all__ = [
    "run_fig1",
    "run_table1",
    "run_scaling_figure",
    "run_fig7",
    "run_fig12",
    "run_fig13",
    "run_capacity_bound",
    "run_aps_accuracy",
]
