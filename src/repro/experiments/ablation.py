"""Ablations of the C2-Bound model's two new factors.

The paper's core claim: "memory bound factors significantly impact the
optimal number of cores as well as their optimal silicon area
allocations".  The ablation removes each factor in turn:

- **full**      — C2-Bound as proposed (concurrency C, capacity-scaled
  problem size g);
- **no-C**      — concurrency forced to 1 (AMAT-based stall: the
  Cassidy/Andreou-style locality-only model);
- **no-g**      — problem size fixed (g = 1: the Hill & Marty
  assumption);
- **neither**   — both removed (Amdahl + AMAT).

Each variant solves the same silicon-constrained optimization; the
output compares optimal core counts and area splits.  A second ablation
sweeps the miss-curve exponent alpha (the sqrt-2-rule design choice) to
show the optimum's sensitivity to the capacity model.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.capacity.missrate import PowerLawMissRate
from repro.core.camat_model import CAMATModel
from repro.core.optimizer import C2BoundOptimizer, DesignPoint
from repro.core.params import ApplicationProfile, MachineParameters
from repro.io.results import ResultTable
from repro.laws.gfunction import PowerLawG

__all__ = ["run_factor_ablation", "run_miss_curve_ablation"]


def _variant_profiles(app: ApplicationProfile) -> dict[str, ApplicationProfile]:
    fixed_g = PowerLawG(0.0, name="fixed")
    return {
        "full (C2-Bound)": app,
        "no concurrency (C=1)": app.with_concurrency(1.0),
        "no capacity scaling (g=1)": dc_replace(app, g=fixed_g),
        "neither (Amdahl+AMAT)": dc_replace(
            app.with_concurrency(1.0), g=fixed_g),
    }


def run_factor_ablation(
    *,
    app: "ApplicationProfile | None" = None,
    machine: "MachineParameters | None" = None,
    n_max: int = 1000,
) -> ResultTable:
    """Optimal designs from the four model variants."""
    app = app if app is not None else ApplicationProfile(
        name="tmm-like", f_seq=0.02, f_mem=0.3, concurrency=4.0,
        g=PowerLawG(1.5))
    machine = machine if machine is not None else MachineParameters()
    table = ResultTable(
        ["variant", "case", "N*", "A0", "A1", "A2", "objective"],
        title="Ablation: impact of the concurrency and capacity factors")
    for name, profile in _variant_profiles(app).items():
        res = C2BoundOptimizer(profile, machine).optimize(n_max=n_max)
        best: DesignPoint = res.best
        objective = (best.throughput if res.case == "maximize-throughput"
                     else best.execution_time)
        table.add_row(name, res.case, best.n, best.config.a0,
                      best.config.a1, best.config.a2, objective)
    return table


def run_miss_curve_ablation(
    *,
    alphas: tuple[float, ...] = (0.3, 0.5, 0.7),
    n_max: int = 1000,
) -> ResultTable:
    """Sensitivity of the optimum to the miss-curve exponent."""
    app = ApplicationProfile(name="tmm-like", f_seq=0.02, f_mem=0.3,
                             concurrency=4.0, g=PowerLawG(0.5, name="sub"))
    machine = MachineParameters()
    table = ResultTable(
        ["alpha", "N*", "A0", "A1+A2", "execution_time"],
        title="Ablation: miss-curve exponent (sqrt-2 rule = 0.5)")
    base = CAMATModel()
    for alpha in alphas:
        model = CAMATModel(
            latencies=base.latencies,
            l1_curve=PowerLawMissRate(
                base_miss_rate=base.l1_curve.base_miss_rate,
                base_capacity_kib=base.l1_curve.base_capacity_kib,
                alpha=alpha,
                compulsory_floor=base.l1_curve.compulsory_floor),
            l2_curve=PowerLawMissRate(
                base_miss_rate=base.l2_curve.base_miss_rate,
                base_capacity_kib=base.l2_curve.base_capacity_kib,
                alpha=alpha,
                compulsory_floor=base.l2_curve.compulsory_floor),
            area_model=base.area_model,
        )
        res = C2BoundOptimizer(app, machine, model).optimize(n_max=n_max)
        best = res.best
        table.add_row(alpha, best.n, best.config.a0,
                      best.config.a1 + best.config.a2,
                      best.execution_time)
    return table
