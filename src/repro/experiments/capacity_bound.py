"""Section V reproduction: on-chip-memory-bounded problem size.

For a kernel with working set ``Y(Z)`` (here TMM: ``Y = 3 Z^{2/3}``-like
in elements, derived from its computation/memory complexity pair) the
bounded problem size is ``max Z s.t. Y(Z) <= X``.  The experiment sweeps
the on-chip capacity ``X``, reports the bounded size, and classifies a
fixed real problem as processor-bound or memory-bound per capacity —
applications cross from memory-bound to processor-bound exactly when the
bound passes their size.
"""

from __future__ import annotations

from repro.capacity.problem_size import classify_boundedness
from repro.io.results import ResultTable

__all__ = ["run_capacity_bound", "tmm_working_set_kib"]


def tmm_working_set_kib(z_flops: float, element_bytes: int = 8) -> float:
    """Working set (KiB) of a ``2n^3``-flop matrix multiply.

    ``Z = 2 n^3`` flops needs ``3 n^2`` elements resident, so
    ``Y(Z) = 3 (Z/2)^{2/3}`` elements.
    """
    if z_flops <= 0:
        return 0.0
    n_cubed = z_flops / 2.0
    elements = 3.0 * n_cubed ** (2.0 / 3.0)
    return elements * element_bytes / 1024.0


def run_capacity_bound(
    *,
    capacities_kib: tuple = (256.0, 1024.0, 4096.0, 16384.0, 65536.0),
    actual_problem_flops: float = 2e9,
) -> ResultTable:
    """Sweep on-chip capacity; classify a fixed TMM problem."""
    table = ResultTable(
        ["on_chip_kib", "bounded_Z_flops", "actual_Z_flops", "case",
         "utilization"],
        title="Section V: LLC-bounded problem size (TMM working set)")
    for x in capacities_kib:
        result = classify_boundedness(
            tmm_working_set_kib, x, actual_problem_flops)
        table.add_row(x, result.bounded_problem_size,
                      actual_problem_flops, result.case.value,
                      result.utilization)
    return table
