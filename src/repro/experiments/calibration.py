"""Calibration loop: measured miss curves -> analytic AMAT predictions.

The optimizer's cache model assumes power-law miss curves.  A real
deployment calibrates them from the target workload (the
:mod:`repro.capacity.fit` path).  This experiment closes that loop and
checks it:

1. generate the workload's address stream;
2. measure its miss rate at several L1 capacities (tag-store replay)
   and fit the power law;
3. simulate the workload at each capacity on the event-driven CMP and
   compare the fitted miss rate against the simulated one, and check
   that execution time moves the way the model's premise requires
   (more capacity never hurts).

The validated quantity is deliberately the *miss rate*, not AMAT: on an
out-of-order machine a bigger L1 filters the cheap (overlapped,
secondary) misses first, so per-access AMAT can stay flat while the
miss count halves — the classic argument for C-AMAT over AMAT, visible
directly in this experiment's columns.
"""

from __future__ import annotations

import numpy as np

from repro.capacity.fit import fit_power_law, measure_miss_curve
from repro.experiments.validation import spearman_rank_correlation
from repro.io.results import ResultTable
from repro.sim.cmp import CMPSimulator
from repro.sim.config import SimulatedChip
from repro.workloads.base import Workload
from repro.workloads.parsec import parsec_like

__all__ = ["run_calibration"]


def run_calibration(
    *,
    workload: "Workload | None" = None,
    capacities_kib: tuple = (4.0, 8.0, 16.0, 32.0, 64.0),
    n_ops: int = 6000,
    seed: int = 17,
) -> tuple[ResultTable, float]:
    """Fit-and-predict vs simulate-and-measure across L1 capacities."""
    from dataclasses import replace

    workload = workload if workload is not None else parsec_like(
        "ocean", n_ops=n_ops)
    rng = np.random.default_rng(seed)
    stream = workload.address_stream(rng)

    # --- Calibrate: fit the L1 miss curve from the raw stream. ----------
    points = measure_miss_curve(stream, capacities_kib)
    fitted = fit_power_law(points)

    # --- Simulate at each capacity; compare against the fit. -------------
    def simulate(l1_kib: float):
        chip = SimulatedChip(n_cores=1)
        chip = replace(chip, l1=replace(chip.l1, size_kib=l1_kib))
        run_rng = np.random.default_rng(seed)
        result = CMPSimulator(chip).run(workload.streams(1, run_rng))
        return result.core_stats(0), result.exec_cycles

    table = ResultTable(
        ["l1_kib", "fitted_MR", "simulated_MR", "simulated_AMAT",
         "simulated_C-AMAT", "exec_cycles"],
        title="Calibration: fitted miss curve vs simulation")
    fitted_mrs: list[float] = []
    simulated_mrs: list[float] = []
    for cap in capacities_kib:
        mr = float(fitted.miss_rate(cap))
        stats, cycles = simulate(float(cap))
        fitted_mrs.append(mr)
        simulated_mrs.append(stats.miss_rate)
        table.add_row(float(cap), mr, stats.miss_rate, stats.amat,
                      stats.camat, cycles)
    rho = spearman_rank_correlation(np.array(fitted_mrs),
                                    np.array(simulated_mrs))
    return table, rho
