"""Model-vs-simulation validation (paper Section IV's purpose).

"The purpose in this section is not to present all the results of the
model, but only to verify its correctness and effectiveness."  The
operational test: across a set of chip configurations, the analytic
per-instruction time of Eq. 10 must *rank* configurations the same way
the cycle-level simulator does — APS only needs the analytic model to
point at the right region of the design space.

The experiment sweeps configurations (core count x cache split), runs
both the analytic model (with the workload's measured profile) and the
event-driven simulator, and reports per-configuration pairs plus the
Spearman rank correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.characterize import characterize
from repro.core.camat_model import CAMATModel
from repro.core.lagrange import LagrangianSystem
from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse.evaluate import SimulatorEvaluator
from repro.io.results import ResultTable
from repro.sim.config import SimulatedChip
from repro.workloads.base import Workload
from repro.workloads.parsec import parsec_like

__all__ = ["run_model_validation", "spearman_rank_correlation"]


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's rho between two samples (average ranks for ties)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size < 2:
        raise ValueError("need two equal-length 1-D samples of size >= 2")

    def ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x)
        r = np.empty_like(x)
        r[order] = np.arange(1, x.size + 1, dtype=float)
        # Average ranks of exact ties.
        for v in np.unique(x):
            mask = x == v
            if mask.sum() > 1:
                r[mask] = r[mask].mean()
        return r

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = float(np.sqrt((ra ** 2).sum() * (rb ** 2).sum()))
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)


@dataclass(frozen=True)
class _Candidate:
    n: int
    a1: float
    a2: float


def run_model_validation(
    *,
    workload: "Workload | None" = None,
    n_ops: int = 4000,
    seed: int = 9,
) -> tuple[ResultTable, float]:
    """Analytic vs simulated cost over a configuration sweep.

    Returns the per-configuration table and Spearman's rho between the
    analytic per-instruction time and the simulated cycles/instruction.
    """
    workload = workload if workload is not None else parsec_like(
        "fluidanimate", n_ops=n_ops)
    # Step 1 (characterize): measure the profile on a reference chip.
    report = characterize(workload, SimulatedChip(n_cores=2), seed=seed)
    profile: ApplicationProfile = report.profile
    machine = MachineParameters()
    system = LagrangianSystem(profile, machine, CAMATModel())
    evaluator = SimulatorEvaluator(workload, seed=seed)

    candidates = [
        _Candidate(n=n, a1=a1, a2=a2)
        for n in (2, 4, 8)
        for a1, a2 in ((0.125, 1.0), (0.5, 4.0), (1.0, 16.0))
    ]
    table = ResultTable(
        ["n", "a1", "a2", "model_cpi", "sim_cpi"],
        title="Validation: analytic Eq. 10 vs event-driven simulation")
    model_costs: list[float] = []
    sim_costs: list[float] = []
    for c in candidates:
        q = system.per_instruction_time(1.0, c.a1, c.a2)
        # Fixed-size per-instruction time on n cores: the simulator runs
        # the same workload regardless of n, so the comparable analytic
        # quantity is Amdahl-scaled (g enters only through the profile's
        # measured concurrency, already inside q).
        model = q * (profile.f_seq + (1.0 - profile.f_seq) / c.n)
        sim = evaluator.evaluate({
            "n": c.n, "issue_width": 4, "rob_size": 128,
            "a1": c.a1, "a2": c.a2,
        })
        model_costs.append(model)
        sim_costs.append(sim)
        table.add_row(c.n, c.a1, c.a2, model, sim)
    rho = spearman_rank_correlation(np.array(model_costs),
                                    np.array(sim_costs))
    return table, rho
