"""Section IV text reproduction: APS accuracy vs the full sweep.

The paper reports 5.96% error between the APS pick and the true optimum
of the full 10^6-point space, attributing the error to Pollack's rule
being empirical.  This experiment measures the same quantity two ways:

1. against the surrogate ground truth on the full-size space (cheap,
   exact enumeration), and
2. against the *real event-driven simulator* on a reduced space (the
   honest but expensive path), where both the APS pick and the full
   sweep use actual simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dse.aps import APSExplorer
from repro.dse.brute import brute_force_search
from repro.dse.evaluate import (
    BudgetedEvaluator,
    SimulatorEvaluator,
    SurrogateEvaluator,
)
from repro.dse.space import DesignSpace, Parameter
from repro.experiments.fig12_aps import fluidanimate_profile, fluidanimate_space
from repro.io.results import ResultTable
from repro.workloads.parsec import parsec_like

__all__ = ["run_aps_accuracy", "APSAccuracy"]


@dataclass(frozen=True)
class APSAccuracy:
    """Measured APS-vs-full-sweep errors."""

    surrogate_error: float
    surrogate_sims: int
    surrogate_space: int
    simulator_error: float
    simulator_sims: int
    simulator_space: int


def run_aps_accuracy(*, n_ops: int = 3000,
                     seed: int = 7) -> tuple[ResultTable, APSAccuracy]:
    """Measure APS error on the surrogate and real-simulator spaces."""
    app, machine = fluidanimate_profile()

    # --- Surrogate path: full-size space, exact ground truth. -----------
    space = fluidanimate_space()
    surrogate = SurrogateEvaluator(app, machine)
    best = float(np.min(surrogate.evaluate_grid(space)))
    aps = APSExplorer(app, machine, space).explore(
        BudgetedEvaluator(surrogate))
    surrogate_error = (aps.best_cost - best) / best

    # --- Real-simulator path: reduced space, honest sweep. --------------
    workload = parsec_like("fluidanimate", n_ops=n_ops)
    sim_space = DesignSpace([
        Parameter("a0", (0.5, 1.0, 2.0)),
        Parameter("a1", (0.25, 0.5, 1.0)),
        Parameter("a2", (2.0, 4.0, 8.0)),
        Parameter("n", (2, 4, 8)),
        Parameter("issue_width", (2, 4, 8)),
        Parameter("rob_size", (32, 128)),
    ])
    sim_eval = BudgetedEvaluator(SimulatorEvaluator(workload, seed=seed))
    full = brute_force_search(sim_space, sim_eval)
    aps_sim_eval = BudgetedEvaluator(SimulatorEvaluator(workload, seed=seed))
    aps_sim = APSExplorer(app, machine, sim_space).explore(aps_sim_eval)
    simulator_error = (aps_sim.best_cost - full.best_cost) / full.best_cost

    accuracy = APSAccuracy(
        surrogate_error=surrogate_error,
        surrogate_sims=aps.simulations,
        surrogate_space=space.size,
        simulator_error=simulator_error,
        simulator_sims=aps_sim.simulations,
        simulator_space=sim_space.size,
    )
    table = ResultTable(
        ["ground_truth", "space_size", "aps_sims", "aps_rel_error"],
        title="Section IV: APS accuracy vs full design-space sweep")
    table.add_row("surrogate (full-size space)", space.size,
                  aps.simulations, surrogate_error)
    table.add_row("event-driven simulator (reduced)", sim_space.size,
                  aps_sim.simulations, simulator_error)
    return table, accuracy
