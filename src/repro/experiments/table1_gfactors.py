"""Table I reproduction: g(N) factors of the four kernels.

For each application the table reports the paper's complexity pair, the
paper's quoted ``g(N)``, and our derived scale function evaluated
symbolically (power-law exponent) or numerically (FFT).
"""

from __future__ import annotations

from repro.io.results import ResultTable
from repro.laws.gfunction import TABLE_I, FFTLikeG, PowerLawG

__all__ = ["run_table1"]


def run_table1() -> ResultTable:
    """One row per Table I application."""
    table = ResultTable(
        ["application", "computation", "memory", "paper_g", "derived_g",
         "regime"],
        title="Table I: problem-size scale functions g(N)")
    for key, entry in TABLE_I.items():
        g = entry["g"]
        if isinstance(g, PowerLawG):
            derived = f"N^{g.exponent:g}"
        elif isinstance(g, FFTLikeG):
            # Table I's 2N is this g evaluated at N = m_ref.
            derived = "N*log2(N*m)/log2(m)"
        else:  # pragma: no cover - future g types
            derived = type(g).__name__
        table.add_row(entry["description"], entry["computation"],
                      entry["memory"], entry["paper_g"], derived,
                      g.regime())
    return table
