"""Fig. 12 reproduction: number of simulations per DSE method.

The paper's fluidanimate case study: six parameters x ten values =
a 10^6-point space.  APS solves ``(A0, A1, A2, N)`` analytically and
simulates only issue width x ROB size = 10^2 points; the ANN predictor
needs 613 simulations to reach the same 5.96% accuracy; the full sweep
needs 10^6.

Substitution note (documented in DESIGN.md): our ground truth for the
full space is the calibrated analytic surrogate (the authors used 128
Xeons for four weeks).  The reproduction targets the *ratios*: APS sims
= (simulated-parameter grid) << ANN sims << full space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import ApplicationProfile, MachineParameters
from repro.dse.ann import ANNPredictorSearch
from repro.dse.aps import APSExplorer
from repro.dse.evaluate import BudgetedEvaluator, SurrogateEvaluator
from repro.dse.ga import genetic_search
from repro.dse.rsm import response_surface_search
from repro.dse.space import DesignSpace, Parameter
from repro.io.results import ResultTable
from repro.laws.gfunction import PowerLawG
from repro.obs import get_registry, get_tracer

__all__ = ["run_fig12", "fluidanimate_space", "fluidanimate_profile",
           "Fig12Outcome"]


def fluidanimate_profile() -> tuple[ApplicationProfile, MachineParameters]:
    """The case-study inputs (fluidanimate-like characterization)."""
    app = ApplicationProfile(
        name="fluidanimate", f_seq=0.02, f_mem=0.35,
        g=PowerLawG(1.0, name="fluidanimate"), concurrency=4.0,
        overlap_ratio=0.0, ic0=1e9)
    machine = MachineParameters(total_area=400.0, shared_area=40.0)
    return app, machine


def fluidanimate_space(values_per_param: int = 10) -> DesignSpace:
    """Six parameters x ``values_per_param`` values (paper: 10 -> 10^6)."""
    k = values_per_param

    def grid(lo: float, hi: float) -> tuple:
        import numpy as np
        return tuple(float(v) for v in np.geomspace(lo, hi, k))

    def igrid(lo: int, hi: int) -> tuple:
        import numpy as np
        vals = np.unique(np.round(np.geomspace(lo, hi, k)).astype(int))
        # Pad to exactly k distinct values if rounding collapsed some.
        extras = [v for v in range(lo, hi + 1) if v not in vals]
        vals = sorted(set(vals) | set(extras[: k - len(vals)]))
        return tuple(int(v) for v in vals[:k])

    return DesignSpace([
        Parameter("a0", grid(0.1, 4.0)),
        Parameter("a1", grid(0.05, 2.0)),
        Parameter("a2", grid(0.05, 4.0)),
        Parameter("n", igrid(2, 256)),
        Parameter("issue_width", igrid(1, 10)),
        Parameter("rob_size", igrid(16, 512)),
    ])


@dataclass(frozen=True)
class Fig12Outcome:
    """Raw numbers behind the Fig. 12 bars."""

    space_size: int
    aps_sims: int
    ann_sims: int
    ga_sims: int
    rsm_sims: int
    full_sims: int
    aps_error: float
    ann_error: float
    ga_error: float
    rsm_error: float

    @property
    def aps_vs_ann_ratio(self) -> float:
        """Paper: APS used 16.3% of ANN's simulation count."""
        return self.aps_sims / self.ann_sims if self.ann_sims else float("inf")


def run_fig12(*, values_per_param: int = 10,
              seed: int = 0) -> tuple[ResultTable, Fig12Outcome]:
    """Compare DSE methods on the fluidanimate-like space.

    Errors are relative to the surrogate ground truth's global optimum
    (found by exact enumeration, which the surrogate makes affordable).
    """
    tracer = get_tracer()
    app, machine = fluidanimate_profile()
    space = fluidanimate_space(values_per_param)
    surrogate = SurrogateEvaluator(app, machine)

    # Ground truth: exact (vectorized) enumeration of the surrogate —
    # the substituted "128 Xeons x 4 weeks" full sweep.
    import numpy as np
    with tracer.span("experiment.fig12.full_sweep", space_size=space.size):
        best_cost = float(np.min(surrogate.evaluate_grid(space)))

    def error_of(cost: float) -> float:
        return (cost - best_cost) / best_cost

    with tracer.span("experiment.fig12.aps"):
        aps_budget = BudgetedEvaluator(surrogate, method="aps")
        aps = APSExplorer(app, machine, space).explore(aps_budget)

    # Paper protocol: ANN trains until it matches APS's accuracy (the
    # paper quotes 5.96% for both); floor the target to stay meaningful.
    ann_target = max(error_of(aps.best_cost), 0.0596)
    with tracer.span("experiment.fig12.ann"):
        ann_budget = BudgetedEvaluator(surrogate, method="ann")
        ann = ANNPredictorSearch(space, seed=seed).search(
            ann_budget, target_error=ann_target)

    with tracer.span("experiment.fig12.ga"):
        ga_budget = BudgetedEvaluator(surrogate, method="ga")
        ga = genetic_search(space, ga_budget, seed=seed)

    with tracer.span("experiment.fig12.rsm"):
        rsm_budget = BudgetedEvaluator(surrogate, method="rsm")
        rsm = response_surface_search(space, rsm_budget, seed=seed)

    registry = get_registry()
    registry.gauge("fig12.space_size").set(space.size)
    registry.gauge("fig12.aps_sims").set(aps.simulations)
    registry.gauge("fig12.ann_sims").set(ann.simulations)
    registry.gauge("fig12.ga_sims").set(ga.evaluations)
    registry.gauge("fig12.rsm_sims").set(rsm.evaluations)

    outcome = Fig12Outcome(
        space_size=space.size,
        aps_sims=aps.simulations,
        ann_sims=ann.simulations,
        ga_sims=ga.evaluations,
        rsm_sims=rsm.evaluations,
        full_sims=space.size,
        aps_error=error_of(aps.best_cost),
        ann_error=error_of(ann.best_cost),
        ga_error=error_of(ga.best_cost),
        rsm_error=error_of(rsm.best_cost),
    )
    table = ResultTable(
        ["method", "simulations", "rel_error_vs_optimum"],
        title=f"Fig. 12: simulations needed (space = {space.size:,} points)")
    table.add_row("full sweep", outcome.full_sims, 0.0)
    table.add_row("ANN (Ipek)", outcome.ann_sims, outcome.ann_error)
    table.add_row("GA", outcome.ga_sims, outcome.ga_error)
    table.add_row("RSM", outcome.rsm_sims, outcome.rsm_error)
    table.add_row("APS (C2-Bound)", outcome.aps_sims, outcome.aps_error)
    return table, outcome
