"""Figs. 8-11 reproduction: memory-bounded scaling sweeps.

The paper sweeps core count N with ``g(N) = N^{3/2}`` and three memory
concurrency levels C in {1, 4, 8}:

- Figs. 8-9: problem size ``W`` and execution time ``T`` vs N for
  ``f_mem`` = 0.3 / 0.9;
- Figs. 10-11: throughput ``W/T`` vs N for the same ``f_mem`` values.

``W`` is normalized to ``W(1) = 1`` and ``T`` to ``T(1, C=1) = 1`` so the
series are directly comparable to the paper's axes.  Expected shape
(paper Section IV): ``T`` tracks ``W`` when C = 1; higher C lowers T at
every N; W/T saturates near ~100 cores for C = 1 while higher C keeps
earning to larger N and a higher level; larger ``f_mem`` raises T and
lowers W/T.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizer import C2BoundOptimizer
from repro.core.params import ApplicationProfile, MachineParameters
from repro.io.results import ResultTable
from repro.laws.gfunction import PowerLawG

__all__ = ["run_scaling_figure", "default_ns"]


def default_ns(n_max: int = 1000, points: int = 25) -> np.ndarray:
    """Geometric N axis, 1..n_max."""
    return np.unique(np.round(np.geomspace(1, n_max, points)).astype(int))


def run_scaling_figure(
    *,
    f_mem: float,
    quantity: str,
    concurrencies: tuple[float, ...] = (1.0, 4.0, 8.0),
    ns: "np.ndarray | None" = None,
    f_seq: float = 0.02,
    machine: "MachineParameters | None" = None,
) -> ResultTable:
    """Sweep one of the four figures.

    Parameters
    ----------
    f_mem:
        0.3 for Figs. 8/10, 0.9 for Figs. 9/11.
    quantity:
        ``"WT"`` (Figs. 8-9: problem size and execution time) or
        ``"throughput"`` (Figs. 10-11: W/T).
    concurrencies:
        The C values swept (paper: 1, 4, 8).
    ns:
        Core-count axis; defaults to a geometric 1..1000 grid.
    f_seq:
        Sequential fraction of the workload.
    machine:
        Machine parameters (defaults shared with the optimizer).
    """
    if quantity not in ("WT", "throughput"):
        raise ValueError(f"quantity must be 'WT' or 'throughput', got {quantity!r}")
    ns = default_ns() if ns is None else np.asarray(ns, dtype=int)
    machine = machine if machine is not None else MachineParameters()
    g = PowerLawG(1.5, name="tmm")
    base_app = ApplicationProfile(name="fig8-11", f_seq=f_seq, f_mem=f_mem, g=g)

    sweeps: dict[float, list] = {}
    t_ref: "float | None" = None
    for c in concurrencies:
        opt = C2BoundOptimizer(base_app.with_concurrency(c), machine)
        points = opt.sweep(list(ns))
        sweeps[c] = points
        if t_ref is None:
            t_ref = points[0].execution_time
    assert t_ref is not None

    if quantity == "WT":
        columns = ["N", "W"] + [f"T(C={c:g})" for c in concurrencies]
        title = f"Figs. 8/9: W and T of memory-bounded scaling (f_mem={f_mem})"
    else:
        columns = ["N"] + [f"W/T(C={c:g})" for c in concurrencies]
        title = f"Figs. 10/11: throughput W/T (f_mem={f_mem})"
    table = ResultTable(columns, title=title)
    w0 = sweeps[concurrencies[0]][0].problem_size
    for i, n in enumerate(ns):
        if quantity == "WT":
            row = [int(n), sweeps[concurrencies[0]][i].problem_size / w0]
            row += [sweeps[c][i].execution_time / t_ref
                    for c in concurrencies]
        else:
            row = [int(n)]
            row += [sweeps[c][i].throughput * t_ref / w0
                    for c in concurrencies]
        table.add_row(*row)
    return table
