"""Fig. 7 reproduction: core allocation for multiple tasks on one CMP.

Three applications share a chip:

1. large ``f_seq``, low concurrency C  -> should receive the fewest cores;
2. small ``f_seq``, high C             -> should receive the most;
3. in between                          -> in between.

The water-filling allocator of :mod:`repro.alloc.scheduler` reproduces
this ordering from the C2-Bound utilities alone.
"""

from __future__ import annotations

from repro.alloc.scheduler import allocate_cores
from repro.core.params import ApplicationProfile, MachineParameters
from repro.io.results import ResultTable
from repro.laws.gfunction import PowerLawG

__all__ = ["run_fig7", "FIG7_APPS"]


def FIG7_APPS() -> list[ApplicationProfile]:
    """The three Fig. 7 archetypes."""
    g = PowerLawG(1.0, name="linear")
    return [
        ApplicationProfile(name="app1-seq-lowC", f_seq=0.40, f_mem=0.4,
                           concurrency=1.0, g=g),
        ApplicationProfile(name="app2-par-highC", f_seq=0.01, f_mem=0.4,
                           concurrency=8.0, g=g),
        ApplicationProfile(name="app3-middle", f_seq=0.10, f_mem=0.4,
                           concurrency=4.0, g=g),
    ]


def run_fig7(total_cores: int = 64,
             machine: "MachineParameters | None" = None) -> ResultTable:
    """Allocate ``total_cores`` across the three archetypes."""
    machine = machine if machine is not None else MachineParameters()
    apps = FIG7_APPS()
    result = allocate_cores(apps, machine, total_cores)
    table = ResultTable(
        ["application", "f_seq", "C", "cores", "throughput"],
        title=f"Fig. 7: core allocation for {total_cores} cores")
    for app, cores, util in zip(apps, result.cores, result.utilities):
        table.add_row(app.name, app.f_seq, app.concurrency, cores, util)
    return table
