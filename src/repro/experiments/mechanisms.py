"""Concurrency-mechanism sweep (paper Section II-A).

"C_H can be contributed by caches with multi-port, multi-bank or
pipelined structures.  C_M can be contributed by non-blocking cache
structures.  In addition, out-of-order execution, multi-issue pipeline,
multi-threading and chip multiprocessor (CMP) can all increase C_H and
C_M."

This experiment turns that paragraph into a measured table: starting
from a deliberately concurrency-starved core (blocking cache, single
bank, scalar issue, tiny ROB), each mechanism is enabled in turn on the
same workload, and the detector-measurable quantities (C_H, C_M,
C = AMAT/C-AMAT, C-AMAT) are reported.  Every row should move the
parameter the paper says it moves.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.io.results import ResultTable
from repro.sim.cmp import CMPSimulator
from repro.sim.config import CacheConfig, CoreMicroConfig, SimulatedChip
from repro.workloads.synthetic import SyntheticWorkload

__all__ = ["run_mechanism_sweep", "baseline_chip"]


def baseline_chip() -> SimulatedChip:
    """A concurrency-starved core: every mechanism off/minimal."""
    return SimulatedChip(
        n_cores=1,
        core=CoreMicroConfig(issue_width=1, rob_size=8, smt_threads=1),
        l1=CacheConfig(size_kib=32.0, assoc=8, hit_latency=3,
                       mshr_entries=1, banks=1, prefetch="none"),
    )


def _workload(n_ops: int) -> SyntheticWorkload:
    return SyntheticWorkload(
        name="mechanism-probe", n_ops=n_ops, working_set_kib=16 * 1024,
        hot_fraction=0.45, hot_set_kib=12.0, warm_fraction=0.15,
        warm_set_kib=128.0, stream_fraction=0.3, burst_length=4.0,
        f_mem=0.4, write_fraction=0.2)


def run_mechanism_sweep(*, n_ops: int = 6000, seed: int = 21) -> ResultTable:
    """Enable one mechanism at a time; measure the C-AMAT parameters."""
    base = baseline_chip()
    variants: list[tuple[str, SimulatedChip, int]] = [
        ("baseline (all off)", base, 1),
        ("non-blocking cache (8 MSHRs)",
         replace(base, l1=replace(base.l1, mshr_entries=8)), 1),
        ("multi-bank L1 (4 banks)",
         replace(base, l1=replace(base.l1, banks=4)), 1),
        ("4-issue pipeline",
         replace(base, core=replace(base.core, issue_width=4)), 1),
        ("128-entry ROB",
         replace(base, core=replace(base.core, rob_size=128)), 1),
        ("stride prefetcher",
         replace(base, l1=replace(base.l1, prefetch="stride",
                                  prefetch_degree=4)), 1),
        ("SMT (2 threads)",
         replace(base, core=replace(base.core, issue_width=2,
                                    smt_threads=2)), 2),
        ("all mechanisms",
         replace(base,
                 core=replace(base.core, issue_width=4, rob_size=128),
                 l1=replace(base.l1, mshr_entries=8, banks=4,
                            prefetch="stride", prefetch_degree=4)), 1),
    ]
    table = ResultTable(
        ["mechanism", "C_H", "C_M", "C", "C-AMAT", "AMAT"],
        title="Concurrency mechanisms vs measured C-AMAT parameters")
    workload = _workload(n_ops)
    for label, chip, n_streams in variants:
        rng = np.random.default_rng(seed)
        streams = workload.streams(n_streams, rng)
        result = CMPSimulator(chip).run(streams)
        stats = result.core_stats(0)
        table.add_row(label, stats.hit_concurrency,
                      stats.miss_concurrency, stats.concurrency,
                      stats.camat, stats.amat)
    return table
