"""Fig. 13 reproduction: APC at each layer of the memory hierarchy.

Runs the PARSEC/SPLASH-2-like suite through the event-driven simulator
and measures APC per layer.  Expected shape (paper Section V):
``APC(L1) > APC(LLC) > APC(DRAM)`` for every benchmark, with a clear
gap between on-chip and off-chip layers — the basis for the claim that
the relevant capacity bound is the on-chip memory bound.
"""

from __future__ import annotations

import numpy as np

from repro.io.results import ResultTable
from repro.sim.cmp import CMPSimulator
from repro.sim.config import SimulatedChip
from repro.workloads.parsec import PARSEC_LIKE, parsec_like

__all__ = ["run_fig13"]


def run_fig13(*, benchmarks: "tuple[str, ...] | None" = None,
              n_ops: int = 20000, n_cores: int = 1,
              seed: int = 42) -> ResultTable:
    """Measure per-layer APC for each benchmark.

    Parameters
    ----------
    benchmarks:
        Suite subset (defaults to the full PARSEC-like suite).
    n_ops:
        Memory operations per benchmark run.
    n_cores:
        Chip size (the paper's per-layer measurement is per machine; a
        single-core run isolates the hierarchy layers most cleanly).
    seed:
        Workload generation seed.
    """
    names = benchmarks if benchmarks is not None else tuple(PARSEC_LIKE)
    table = ResultTable(
        ["benchmark", "APC_L1", "APC_LLC", "APC_DRAM",
         "gap_L1_LLC", "gap_LLC_DRAM"],
        title="Fig. 13: APC per memory layer")
    for name in names:
        rng = np.random.default_rng(seed)
        workload = parsec_like(name, n_ops=n_ops)
        chip = SimulatedChip(n_cores=n_cores)
        result = CMPSimulator(chip).run(workload.streams(n_cores, rng))
        apc = result.layer_apc()
        layers = apc.as_dict()
        gaps = apc.gap_ratios()
        table.add_row(name, layers["L1"], layers["LLC"], layers["DRAM"],
                      gaps.get("L1/LLC", float("nan")),
                      gaps.get("LLC/DRAM", float("nan")))
    return table
