"""C2-Bound: a capacity- and concurrency-driven analytical model for
many-core design.

Reproduction of Liu & Sun, SC'15 (DOI 10.1145/2807591.2807641).

Quick start
-----------
>>> from repro import ApplicationProfile, MachineParameters, C2BoundOptimizer
>>> app = ApplicationProfile(f_seq=0.02, f_mem=0.3, concurrency=4.0)
>>> result = C2BoundOptimizer(app, MachineParameters()).optimize()
>>> result.case
'maximize-throughput'

Package map
-----------
- :mod:`repro.camat` — C-AMAT latency model and trace analyzer.
- :mod:`repro.laws` — Amdahl / Gustafson / Sun-Ni speedup laws, g(N).
- :mod:`repro.core` — the C2-Bound objective, constraints and optimizer.
- :mod:`repro.capacity` — miss-rate curves, working sets, capacity bounds.
- :mod:`repro.metrics` — APC and throughput metrics.
- :mod:`repro.sim` — event-driven CMP simulator (GEM5+DRAMSim2 substitute).
- :mod:`repro.detector` — online HCD/MCD C-AMAT detection hardware model.
- :mod:`repro.workloads` — Table I kernels and PARSEC-like generators.
- :mod:`repro.dse` — APS and the ANN/GA/RSM exploration baselines.
- :mod:`repro.alloc` — multi-application core/cache allocation.
- :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.camat import (
    AccessTrace,
    AMATParameters,
    CAMATParameters,
    MemoryAccess,
    TraceAnalyzer,
    amat,
    camat,
    fig1_trace,
)
from repro.core import (
    ApplicationProfile,
    C2BoundOptimizer,
    CAMATModel,
    ChipConfig,
    DesignPoint,
    MachineParameters,
    execution_time,
    objective_jd,
    pollack_cpi,
)
from repro.laws import (
    PowerLawG,
    amdahl_speedup,
    gustafson_speedup,
    sun_ni_speedup,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # camat
    "AccessTrace",
    "MemoryAccess",
    "TraceAnalyzer",
    "AMATParameters",
    "CAMATParameters",
    "amat",
    "camat",
    "fig1_trace",
    # laws
    "amdahl_speedup",
    "gustafson_speedup",
    "sun_ni_speedup",
    "PowerLawG",
    # core
    "ApplicationProfile",
    "MachineParameters",
    "ChipConfig",
    "CAMATModel",
    "C2BoundOptimizer",
    "DesignPoint",
    "execution_time",
    "objective_jd",
    "pollack_cpi",
]
