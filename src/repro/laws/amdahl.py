"""Amdahl's law (fixed problem size speedup).

Amdahl's law is the ``g(N) = 1`` special case of Sun-Ni's law (paper
Section II-B): the workload does not grow with the machine, so speedup is
limited by the sequential fraction ``f_seq``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["amdahl_speedup"]


def amdahl_speedup(f_seq: float, n: "float | np.ndarray") -> "float | np.ndarray":
    """Fixed-size speedup ``1 / (f_seq + (1 - f_seq)/N)``.

    Parameters
    ----------
    f_seq:
        Sequential fraction of the workload, in ``[0, 1]``.
    n:
        Number of processors (scalar or array), ``>= 1``.

    Returns
    -------
    float or numpy.ndarray
        Speedup with the same shape as ``n``.
    """
    _validate(f_seq, n)
    n_arr = np.asarray(n, dtype=float)
    speedup = 1.0 / (f_seq + (1.0 - f_seq) / n_arr)
    return float(speedup) if np.isscalar(n) else speedup


def _validate(f_seq: float, n) -> None:
    if not 0.0 <= f_seq <= 1.0:
        raise InvalidParameterError(f"f_seq must be in [0, 1], got {f_seq}")
    if np.any(np.asarray(n, dtype=float) < 1.0):
        raise InvalidParameterError("processor count must be >= 1")
