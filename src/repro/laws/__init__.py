"""Parallel speedup laws (paper Section II-B).

Sun-Ni's memory-bounded speedup law (Eq. 4) generalizes both Amdahl's law
(``g(N) = 1``) and Gustafson's law (``g(N) = N``).  The problem-size scale
function ``g`` is derived from an application's computation/memory
complexity pair via ``W = h(M)`` and ``g(N) = h(N*M) / h(M)`` (Table I).
"""

from repro.laws.amdahl import amdahl_speedup
from repro.laws.gustafson import gustafson_speedup
from repro.laws.sunni import (
    memory_bounded_speedup,
    scaled_problem_size,
    sun_ni_speedup,
)
from repro.laws.gfunction import (
    GFunction,
    PowerLawG,
    FFTLikeG,
    FixedSizeG,
    LinearG,
    TABLE_I,
    derive_g_from_complexity,
    g_from_h,
    scaling_regime,
)

__all__ = [
    "amdahl_speedup",
    "gustafson_speedup",
    "sun_ni_speedup",
    "memory_bounded_speedup",
    "scaled_problem_size",
    "GFunction",
    "PowerLawG",
    "FFTLikeG",
    "FixedSizeG",
    "LinearG",
    "TABLE_I",
    "derive_g_from_complexity",
    "g_from_h",
    "scaling_regime",
]
