"""Gustafson's law (fixed-time, linearly scaled speedup).

Gustafson's law is the ``g(N) = N`` special case of Sun-Ni's law (paper
Section II-B): the parallel part of the workload grows linearly with the
machine so the speedup is ``f_seq + (1 - f_seq) * N``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["gustafson_speedup"]


def gustafson_speedup(f_seq: float, n: "float | np.ndarray") -> "float | np.ndarray":
    """Scaled speedup ``f_seq + (1 - f_seq) * N``.

    Parameters
    ----------
    f_seq:
        Sequential fraction of the (scaled) workload, in ``[0, 1]``.
    n:
        Number of processors (scalar or array), ``>= 1``.
    """
    if not 0.0 <= f_seq <= 1.0:
        raise InvalidParameterError(f"f_seq must be in [0, 1], got {f_seq}")
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 1.0):
        raise InvalidParameterError("processor count must be >= 1")
    speedup = f_seq + (1.0 - f_seq) * n_arr
    return float(speedup) if np.isscalar(n) else speedup
