"""Sun-Ni's law: memory-bounded speedup (paper Section II-B, Eq. 4).

When the machine grows to ``N`` processor-memory pairs, the available
memory grows ``N`` times and the problem size scales by
``g(N) = h(N*M)/h(M)`` where ``W = h(M)`` relates problem size to memory.
The resulting speedup

    S(N) = (f_seq + (1 - f_seq) * g(N)) / (f_seq + (1 - f_seq) * g(N) / N)

reduces to Amdahl's law when ``g(N) = 1`` and Gustafson's law when
``g(N) = N``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["sun_ni_speedup", "memory_bounded_speedup", "scaled_problem_size"]


def sun_ni_speedup(
    f_seq: float,
    n: "float | np.ndarray",
    g: "Callable[[np.ndarray], np.ndarray] | float | np.ndarray",
) -> "float | np.ndarray":
    """Memory-bounded speedup, Eq. 4.

    Parameters
    ----------
    f_seq:
        Sequential fraction of the original workload, in ``[0, 1]``.
    n:
        Number of processor-memory nodes (scalar or array), ``>= 1``.
    g:
        The problem-size scale function.  Either a callable ``g(N)``
        (e.g. a :class:`repro.laws.GFunction`), or a precomputed scalar /
        array of ``g`` values matching ``n``.

    Returns
    -------
    float or numpy.ndarray
    """
    if not 0.0 <= f_seq <= 1.0:
        raise InvalidParameterError(f"f_seq must be in [0, 1], got {f_seq}")
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 1.0):
        raise InvalidParameterError("node count must be >= 1")
    g_vals = np.asarray(g(n_arr) if callable(g) else g, dtype=float)
    if np.any(g_vals <= 0.0):
        raise InvalidParameterError("g(N) must be positive")
    scaled = (1.0 - f_seq) * g_vals
    speedup = (f_seq + scaled) / (f_seq + scaled / n_arr)
    return float(speedup) if np.isscalar(n) else speedup


def scaled_problem_size(
    w: float,
    n: "float | np.ndarray",
    h: Callable[[np.ndarray], np.ndarray],
    h_inv: Callable[[float], float],
) -> "float | np.ndarray":
    """Scaled problem size ``W' = h(N * h^{-1}(W))``.

    Parameters
    ----------
    w:
        Original (single-node) problem size, ``> 0``.
    n:
        Memory scale factor (number of nodes).
    h:
        Problem-size-from-memory function ``W = h(M)``.
    h_inv:
        Its inverse ``M = h^{-1}(W)``.
    """
    if w <= 0:
        raise InvalidParameterError(f"problem size must be positive, got {w}")
    n_arr = np.asarray(n, dtype=float)
    if np.any(n_arr < 1.0):
        raise InvalidParameterError("node count must be >= 1")
    m = float(h_inv(w))
    if m <= 0:
        raise InvalidParameterError("h_inv(W) must be positive")
    scaled = np.asarray(h(n_arr * m), dtype=float)
    return float(scaled) if np.isscalar(n) else scaled


def memory_bounded_speedup(
    f_seq: float,
    w: float,
    n: "float | np.ndarray",
    h: Callable[[np.ndarray], np.ndarray],
    h_inv: Callable[[float], float],
) -> "float | np.ndarray":
    """Sun-Ni speedup in its general (pre-Eq.-4) form.

    Uses the raw definition
    ``S = (f_seq*W + (1-f_seq)*W') / (f_seq*W + (1-f_seq)*W'/N)`` with
    ``W' = h(N*h^{-1}(W))``.  For power-law ``h`` this equals
    :func:`sun_ni_speedup` with ``g(N) = W'/W`` (the paper's derivation);
    for non-power-law ``h`` it is the exact statement of the law.
    """
    if not 0.0 <= f_seq <= 1.0:
        raise InvalidParameterError(f"f_seq must be in [0, 1], got {f_seq}")
    n_arr = np.asarray(n, dtype=float)
    w_scaled = np.asarray(scaled_problem_size(w, n_arr, h, h_inv), dtype=float)
    num = f_seq * w + (1.0 - f_seq) * w_scaled
    den = f_seq * w + (1.0 - f_seq) * w_scaled / n_arr
    speedup = num / den
    return float(speedup) if np.isscalar(n) else speedup
