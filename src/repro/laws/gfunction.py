"""Problem-size scale functions ``g(N)`` and their derivation (Table I).

For an application with computation complexity ``W(n)`` and memory
complexity ``M(n)`` in the input dimension ``n``, the paper derives
``W = h(M)`` and ``g(N) = h(N*M)/h(M)``.  For the power-law pairs in
Table I this is exact:

    TMM           W = n^3,  M = n^2       ->  g(N) = N^{3/2}
    band sparse   W = n,    M = n         ->  g(N) = N
    stencil       W = n,    M = n         ->  g(N) = N
    FFT           W = n*log2(n), M = n    ->  g(N) = N * log2(N*m)/log2(m)

The FFT row is not a pure power law; the paper's Table I quotes ``2N``,
which is this expression evaluated at ``N = m`` (doubling the logarithm).
We implement the exact form (:class:`FFTLikeG`) and note the Table I value
as its special case; asymptotically FFT's ``g`` is Theta(N) i.e. *linear*
regime, matching the paper's case split where ``g(N) >= O(N)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "GFunction",
    "PowerLawG",
    "LinearG",
    "FixedSizeG",
    "FFTLikeG",
    "TABLE_I",
    "derive_g_from_complexity",
    "g_from_h",
    "scaling_regime",
]


class GFunction:
    """Base class for problem-size scale functions.

    A ``GFunction`` is callable on scalar or array ``N`` (with
    ``g(1) == 1``) and exposes :meth:`regime`, the comparison of ``g(N)``
    against ``O(N)`` that drives the optimizer's case split
    (paper Section III-C).
    """

    name: str = "g"

    def __call__(self, n: "float | np.ndarray") -> "float | np.ndarray":
        n_arr = np.asarray(n, dtype=float)
        if np.any(n_arr < 1.0):
            raise InvalidParameterError("g(N) requires N >= 1")
        out = self._evaluate(n_arr)
        return float(out) if np.isscalar(n) else out

    def _evaluate(self, n: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def regime(self) -> str:
        """Return 'superlinear', 'linear' or 'sublinear' vs ``O(N)``.

        The default implementation estimates ``lim g(N)/N`` numerically;
        subclasses with closed forms override it.
        """
        big = np.array([1e6, 1e7, 1e8])
        ratio = self._evaluate(big) / big
        if ratio[-1] > ratio[0] * 1.0001 and ratio[-1] > 1.5:
            return "superlinear"
        if ratio[-1] < ratio[0] * 0.9999 and ratio[-1] < 0.75:
            return "sublinear"
        return "linear"

    def at_least_linear(self) -> bool:
        """Paper predicate ``g(N) >= O(N)`` (case I of the APS algorithm)."""
        return self.regime() in ("linear", "superlinear")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True, repr=False)
class PowerLawG(GFunction):
    """``g(N) = N^b``, the form produced by any power-law ``h``.

    ``b > 1`` is superlinear scaling (e.g. TMM's 3/2), ``b == 1`` is
    Gustafson scaling, ``0 < b < 1`` is sublinear, ``b == 0`` is Amdahl
    (fixed size).
    """

    exponent: float
    name: str = "power"

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise InvalidParameterError(
                f"g exponent must be >= 0, got {self.exponent}")

    def _evaluate(self, n: np.ndarray) -> np.ndarray:
        return n ** self.exponent

    def regime(self) -> str:
        if self.exponent > 1.0:
            return "superlinear"
        if self.exponent == 1.0:
            return "linear"
        return "sublinear"


def LinearG() -> PowerLawG:
    """Gustafson scaling, ``g(N) = N``."""
    return PowerLawG(exponent=1.0, name="linear")


def FixedSizeG() -> PowerLawG:
    """Amdahl scaling, ``g(N) = 1``."""
    return PowerLawG(exponent=0.0, name="fixed")


@dataclass(frozen=True, repr=False)
class FFTLikeG(GFunction):
    """FFT-style scale function ``g(N) = N * log2(N*m_ref) / log2(m_ref)``.

    Derived from ``W = n log2 n`` computation over ``M = n`` memory:
    ``h(M) = M log2 M`` so ``g(N) = h(N M)/h(M)``.  ``m_ref`` is the
    single-node memory capacity in elements.  Table I's ``2N`` entry is
    this function at ``N = m_ref``; for any fixed ``m_ref`` the function is
    Theta(N log N) in N but between ``N`` and ``2N`` while ``N <= m_ref``,
    and we classify it as (super)linear, i.e. case I.
    """

    m_ref: float = 2.0 ** 20
    name: str = "fft"

    def __post_init__(self) -> None:
        if self.m_ref <= 1.0:
            raise InvalidParameterError(
                f"m_ref must exceed 1 element, got {self.m_ref}")

    def _evaluate(self, n: np.ndarray) -> np.ndarray:
        return n * np.log2(n * self.m_ref) / math.log2(self.m_ref)

    def regime(self) -> str:
        return "superlinear"


def g_from_h(
    h: Callable[[np.ndarray], np.ndarray],
    m_ref: float,
    name: str = "custom",
) -> GFunction:
    """Build a :class:`GFunction` from an arbitrary ``W = h(M)``.

    ``g(N) = h(N * m_ref) / h(m_ref)`` for the given single-node memory
    capacity ``m_ref``.  Exact for any ``h``; for power laws the result is
    independent of ``m_ref`` (the paper's observation).
    """
    if m_ref <= 0:
        raise InvalidParameterError(f"m_ref must be positive, got {m_ref}")
    base = float(h(np.asarray(m_ref, dtype=float)))
    if base <= 0:
        raise InvalidParameterError("h(m_ref) must be positive")

    class _HDerivedG(GFunction):
        def _evaluate(self, n: np.ndarray) -> np.ndarray:
            return np.asarray(h(n * m_ref), dtype=float) / base

    g = _HDerivedG()
    g.name = name
    return g


def derive_g_from_complexity(
    comp_exponent: float,
    mem_exponent: float,
    name: str = "derived",
) -> PowerLawG:
    """Derive ``g`` for power-law complexities ``W = n^c``, ``M = n^m``.

    ``W = h(M) = M^{c/m}`` so ``g(N) = N^{c/m}``.  This is the Table I
    construction: TMM has ``(c, m) = (3, 2)`` giving ``N^{3/2}``.
    """
    if comp_exponent <= 0 or mem_exponent <= 0:
        raise InvalidParameterError(
            "complexity exponents must be positive, got "
            f"({comp_exponent}, {mem_exponent})")
    return PowerLawG(exponent=comp_exponent / mem_exponent, name=name)


def scaling_regime(g: GFunction) -> str:
    """Convenience wrapper mirroring the APS case split (Fig. 6)."""
    return g.regime()


#: Table I of the paper: application -> (computation, memory, g).
#: ``computation`` and ``memory`` are complexity descriptions in the paper's
#: notation; ``g`` is the derived scale function.
TABLE_I: dict[str, dict] = {
    "tmm": {
        "description": "Tiled matrix multiplication",
        "computation": "N^3",
        "memory": "N^2",
        "paper_g": "N^{3/2}",
        "g": derive_g_from_complexity(3.0, 2.0, name="tmm"),
    },
    "band_sparse": {
        "description": "Band sparse matrix multiplication",
        "computation": "N",
        "memory": "N",
        "paper_g": "N",
        "g": derive_g_from_complexity(1.0, 1.0, name="band_sparse"),
    },
    "stencil": {
        "description": "Stencil",
        "computation": "N",
        "memory": "N",
        "paper_g": "N",
        "g": derive_g_from_complexity(1.0, 1.0, name="stencil"),
    },
    "fft": {
        "description": "Fast Fourier transform",
        "computation": "N log2 N",
        "memory": "N",
        "paper_g": "2N",
        "g": FFTLikeG(),
    },
}
